#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
# Documents the project crates only; vendored stand-ins are exempt from
# the warnings gate.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  -p hotspot-geom -p hotspot-layout -p hotspot-svm -p hotspot-topo \
  -p hotspot-core -p hotspot-benchgen -p hotspot-baselines \
  -p hotspot-bench -p hotspot-cli -p hotspot-suite

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> examples (quickstart, stream_scan)"
cargo run --release --quiet --example quickstart
cargo run --release --quiet --example stream_scan

echo "==> eval bench smoke (small suite: schema round-trip + speedup gate)"
# The binary asserts identical hotspot sets on both engines, round-trips
# the JSON schema, and exits non-zero if the hot-loop speedup dips below
# the gate.
HOTSPOT_EVAL_SCALES=small HOTSPOT_EVAL_MIN_SPEEDUP=1.0 \
  HOTSPOT_BENCH_OUT=target/BENCH_eval_ci.json \
  cargo run --release --quiet -p hotspot-bench --bin eval

echo "CI OK"
