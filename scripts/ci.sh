#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
# Documents the project crates only; vendored stand-ins are exempt from
# the warnings gate.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  -p hotspot-geom -p hotspot-layout -p hotspot-svm -p hotspot-topo \
  -p hotspot-core -p hotspot-benchgen -p hotspot-baselines \
  -p hotspot-bench -p hotspot-cli -p hotspot-suite

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo test --doc (project crates)"
# Rustdoc examples on the public entry points are compiled and run.
cargo test --doc -q \
  -p hotspot-geom -p hotspot-layout -p hotspot-svm -p hotspot-topo \
  -p hotspot-core -p hotspot-benchgen -p hotspot-baselines \
  -p hotspot-bench -p hotspot-cli -p hotspot-suite

echo "==> examples (quickstart, stream_scan)"
cargo run --release --quiet --example quickstart
cargo run --release --quiet --example stream_scan

echo "==> eval bench smoke (small suite: schema round-trip + speedup gates)"
# The binary asserts identical hotspot sets on both engines (and identical
# admitted clip-kernel pairs on both admission paths), round-trips the
# JSON schema, and exits non-zero if the hot-loop or admission-routing
# speedup dips below its gate.
HOTSPOT_EVAL_SCALES=small HOTSPOT_EVAL_MIN_SPEEDUP=1.0 \
  HOTSPOT_EVAL_MIN_ADMIT_SPEEDUP=1.0 \
  HOTSPOT_BENCH_OUT=target/BENCH_eval_ci.json \
  cargo run --release --quiet -p hotspot-bench --bin eval
grep -q '"schema_version": 2' target/BENCH_eval_ci.json
grep -q '"admit_speedup"' target/BENCH_eval_ci.json
grep -q '"full_speedup"' target/BENCH_eval_ci.json

echo "==> corrupt-GDSII corpus (typed errors, no panics)"
cargo test --release -q -p hotspot-layout --test corrupt_corpus

echo "==> fault-injection smoke (seeded panics: no aborts, stable quarantine)"
# Two scans with the same seeded fault plan must both complete in degraded
# mode (exit 7) and quarantine the identical tile set.
FAULT_DIR=target/fault_smoke
rm -rf "$FAULT_DIR"
mkdir -p "$FAULT_DIR"
cargo run --release --quiet -p hotspot-cli --bin hotspot -- \
  generate --name array_benchmark1 --scale tiny --out "$FAULT_DIR"
cargo run --release --quiet -p hotspot-cli --bin hotspot -- \
  train --training "$FAULT_DIR/training.json" --out "$FAULT_DIR/model.json" --threads 2
for run in 1 2; do
  set +e
  cargo run --release --quiet -p hotspot-cli --bin hotspot -- \
    scan --model "$FAULT_DIR/model.json" --layout "$FAULT_DIR/layout.gds" \
    --out "$FAULT_DIR/report_$run.json" --threads 2 \
    --journal "$FAULT_DIR/scan_$run.journal" \
    --max-failed-tiles 10000 --fault-seed 42 --fault-panic-per-mille 1000 \
    > "$FAULT_DIR/out_$run.txt" 2> "$FAULT_DIR/err_$run.txt"
  status=$?
  set -e
  if [ "$status" -ne 7 ]; then
    echo "fault smoke run $run: expected exit 7 (quarantined), got $status"
    cat "$FAULT_DIR/out_$run.txt"
    exit 1
  fi
done
q1=$(grep -c '^  tile ' "$FAULT_DIR/out_1.txt")
q2=$(grep -c '^  tile ' "$FAULT_DIR/out_2.txt")
if [ "$q1" -eq 0 ] || [ "$q1" -ne "$q2" ]; then
  echo "fault smoke: quarantine counts diverged or were empty ($q1 vs $q2)"
  exit 1
fi
echo "fault smoke: both runs quarantined $q1 tile(s), reports completed"

echo "==> deadline smoke (seeded stalls + --tile-timeout: exit 7, stable TimedOut count)"
# Every tile stalls past its soft budget: both runs must complete in
# degraded mode (exit 7) and quarantine the identical timed-out set.
DL_DIR=target/deadline_smoke
rm -rf "$DL_DIR"
mkdir -p "$DL_DIR"
cargo build --release --quiet -p hotspot-cli
BIN=target/release/hotspot
for run in 1 2; do
  set +e
  "$BIN" scan --model "$FAULT_DIR/model.json" --layout "$FAULT_DIR/layout.gds" \
    --out "$DL_DIR/report_to_$run.json" --threads 2 --tile-cores 2 \
    --max-failed-tiles 10000 --tile-timeout 50ms \
    --fault-stall-per-mille 1000 --fault-stall-ms 150 \
    > "$DL_DIR/out_to_$run.txt" 2> "$DL_DIR/err_to_$run.txt"
  status=$?
  set -e
  if [ "$status" -ne 7 ]; then
    echo "deadline smoke run $run: expected exit 7 (quarantined), got $status"
    cat "$DL_DIR/out_to_$run.txt"
    exit 1
  fi
done
t1=$(grep -c 'soft time budget' "$DL_DIR/out_to_1.txt")
t2=$(grep -c 'soft time budget' "$DL_DIR/out_to_2.txt")
if [ "$t1" -eq 0 ] || [ "$t1" -ne "$t2" ]; then
  echo "deadline smoke: TimedOut counts diverged or were empty ($t1 vs $t2)"
  exit 1
fi
echo "deadline smoke: both runs timed out $t1 tile(s), reports completed"

echo "==> SIGINT smoke (live scan interrupted: exit 8, valid journal, resume cmp-identical)"
# Uninterrupted reference report for the byte-equality check.
"$BIN" scan --model "$FAULT_DIR/model.json" --layout "$FAULT_DIR/layout.gds" \
  --out "$DL_DIR/report_ref.json" --threads 2 --tile-cores 2 \
  --journal "$DL_DIR/ref.journal" > "$DL_DIR/out_ref.txt"
# A live scan slowed by stall injection so the interrupt lands mid-flight.
"$BIN" scan --model "$FAULT_DIR/model.json" --layout "$FAULT_DIR/layout.gds" \
  --out "$DL_DIR/report_int.json" --threads 2 --tile-cores 2 \
  --journal "$DL_DIR/int.journal" \
  --fault-stall-per-mille 1000 --fault-stall-ms 800 \
  > "$DL_DIR/out_int.txt" 2> "$DL_DIR/err_int.txt" &
scan_pid=$!
for _ in $(seq 1 100); do
  [ -f "$DL_DIR/int.journal" ] && break
  sleep 0.1
done
sleep 0.3
kill -INT "$scan_pid"
set +e
wait "$scan_pid"
status=$?
set -e
if [ "$status" -ne 8 ]; then
  echo "SIGINT smoke: expected exit 8 (aborted-but-resumable), got $status"
  cat "$DL_DIR/out_int.txt" "$DL_DIR/err_int.txt"
  exit 1
fi
grep -q 'scan aborted (interrupted)' "$DL_DIR/out_int.txt"
# The journal's prefix is valid: a resume (without the stalls) finishes
# the scan and the report is byte-identical to the uninterrupted one.
"$BIN" scan --model "$FAULT_DIR/model.json" --layout "$FAULT_DIR/layout.gds" \
  --out "$DL_DIR/report_resumed.json" --threads 2 --tile-cores 2 \
  --journal "$DL_DIR/int.journal" --resume > "$DL_DIR/out_resumed.txt"
cmp "$DL_DIR/report_ref.json" "$DL_DIR/report_resumed.json"
echo "SIGINT smoke: interrupted at exit 8, resume byte-identical"

echo "==> observability smoke (NDJSON events + live /metrics + digest equality)"
OBS_DIR=target/obs_smoke
rm -rf "$OBS_DIR"
mkdir -p "$OBS_DIR"
cargo run --release --quiet -p hotspot-cli --bin hotspot -- \
  generate --name array_benchmark1 --scale tiny --out "$OBS_DIR"
cargo run --release --quiet -p hotspot-cli --bin hotspot -- \
  train --training "$OBS_DIR/training.json" --out "$OBS_DIR/model.json" --threads 2
# Sink-less baseline.
cargo run --release --quiet -p hotspot-cli --bin hotspot -- \
  scan --model "$OBS_DIR/model.json" --layout "$OBS_DIR/layout.gds" \
  --out "$OBS_DIR/report_bare.json" --threads 2 --json \
  > "$OBS_DIR/scan_bare.json"
# Observed run: NDJSON event log + metrics endpoint, lingering long enough
# for the curl poll below to scrape the final totals.
METRICS_ADDR=127.0.0.1:9184
cargo run --release --quiet -p hotspot-cli --bin hotspot -- \
  scan --model "$OBS_DIR/model.json" --layout "$OBS_DIR/layout.gds" \
  --out "$OBS_DIR/report_obs.json" --threads 2 --json \
  --events "$OBS_DIR/events.ndjson" --metrics-addr "$METRICS_ADDR" \
  --obs-interval-ms 50 --metrics-linger-ms 4000 \
  > "$OBS_DIR/scan_obs.json" &
SCAN_PID=$!
# Poll the live endpoint: the listener is up for the scan plus the linger.
SCRAPED=""
for _ in $(seq 1 80); do
  if curl -sf "http://$METRICS_ADDR/metrics" > "$OBS_DIR/metrics.txt" 2>/dev/null; then
    SCRAPED=yes
    break
  fi
  sleep 0.1
done
wait "$SCAN_PID"
if [ -z "$SCRAPED" ]; then
  echo "observability smoke: /metrics was never reachable"
  exit 1
fi
# The exposition carries the global and per-stage counter families.
grep -q '^hotspot_tiles_done_total ' "$OBS_DIR/metrics.txt"
grep -q '^hotspot_clips_extracted_total ' "$OBS_DIR/metrics.txt"
grep -q '^hotspot_stage_tasks_total{stage="kernel_evaluation"} ' "$OBS_DIR/metrics.txt"
grep -q '^hotspot_stage_admissions_total{stage="kernel_evaluation"} ' "$OBS_DIR/metrics.txt"
# The NDJSON log parses line by line through the schema-versioned reader.
cargo run --release --quiet -p hotspot-cli --bin hotspot -- \
  events --file "$OBS_DIR/events.ndjson" | grep -q '1 scan(s)'
python3 - "$OBS_DIR/events.ndjson" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "empty event log"
for i, line in enumerate(lines, 1):
    record = json.loads(line)
    assert record["v"] == 1, f"line {i}: unexpected schema {record['v']}"
    assert set(record) == {"v", "seq", "event"}, f"line {i}: bad envelope"
print(f"events: {len(lines)} valid NDJSON line(s)")
EOF
# The observed report is bit-identical to the sink-less one, and the two
# scans agree on every deterministic report field.
cmp "$OBS_DIR/report_bare.json" "$OBS_DIR/report_obs.json"
python3 - "$OBS_DIR/scan_bare.json" "$OBS_DIR/scan_obs.json" <<'EOF'
import json, sys
DIGEST = ("reported", "tiles_total", "tiles_scanned", "tiles_prefiltered",
          "clips_extracted", "clips_flagged", "feedback_reclaimed",
          "eval_batches", "failed_tiles")
bare, obs = (json.load(open(p)) for p in sys.argv[1:3])
for key in DIGEST:
    assert bare[key] == obs[key], f"digest field {key} diverged"
print("digest: observed scan identical to sink-less scan")
EOF
echo "observability smoke OK"

echo "==> tile-cache smoke (cold → warm → corrupt: identical reports, per-entry rejection)"
CACHE_DIR=target/cache_smoke
rm -rf "$CACHE_DIR"
mkdir -p "$CACHE_DIR"
cargo run --release --quiet -p hotspot-cli --bin hotspot -- \
  generate --name array_benchmark1 --scale tiny --out "$CACHE_DIR"
cargo run --release --quiet -p hotspot-cli --bin hotspot -- \
  train --training "$CACHE_DIR/training.json" --out "$CACHE_DIR/model.json" --threads 2
# --tile-cores 2 splits even the tiny layout into several tiles so the
# per-entry corruption check below has entries to damage.
for pass in cold warm; do
  cargo run --release --quiet -p hotspot-cli --bin hotspot -- \
    scan --model "$CACHE_DIR/model.json" --layout "$CACHE_DIR/layout.gds" \
    --out "$CACHE_DIR/report_$pass.json" --threads 2 --tile-cores 2 \
    --cache "$CACHE_DIR/tiles.cache" --telemetry "$CACHE_DIR/telemetry_$pass.json" \
    > "$CACHE_DIR/out_$pass.txt"
done
# The warm report is byte-identical to the cold one.
cmp "$CACHE_DIR/report_cold.json" "$CACHE_DIR/report_warm.json"
python3 - "$CACHE_DIR/telemetry_cold.json" "$CACHE_DIR/telemetry_warm.json" <<'EOF'
import json, sys
cold, warm = (json.load(open(p)) for p in sys.argv[1:3])
assert cold["cache_hits"] == 0, f"cold scan hit a fresh cache: {cold['cache_hits']}"
assert cold["cache_misses"] > 0, "cold scan recorded no misses"
assert warm["cache_misses"] == 0, f"warm scan missed: {warm['cache_misses']}"
assert warm["cache_hits"] == cold["cache_misses"], "warm hits != cold misses"
print(f"cache: {cold['cache_misses']} cold miss(es) -> {warm['cache_hits']} warm hit(s)")
EOF
# Flip one bit inside an entry line: the checksum rejects exactly that
# entry, the scan recomputes it, and the report stays byte-identical.
python3 - "$CACHE_DIR/tiles.cache" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
starts = [0] + [i + 1 for i, b in enumerate(data) if b == 0x0A]
assert len(starts) > 3, "expected header + several cache entries"
i = starts[2] + 24
while data[i] == 0x0A or data[i] ^ 1 == 0x0A:
    i += 1
data[i] ^= 1
open(path, "wb").write(data)
print(f"flipped bit at byte {i}")
EOF
cargo run --release --quiet -p hotspot-cli --bin hotspot -- \
  scan --model "$CACHE_DIR/model.json" --layout "$CACHE_DIR/layout.gds" \
  --out "$CACHE_DIR/report_damaged.json" --threads 2 --tile-cores 2 \
  --cache "$CACHE_DIR/tiles.cache" --telemetry "$CACHE_DIR/telemetry_damaged.json" \
  > "$CACHE_DIR/out_damaged.txt"
cmp "$CACHE_DIR/report_cold.json" "$CACHE_DIR/report_damaged.json"
python3 - "$CACHE_DIR/telemetry_damaged.json" <<'EOF'
import json, sys
t = json.load(open(sys.argv[1]))
assert t["cache_misses"] == 1, f"expected exactly 1 recompute, got {t['cache_misses']}"
assert t["cache_hits"] > 0, "undamaged entries must still serve"
print(f"corruption: {t['cache_misses']} entry rejected, {t['cache_hits']} still served")
EOF
# Audit mode re-validates every hit against a recompute.
cargo run --release --quiet -p hotspot-cli --bin hotspot -- \
  scan --model "$CACHE_DIR/model.json" --layout "$CACHE_DIR/layout.gds" \
  --out "$CACHE_DIR/report_verify.json" --threads 2 --tile-cores 2 \
  --cache "$CACHE_DIR/tiles.cache" --cache-verify > "$CACHE_DIR/out_verify.txt"
cmp "$CACHE_DIR/report_cold.json" "$CACHE_DIR/report_verify.json"
echo "tile-cache smoke OK"

echo "==> scan bench smoke (small suite: warm-rescan + raster schema, speedup gates)"
# Cold → warm → edited through the tile cache, then the rasterisation
# micro-phase; the binary asserts the warm digest equals the cold one and
# that every summed-area grid is bit-identical to the reference sweep,
# the CI env adds the cache-free reference for the edited pass, and exits
# non-zero if either the warm or the rasterisation speedup dips below its
# gate.
HOTSPOT_SCALE=small HOTSPOT_SCAN_MIN_WARM_SPEEDUP=1.0 \
  HOTSPOT_SCAN_MIN_RASTER_SPEEDUP=1.0 \
  HOTSPOT_SCAN_CHECK_EDITED=1 \
  HOTSPOT_BENCH_OUT=target/BENCH_scan_ci.json \
  cargo run --release --quiet -p hotspot-bench --bin scan
grep -q '"schema_version": 3' target/BENCH_scan_ci.json
grep -q '"warm_speedup"' target/BENCH_scan_ci.json
grep -q '"edited_cache_misses"' target/BENCH_scan_ci.json
grep -q '"raster_naive_wall_ms"' target/BENCH_scan_ci.json
grep -q '"raster_sat_wall_ms"' target/BENCH_scan_ci.json
grep -q '"raster_speedup"' target/BENCH_scan_ci.json
# The committed medium-suite record must carry the >=2x rasterisation win.
python3 - BENCH_scan.json <<'EOF'
import json, sys
bench = json.load(open(sys.argv[1]))
assert bench["schema_version"] == 3, bench["schema_version"]
assert bench["raster_speedup"] >= 2.0, \
    f"committed raster_speedup {bench['raster_speedup']:.2f} below 2.0"
print(f"committed BENCH_scan.json: raster speedup {bench['raster_speedup']:.2f}x")
EOF

echo "CI OK"
