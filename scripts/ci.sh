#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
# Documents the project crates only; vendored stand-ins are exempt from
# the warnings gate.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  -p hotspot-geom -p hotspot-layout -p hotspot-svm -p hotspot-topo \
  -p hotspot-core -p hotspot-benchgen -p hotspot-baselines \
  -p hotspot-bench -p hotspot-cli -p hotspot-suite

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> examples (quickstart, stream_scan)"
cargo run --release --quiet --example quickstart
cargo run --release --quiet --example stream_scan

echo "CI OK"
