#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
# Documents the project crates only; vendored stand-ins are exempt from
# the warnings gate.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  -p hotspot-geom -p hotspot-layout -p hotspot-svm -p hotspot-topo \
  -p hotspot-core -p hotspot-benchgen -p hotspot-baselines \
  -p hotspot-bench -p hotspot-cli -p hotspot-suite

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> examples (quickstart, stream_scan)"
cargo run --release --quiet --example quickstart
cargo run --release --quiet --example stream_scan

echo "==> eval bench smoke (small suite: schema round-trip + speedup gates)"
# The binary asserts identical hotspot sets on both engines (and identical
# admitted clip-kernel pairs on both admission paths), round-trips the
# JSON schema, and exits non-zero if the hot-loop or admission-routing
# speedup dips below its gate.
HOTSPOT_EVAL_SCALES=small HOTSPOT_EVAL_MIN_SPEEDUP=1.0 \
  HOTSPOT_EVAL_MIN_ADMIT_SPEEDUP=1.0 \
  HOTSPOT_BENCH_OUT=target/BENCH_eval_ci.json \
  cargo run --release --quiet -p hotspot-bench --bin eval
grep -q '"schema_version": 2' target/BENCH_eval_ci.json
grep -q '"admit_speedup"' target/BENCH_eval_ci.json
grep -q '"full_speedup"' target/BENCH_eval_ci.json

echo "==> corrupt-GDSII corpus (typed errors, no panics)"
cargo test --release -q -p hotspot-layout --test corrupt_corpus

echo "==> fault-injection smoke (seeded panics: no aborts, stable quarantine)"
# Two scans with the same seeded fault plan must both complete in degraded
# mode (exit 7) and quarantine the identical tile set.
FAULT_DIR=target/fault_smoke
rm -rf "$FAULT_DIR"
mkdir -p "$FAULT_DIR"
cargo run --release --quiet -p hotspot-cli --bin hotspot -- \
  generate --name array_benchmark1 --scale tiny --out "$FAULT_DIR"
cargo run --release --quiet -p hotspot-cli --bin hotspot -- \
  train --training "$FAULT_DIR/training.json" --out "$FAULT_DIR/model.json" --threads 2
for run in 1 2; do
  set +e
  cargo run --release --quiet -p hotspot-cli --bin hotspot -- \
    scan --model "$FAULT_DIR/model.json" --layout "$FAULT_DIR/layout.gds" \
    --out "$FAULT_DIR/report_$run.json" --threads 2 \
    --journal "$FAULT_DIR/scan_$run.journal" \
    --max-failed-tiles 10000 --fault-seed 42 --fault-panic-per-mille 1000 \
    > "$FAULT_DIR/out_$run.txt" 2> "$FAULT_DIR/err_$run.txt"
  status=$?
  set -e
  if [ "$status" -ne 7 ]; then
    echo "fault smoke run $run: expected exit 7 (quarantined), got $status"
    cat "$FAULT_DIR/out_$run.txt"
    exit 1
  fi
done
q1=$(grep -c '^  tile ' "$FAULT_DIR/out_1.txt")
q2=$(grep -c '^  tile ' "$FAULT_DIR/out_2.txt")
if [ "$q1" -eq 0 ] || [ "$q1" -ne "$q2" ]; then
  echo "fault smoke: quarantine counts diverged or were empty ($q1 vs $q2)"
  exit 1
fi
echo "fault smoke: both runs quarantined $q1 tile(s), reports completed"

echo "CI OK"
