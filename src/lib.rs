//! Facade crate re-exporting the whole hotspot-detection workspace.
//!
//! This workspace reproduces *Machine-Learning-Based Hotspot Detection
//! Using Topological Classification and Critical Feature Extraction*
//! (Yu, Lin, Jiang, Chiang — DAC 2013 / TCAD 2015) in Rust. See the
//! individual crates:
//!
//! - [`core`] — the detection framework (training + evaluation pipelines),
//! - [`geom`] — integer-nanometre rectilinear geometry,
//! - [`layout`] — layout database and GDSII stream I/O,
//! - [`svm`] — C-SVM with RBF kernel trained by SMO,
//! - [`topo`] — topological classification and critical feature extraction,
//! - [`benchgen`] — synthetic ICCAD-2012-style benchmarks with a
//!   lithography oracle,
//! - [`baselines`] — single-kernel SVM, fuzzy pattern matching, and the
//!   window-scan extraction baseline.
//!
//! # Examples
//!
//! See `examples/quickstart.rs` for the end-to-end flow:
//!
//! ```no_run
//! use hotspot_suite::benchgen::{Benchmark, iccad_suite, SuiteScale};
//! use hotspot_suite::core::HotspotDetector;
//!
//! let spec = iccad_suite(SuiteScale::Tiny).remove(0);
//! let bm = Benchmark::generate(spec);
//! let detector = HotspotDetector::builder().auto_threads().train(&bm.training)?;
//! let report = detector.detect(&bm.layout, bm.layer)?;
//! println!("{} hotspots reported", report.reported.len());
//! # Ok::<(), hotspot_suite::core::DetectError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hotspot_baselines as baselines;
pub use hotspot_benchgen as benchgen;
pub use hotspot_core as core;
pub use hotspot_geom as geom;
pub use hotspot_layout as layout;
pub use hotspot_svm as svm;
pub use hotspot_topo as topo;
