//! Persist a trained detector to JSON and reload it — the workflow the
//! `hotspot` CLI wraps (`train` writes the model, `detect` reloads it).
//!
//! ```sh
//! cargo run --release --example persist_model
//! ```

use hotspot_suite::benchgen::{Benchmark, BenchmarkSpec, LithoOracle};
use hotspot_suite::core::{DetectorConfig, HotspotDetector};
use hotspot_suite::layout::ClipShape;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = Benchmark::generate(BenchmarkSpec {
        name: "persist".into(),
        process_nm: 32,
        width: 72_000,
        height: 72_000,
        train_hotspots: 20,
        train_nonhotspots: 70,
        test_hotspots: 8,
        seed: 33,
        clip_shape: ClipShape::ICCAD2012,
        oracle: LithoOracle::default(),
        background_fill: 0.5,
        ambit_filler: true,
    });

    // Train once…
    let detector = HotspotDetector::train(&benchmark.training, DetectorConfig::default())?;
    let report_fresh = detector.detect(&benchmark.layout, benchmark.layer)?;

    // …persist to JSON…
    let path = std::env::temp_dir().join("hotspot_model.json");
    serde_json::to_writer(
        std::io::BufWriter::new(std::fs::File::create(&path)?),
        &detector,
    )?;
    let size_kb = std::fs::metadata(&path)?.len() / 1024;
    println!(
        "persisted {} kernels (feedback: {}) to {} ({size_kb} KiB)",
        detector.kernels().len(),
        detector.feedback().is_some(),
        path.display()
    );

    // …and reload: the restored detector reports identically.
    let restored: HotspotDetector =
        serde_json::from_reader(std::io::BufReader::new(std::fs::File::open(&path)?))?;
    let report_restored = restored.detect(&benchmark.layout, benchmark.layer)?;
    assert_eq!(report_fresh.reported, report_restored.reported);
    println!(
        "restored model reproduces the report: {} hotspots, bit-identical",
        report_restored.reported.len()
    );

    let eval = report_restored.score_against(&benchmark.actual, 0.2, benchmark.area_um2());
    println!("{eval}");
    std::fs::remove_file(&path).ok();
    Ok(())
}
