//! Streaming scan: train on a synthetic benchmark, then walk its testing
//! layout tile by tile with the density-prefiltered, bounded-memory
//! `scan_layout` — and check the result matches whole-layout `detect`.
//!
//! ```sh
//! cargo run --release --example stream_scan
//! ```

use hotspot_suite::benchgen::{Benchmark, BenchmarkSpec, LithoOracle};
use hotspot_suite::core::{HotspotDetector, ScanConfig};
use hotspot_suite::layout::ClipShape;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A benchmark big enough that tiling matters: ~100 tiles at the
    //    4-core tile stride used below.
    let benchmark = Benchmark::generate(BenchmarkSpec {
        name: "stream_scan".into(),
        process_nm: 32,
        width: 96_000,
        height: 96_000,
        train_hotspots: 25,
        train_nonhotspots: 85,
        test_hotspots: 14,
        seed: 7,
        clip_shape: ClipShape::ICCAD2012,
        oracle: LithoOracle::default(),
        background_fill: 0.55,
        ambit_filler: true,
    });

    let detector = HotspotDetector::builder()
        .auto_threads()
        .train(&benchmark.training)?;
    println!("trained {} kernels", detector.kernels().len());

    // 2. Stream the layout: 4-core tiles (19.2 µm stride at ICCAD-2012
    //    geometry), at most 4 tiles in memory at once.
    let scan = ScanConfig {
        tile_cores: 4,
        max_in_flight: 4,
        tile_density: None,
        ..Default::default()
    };
    let report = detector.scan_layout(&benchmark.layout, benchmark.layer, &scan)?;
    println!(
        "scanned {} of {} tiles ({} prefiltered): {} clips, flagged {}, reported {} hotspots in {:.2?} ({:.0} clips/s)",
        report.tiles_scanned,
        report.tiles_total,
        report.tiles_prefiltered,
        report.clips_extracted,
        report.clips_flagged,
        report.reported.len(),
        report.scan_time,
        report.clips_per_second(),
    );
    println!(
        "peak in flight: {} tiles (window {})",
        report.peak_in_flight, scan.max_in_flight
    );
    for line in report.telemetry.breakdown().lines() {
        println!("    {line}");
    }

    // 3. The streaming scan is exact: same hotspot set as whole-layout
    //    detection, within the configured memory bound. (Asserted in CI.)
    let whole = detector.detect(&benchmark.layout, benchmark.layer)?;
    assert_eq!(
        report.reported, whole.reported,
        "scan_layout must report exactly detect()'s hotspot set"
    );
    assert!(
        report.peak_in_flight <= scan.max_in_flight,
        "in-flight window exceeded"
    );
    println!(
        "verified: identical to detect() ({} hotspots), window respected",
        whole.reported.len()
    );

    // 4. Score against the planted ground truth.
    let eval = hotspot_suite::core::score(
        &report.reported,
        &benchmark.actual,
        detector.config().min_hit_clip_overlap,
        benchmark.area_um2(),
        report.scan_time,
    );
    println!("{eval}");
    Ok(())
}
