//! Sweep the decision threshold on one benchmark to trace the paper's
//! Fig. 15 accuracy/false-alarm trade-off for a single design.
//!
//! ```sh
//! cargo run --release --example tradeoff
//! ```

use hotspot_suite::benchgen::{Benchmark, BenchmarkSpec, LithoOracle};
use hotspot_suite::core::HotspotDetector;
use hotspot_suite::layout::ClipShape;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = Benchmark::generate(BenchmarkSpec {
        name: "tradeoff".into(),
        process_nm: 28,
        width: 120_000,
        height: 120_000,
        train_hotspots: 30,
        train_nonhotspots: 120,
        test_hotspots: 20,
        seed: 21,
        clip_shape: ClipShape::ICCAD2012,
        oracle: LithoOracle::default(),
        background_fill: 0.55,
        ambit_filler: true,
    });

    let detector = HotspotDetector::builder().train(&benchmark.training)?;

    println!(
        "{:>10} {:>9} {:>7} {:>8} {:>11}",
        "threshold", "hit rate", "#hit", "#extra", "hit/extra"
    );
    for threshold in [-0.4, -0.2, 0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2] {
        let report =
            detector.detect_with_threshold(&benchmark.layout, benchmark.layer, threshold)?;
        let eval = report.score_against(&benchmark.actual, 0.2, benchmark.area_um2());
        println!(
            "{:>10.2} {:>8.2}% {:>7} {:>8} {:>11.3e}",
            threshold,
            eval.accuracy() * 100.0,
            eval.hits,
            eval.extras,
            eval.hit_extra_ratio()
        );
    }
    Ok(())
}
