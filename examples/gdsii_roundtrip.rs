//! GDSII round trip: build a layout, serialise it to a binary GDSII
//! stream, read it back, and run clip extraction on the result.
//!
//! ```sh
//! cargo run --release --example gdsii_roundtrip
//! ```

use hotspot_suite::core::{extract_clips, DetectorConfig};
use hotspot_suite::geom::{Point, Polygon, Rect};
use hotspot_suite::layout::{gdsii, LayerId, Layout};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a layout with rectangles and a rectilinear polygon.
    let mut layout = Layout::new("demo_chip");
    let layer = LayerId::METAL1;
    layout.add_rect(layer, Rect::from_extents(0, 0, 800, 200));
    layout.add_rect(layer, Rect::from_extents(900, 0, 1700, 200));
    layout.add_polygon(
        layer,
        Polygon::new(vec![
            Point::new(0, 400),
            Point::new(600, 400),
            Point::new(600, 700),
            Point::new(300, 700),
            Point::new(300, 1100),
            Point::new(0, 1100),
        ])?,
    );

    // Serialise to the GDSII stream format and back.
    let bytes = gdsii::write_bytes(&layout)?;
    println!("wrote {} bytes of GDSII", bytes.len());
    let path = std::env::temp_dir().join("hotspot_demo.gds");
    gdsii::write_file(&layout, &path)?;
    let restored = gdsii::read_file(&path)?;
    assert_eq!(restored, layout);
    println!(
        "round trip OK: {} polygons on {} layer(s)",
        restored.polygon_count(),
        restored.layers().count()
    );

    // Dissect polygons into rectangles (Fig. 11(a)) and extract clips.
    let rects = restored.dissected_rects(layer);
    println!("dissection: {} rectangles", rects.len());
    let config = DetectorConfig {
        distribution: hotspot_suite::core::DistributionFilter {
            min_core_density: 0.0,
            min_polygon_count: 1,
            max_boundary_bbox_distance: 4800,
        },
        ..Default::default()
    };
    let clips = extract_clips(&restored, layer, &config);
    println!("extracted {} candidate clips", clips.len());
    for clip in clips.iter().take(3) {
        println!(
            "  clip at {} with {} rects, core density {:.3}",
            clip.window.core.min(),
            clip.rects.len(),
            clip.core_density()
        );
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
