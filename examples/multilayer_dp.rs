//! The Section IV extensions, end to end: multilayer hotspot detection and
//! double patterning with mask decomposition.
//!
//! ```sh
//! cargo run --release --example multilayer_dp
//! ```

use hotspot_suite::core::{
    DecomposedPattern, DetectorConfig, DoublePatterningDetector, MultilayerDetector,
    MultilayerPattern, MultilayerTrainingSet, Pattern,
};
use hotspot_suite::geom::Rect;
use hotspot_suite::layout::ClipShape;
use hotspot_suite::topo::multilayer::MultilayerFeatures;
use hotspot_suite::topo::patterning::MaskDecomposition;
use hotspot_suite::topo::FeatureConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = ClipShape::ICCAD2012;
    let window = shape.window_from_core_corner(hotspot_suite::geom::Point::new(0, 0));

    // ------------------------------------------------------------------
    // Multilayer (Section IV-A): the hotspot exists only when a metal-2
    // wire crosses the metal-1 gap — single-layer features cannot see it.
    // ------------------------------------------------------------------
    let m1 = |gap: i64| {
        vec![
            Rect::from_extents(0, 0, 400, 300),
            Rect::from_extents(400 + gap, 0, 800 + gap, 300),
        ]
    };
    let m2_crossing = vec![Rect::from_extents(350, 0, 550, 1100)];

    let mut training = MultilayerTrainingSet::default();
    for i in 0..4 {
        training.hotspots.push(MultilayerPattern::new(
            window,
            &[m1(60 + 10 * i), m2_crossing.clone()],
        ));
        training
            .nonhotspots
            .push(MultilayerPattern::new(window, &[m1(60 + 10 * i), vec![]]));
        training.nonhotspots.push(MultilayerPattern::new(
            window,
            &[m1(450 + 10 * i), m2_crossing.clone()],
        ));
    }
    let detector = MultilayerDetector::train(&training, DetectorConfig::default())?;
    println!("multilayer detector: {} kernels", detector.kernel_count());

    let risky = MultilayerPattern::new(window, &[m1(75), m2_crossing.clone()]);
    let safe = MultilayerPattern::new(window, &[m1(75), vec![]]);
    println!(
        "  narrow m1 gap + crossing m2: {}",
        verdict(detector.classify(&risky))
    );
    println!(
        "  same m1 gap, no m2 wire:     {}",
        verdict(detector.classify(&safe))
    );

    // The Fig. 13 feature sets behind the decision:
    let local = Rect::from_extents(0, 0, 1200, 1200);
    let fsets = MultilayerFeatures::extract(
        &local,
        &[m1(75), m2_crossing.clone()],
        &FeatureConfig::default(),
    );
    println!(
        "  feature sets: {} per-layer + {} overlap, {} SVM values total",
        fsets.per_layer.len(),
        fsets.overlaps.len(),
        fsets.to_vector().len()
    );

    // ------------------------------------------------------------------
    // Double patterning (Section IV-B): three bars at sub-resolution
    // pitch decompose onto two masks; tight pitches stay risky even after
    // decomposition.
    // ------------------------------------------------------------------
    let bars = |pitch: i64| -> Vec<Rect> {
        (0..3)
            .map(|i| Rect::from_extents(i * pitch, 0, i * pitch + 150, 1000))
            .collect()
    };
    let decompose =
        |pitch: i64| DecomposedPattern::from_pattern(&Pattern::new(window, &bars(pitch)), 250);

    let d = MaskDecomposition::decompose(&bars(240), 250);
    println!(
        "\ndouble patterning: pitch 240 decomposes to mask1 {} / mask2 {}",
        d.mask1.len(),
        d.mask2.len()
    );

    let hotspots: Vec<_> = (0..4).map(|i| decompose(230 + 5 * i)).collect();
    let safes: Vec<_> = (0..6).map(|i| decompose(450 + 20 * i)).collect();
    let dp = DoublePatterningDetector::train(&hotspots, &safes, 250, DetectorConfig::default())?;
    println!(
        "dp detector: {} kernels, spacing rule {} nm",
        dp.kernel_count(),
        dp.min_spacing()
    );
    println!("  pitch 242: {}", verdict(dp.classify(&decompose(242))));
    println!("  pitch 500: {}", verdict(dp.classify(&decompose(500))));
    Ok(())
}

fn verdict(hotspot: bool) -> &'static str {
    if hotspot {
        "HOTSPOT"
    } else {
        "safe"
    }
}
