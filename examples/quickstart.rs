//! Quickstart: generate a small benchmark, train the hotspot-detection
//! framework, evaluate a testing layout, and score the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hotspot_suite::benchgen::{Benchmark, BenchmarkSpec, LithoOracle};
use hotspot_suite::core::HotspotDetector;
use hotspot_suite::layout::ClipShape;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small synthetic benchmark: training clips labelled by the
    //    lithography oracle plus a testing layout with planted hotspots.
    let benchmark = Benchmark::generate(BenchmarkSpec {
        name: "quickstart".into(),
        process_nm: 32,
        width: 96_000, // 96 µm
        height: 96_000,
        train_hotspots: 25,
        train_nonhotspots: 85,
        test_hotspots: 14,
        seed: 7,
        clip_shape: ClipShape::ICCAD2012,
        oracle: LithoOracle::default(),
        background_fill: 0.55,
        ambit_filler: true,
    });
    println!(
        "benchmark: {} training clips ({} hotspots), layout {:.0} um^2, {} planted hotspots",
        benchmark.training.len(),
        benchmark.training.hotspots.len(),
        benchmark.area_um2(),
        benchmark.actual.len()
    );

    // 2. Train the full framework of the paper: topological classification,
    //    population balancing, per-cluster SVM kernels with iterative
    //    (C, γ) learning, and the feedback kernel. The builder validates
    //    every setting before training starts.
    let detector = HotspotDetector::builder()
        .auto_threads()
        .train(&benchmark.training)?;
    let summary = detector.summary();
    println!(
        "trained {} kernels from {} upsampled hotspots / {} nonhotspot medoids (feedback: {})",
        detector.kernels().len(),
        summary.upsampled_hotspots,
        summary.nonhotspot_medoids,
        summary.feedback_trained
    );

    // 3. Evaluate the testing layout: density-filtered clip extraction,
    //    multiple-kernel + feedback evaluation, redundant clip removal.
    let report = detector.detect(&benchmark.layout, benchmark.layer)?;
    println!(
        "evaluated {} clips, flagged {}, reported {} hotspots in {:.2?}",
        report.clips_extracted,
        report.clips_flagged,
        report.reported.len(),
        report.total_time()
    );

    // The merged telemetry covers all eight pipeline stages.
    let telemetry = detector.summary().telemetry.merge(&report.telemetry);
    println!("{}", telemetry.breakdown());

    // 4. Score against the ground truth with the contest's hit rule.
    let eval = report.score_against(&benchmark.actual, 0.2, benchmark.area_um2());
    println!("{eval}");
    println!("false alarm: {:.4} extras/um^2", eval.false_alarm());
    Ok(())
}
