//! Explore the lithography susceptibility oracle on canonical shapes:
//! tip-to-tip gaps bridge when narrow, thin lines pinch, solid blocks and
//! wide gaps print safely.
//!
//! ```sh
//! cargo run --release --example litho_oracle
//! ```

use hotspot_suite::benchgen::LithoOracle;
use hotspot_suite::geom::{Point, Rect};

fn main() {
    let oracle = LithoOracle::default();
    let window = Rect::centered_square(Point::new(0, 0), 2400);
    let core = Rect::centered_square(Point::new(0, 0), 1200);

    let score = |name: &str, rects: &[Rect]| {
        let s = oracle.susceptibility(&core, &window, rects);
        println!(
            "{name:<28} score {s:+.4}  -> {}",
            if s > 0.0 { "HOTSPOT" } else { "safe" }
        );
    };

    println!("tip-to-tip bar pairs (bridging):");
    for gap in [60i64, 100, 140, 200, 320] {
        let bars = [
            Rect::from_extents(-500 - gap / 2, -150, -gap / 2, 150),
            Rect::from_extents(gap / 2, -150, 500 + gap / 2, 150),
        ];
        score(&format!("  gap {gap} nm"), &bars);
    }

    println!("\nisolated lines (pinching):");
    for width in [60i64, 100, 140, 400] {
        let line = [Rect::from_extents(-500, -width / 2, 500, width / 2)];
        score(&format!("  width {width} nm"), &line);
    }

    println!("\nlarge features (always safe):");
    score(
        "  solid 900 nm block",
        &[Rect::centered_square(Point::new(0, 0), 900)],
    );

    println!("\ncontext dependence (the Fig. 10 effect):");
    let gap_bars = [
        Rect::from_extents(-620, -150, -120, 150),
        Rect::from_extents(120, -150, 620, 150),
    ];
    score("  240 nm gap, bare", &gap_bars);
    let mut crowded = gap_bars.to_vec();
    crowded.push(Rect::from_extents(-700, 170, 700, 420));
    score("  240 nm gap, crowded ambit", &crowded);
}
