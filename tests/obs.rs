//! Observability integration tests: attaching the full sink stack to a
//! streaming scan must not change a single bit of the report, the
//! Prometheus endpoint must serve the per-stage counter families over
//! plain HTTP, and the NDJSON event log must round-trip through the
//! schema-versioned reader.

use hotspot_suite::benchgen::{Benchmark, BenchmarkSpec, LithoOracle};
use hotspot_suite::core::obs::read_events;
use hotspot_suite::core::{
    HotspotDetector, MetricsServer, NdjsonSink, ObsEvent, ObsHub, ScanConfig, OBS_SCHEMA_VERSION,
};
use hotspot_suite::layout::ClipShape;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::OnceLock;

fn benchmark() -> &'static Benchmark {
    static BM: OnceLock<Benchmark> = OnceLock::new();
    BM.get_or_init(|| {
        Benchmark::generate(BenchmarkSpec {
            name: "obs-test".into(),
            process_nm: 32,
            width: 40_000,
            height: 40_000,
            train_hotspots: 16,
            train_nonhotspots: 56,
            test_hotspots: 5,
            seed: 23,
            clip_shape: ClipShape::ICCAD2012,
            oracle: LithoOracle::default(),
            background_fill: 0.55,
            ambit_filler: true,
        })
    })
}

fn trained(bm: &Benchmark) -> &'static HotspotDetector {
    static DET: OnceLock<HotspotDetector> = OnceLock::new();
    DET.get_or_init(|| {
        HotspotDetector::builder()
            .threads(2)
            .train(&bm.training)
            .expect("training")
    })
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hotspot_obs_it_{}_{name}", std::process::id()))
}

/// Issues a blocking HTTP/1.0 GET and returns the raw response.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn full_sink_stack_leaves_scan_report_bit_identical() {
    let bm = benchmark();
    let detector = trained(bm);
    let scan = ScanConfig {
        tile_cores: 6,
        max_in_flight: 3,
        ..Default::default()
    };

    for threads in [1usize, 2, 4] {
        let bare = detector
            .clone()
            .with_threads(threads)
            .scan_layout(&bm.layout, bm.layer, &scan)
            .expect("unobserved scan");
        assert!(bare.telemetry.obs_sinks.is_empty());

        let events = temp_path(&format!("identical_{threads}.ndjson"));
        let hub = ObsHub::new();
        hub.register(Box::new(NdjsonSink::create(&events).expect("event log")));
        let server = MetricsServer::bind("127.0.0.1:0", hub.clone()).expect("bind");
        let observed = detector
            .clone()
            .with_threads(threads)
            .with_obs(hub.clone())
            .scan_layout(&bm.layout, bm.layer, &scan)
            .expect("observed scan");
        server.shutdown();

        // The acceptance bar: deterministic content is bit-identical with
        // the whole sink stack attached, at every thread count.
        assert_eq!(
            observed.digest(),
            bare.digest(),
            "observed scan diverged at {threads} thread(s)"
        );
        assert_eq!(observed.reported, bare.reported);
        // Telemetry (schema v6) records which sinks watched the run.
        assert_eq!(
            observed.telemetry.obs_sinks,
            vec!["ndjson".to_string(), "prometheus".to_string()]
        );
        std::fs::remove_file(&events).ok();
    }
}

#[test]
fn metrics_endpoint_serves_per_stage_counter_families() {
    let bm = benchmark();
    let detector = trained(bm);
    let hub = ObsHub::new();
    let server = MetricsServer::bind("127.0.0.1:0", hub.clone()).expect("bind");
    let addr = server.local_addr();

    let report = detector
        .clone()
        .with_obs(hub.clone())
        .scan_layout(&bm.layout, bm.layer, &ScanConfig::default())
        .expect("scan");

    let response = http_get(addr, "/metrics");
    assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
    assert!(response.contains("text/plain; version=0.0.4"), "{response}");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_default();
    // Global counter families reflect the finished scan exactly.
    assert!(
        body.contains(&format!(
            "hotspot_clips_extracted_total {}",
            report.clips_extracted
        )),
        "{body}"
    );
    assert!(
        body.contains(&format!(
            "hotspot_tiles_done_total {}",
            report.tiles_scanned
        )),
        "{body}"
    );
    assert!(body.contains("hotspot_tiles_in_flight 0"), "{body}");
    // Per-stage families carry the stage label.
    assert!(
        body.contains("hotspot_stage_tasks_total{stage=\"kernel_evaluation\"}"),
        "{body}"
    );
    assert!(
        body.contains("hotspot_stage_admissions_total{stage=\"kernel_evaluation\"}"),
        "{body}"
    );
    // Every sample line is `name[{labels}] value` with a numeric value —
    // minimal Prometheus text-format validity.
    for line in body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let value = line.rsplit(' ').next().unwrap();
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric sample value in line: {line}"
        );
    }

    let missing = http_get(addr, "/nope");
    assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
    server.shutdown();
}

#[test]
fn ndjson_event_log_round_trips_and_matches_report() {
    let bm = benchmark();
    let detector = trained(bm);
    let events = temp_path("roundtrip.ndjson");
    let hub = ObsHub::new();
    hub.register(Box::new(NdjsonSink::create(&events).expect("event log")));

    let report = detector
        .clone()
        .with_obs(hub.clone())
        .scan_layout(&bm.layout, bm.layer, &ScanConfig::default())
        .expect("scan");

    let records = read_events(&events).expect("valid NDJSON event log");
    assert!(!records.is_empty());
    assert!(records.iter().all(|r| r.v == OBS_SCHEMA_VERSION));
    // Sequence numbers are monotonic, so the log orders causally.
    assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));

    match &records.first().expect("first event").event {
        ObsEvent::ScanStarted { tiles_total, .. } => {
            assert_eq!(*tiles_total, report.tiles_total);
        }
        other => panic!("expected ScanStarted first, got {other:?}"),
    }
    match &records.last().expect("last event").event {
        ObsEvent::ScanCompleted {
            tiles_scanned,
            reported,
            ..
        } => {
            assert_eq!(*tiles_scanned, report.tiles_scanned);
            assert_eq!(*reported, report.reported.len());
        }
        other => panic!("expected ScanCompleted last, got {other:?}"),
    }
    // Batch events sum to the report's totals.
    let (batch_clips, batch_flagged) =
        records
            .iter()
            .fold((0usize, 0usize), |(c, f), r| match r.event {
                ObsEvent::BatchCompleted { clips, flagged, .. } => (c + clips, f + flagged),
                _ => (c, f),
            });
    assert_eq!(batch_clips, report.clips_extracted);
    assert_eq!(batch_flagged, report.clips_flagged);
    std::fs::remove_file(&events).ok();
}
