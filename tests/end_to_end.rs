//! Cross-crate integration tests: benchmark generation → training →
//! detection → scoring, on a small but realistic workload.

use hotspot_suite::benchgen::{Benchmark, BenchmarkSpec, LithoOracle};
use hotspot_suite::core::{DetectorConfig, HotspotDetector};
use hotspot_suite::layout::ClipShape;

fn small_benchmark(seed: u64) -> Benchmark {
    Benchmark::generate(BenchmarkSpec {
        name: format!("it_{seed}"),
        process_nm: 32,
        width: 72_000,
        height: 72_000,
        train_hotspots: 16,
        train_nonhotspots: 60,
        test_hotspots: 8,
        seed,
        clip_shape: ClipShape::ICCAD2012,
        oracle: LithoOracle::default(),
        background_fill: 0.5,
        ambit_filler: true,
    })
}

#[test]
fn framework_reaches_high_accuracy() {
    let bm = small_benchmark(11);
    let detector =
        HotspotDetector::train(&bm.training, DetectorConfig::default()).expect("training succeeds");
    let report = detector.detect(&bm.layout, bm.layer).expect("evaluation");
    let eval = report.score_against(&bm.actual, 0.2, bm.area_um2());
    assert!(
        eval.accuracy() >= 0.75,
        "accuracy {:.2}% below floor ({} / {} hits, {} extras)",
        eval.accuracy() * 100.0,
        eval.hits,
        eval.actual,
        eval.extras
    );
    // The secondary objective stays sane: extras bounded by the clip count.
    assert!(eval.extras <= report.clips_extracted);
}

#[test]
fn detection_is_deterministic_across_runs() {
    let bm = small_benchmark(12);
    let run = || {
        let detector = HotspotDetector::train(
            &bm.training,
            DetectorConfig {
                threads: 2,
                ..Default::default()
            },
        )
        .expect("training succeeds");
        detector
            .detect(&bm.layout, bm.layer)
            .expect("evaluation")
            .reported
    };
    assert_eq!(run(), run());
}

#[test]
fn parallel_and_sequential_agree_end_to_end() {
    let bm = small_benchmark(13);
    let seq = HotspotDetector::train(
        &bm.training,
        DetectorConfig {
            threads: 1,
            ..Default::default()
        },
    )
    .expect("sequential training");
    let par = HotspotDetector::train(
        &bm.training,
        DetectorConfig {
            threads: 4,
            ..Default::default()
        },
    )
    .expect("parallel training");
    let a = seq.detect(&bm.layout, bm.layer).expect("evaluation");
    let b = par.detect(&bm.layout, bm.layer).expect("evaluation");
    assert_eq!(a.reported, b.reported);
    assert_eq!(a.clips_extracted, b.clips_extracted);
    assert_eq!(a.clips_flagged, b.clips_flagged);
}

#[test]
fn gdsii_roundtrip_preserves_detection() {
    // Writing the testing layout through the GDSII codec must not change
    // the detector's output.
    let bm = small_benchmark(14);
    let detector =
        HotspotDetector::train(&bm.training, DetectorConfig::default()).expect("training succeeds");
    let bytes = hotspot_suite::layout::gdsii::write_bytes(&bm.layout).expect("serialise");
    let restored = hotspot_suite::layout::gdsii::read_bytes(&bytes).expect("parse");
    let a = detector.detect(&bm.layout, bm.layer).expect("evaluation");
    let b = detector.detect(&restored, bm.layer).expect("evaluation");
    assert_eq!(a.reported, b.reported);
}

#[test]
fn raising_threshold_never_raises_flag_count() {
    let bm = small_benchmark(15);
    let detector =
        HotspotDetector::train(&bm.training, DetectorConfig::default()).expect("training succeeds");
    let mut last = usize::MAX;
    for threshold in [-0.5, 0.0, 0.5, 1.0, 2.0] {
        let report = detector
            .detect_with_threshold(&bm.layout, bm.layer, threshold)
            .expect("evaluation");
        assert!(
            report.clips_flagged <= last,
            "flag count rose from {last} at threshold {threshold}"
        );
        last = report.clips_flagged;
    }
}
