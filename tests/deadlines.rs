//! Deadline, watchdog, and cancellation integration tests.
//!
//! The headline invariant pinned here: a scan stopped early — by its
//! wall-clock deadline, by a per-tile watchdog quarantine, or by a
//! caller's cancel token — and then resumed from its journal produces a
//! report whose deterministic content ([`ScanReport::digest`]) is
//! bit-identical to an uninterrupted run's, at 1, 2, and 4 threads.
//! Abort points sit at batch boundaries and skipped tiles are never
//! journaled, so the journal only ever holds whole-tile records and the
//! quarantine set under `tile_timeout` is exactly the stalled set,
//! independent of thread count.

use hotspot_suite::benchgen::{Benchmark, BenchmarkSpec, LithoOracle};
use hotspot_suite::core::journal::read_journal;
use hotspot_suite::core::{
    AbortReason, CancelToken, FailureKind, FailurePolicy, FaultPlan, FaultSite, HotspotDetector,
    ScanConfig, ScanReport,
};
use hotspot_suite::layout::ClipShape;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Duration;

fn benchmark() -> &'static Benchmark {
    static BM: OnceLock<Benchmark> = OnceLock::new();
    BM.get_or_init(|| {
        Benchmark::generate(BenchmarkSpec {
            name: "deadline-test".into(),
            process_nm: 32,
            width: 48_000,
            height: 48_000,
            train_hotspots: 20,
            train_nonhotspots: 70,
            test_hotspots: 6,
            seed: 11,
            clip_shape: ClipShape::ICCAD2012,
            oracle: LithoOracle::default(),
            background_fill: 0.55,
            ambit_filler: true,
        })
    })
}

fn trained(bm: &Benchmark) -> &'static HotspotDetector {
    static DET: OnceLock<HotspotDetector> = OnceLock::new();
    DET.get_or_init(|| {
        HotspotDetector::builder()
            .threads(2)
            .train(&bm.training)
            .expect("training")
    })
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hotspot_deadline_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("tempdir");
    dir
}

fn base_scan() -> ScanConfig {
    ScanConfig {
        tile_cores: 8,
        max_in_flight: 2,
        ..Default::default()
    }
}

fn run(scan: &ScanConfig, threads: usize) -> ScanReport {
    let bm = benchmark();
    trained(bm)
        .clone()
        .with_threads(threads)
        .scan_layout(&bm.layout, bm.layer, scan)
        .expect("scan")
}

/// The clean (unbudgeted, uninterrupted) report every variant must match.
fn clean_report() -> &'static ScanReport {
    static REPORT: OnceLock<ScanReport> = OnceLock::new();
    REPORT.get_or_init(|| run(&base_scan(), 2))
}

/// Tile ids the clean scan completes, via a throwaway journal.
fn scanned_tile_ids() -> &'static Vec<usize> {
    static IDS: OnceLock<Vec<usize>> = OnceLock::new();
    IDS.get_or_init(|| {
        let dir = workdir("tile_ids");
        let journal = dir.join("scan.journal");
        let scan = ScanConfig {
            journal: Some(journal.clone()),
            ..base_scan()
        };
        run(&scan, 2);
        let contents = read_journal(&journal).expect("journal reads back");
        let mut ids: Vec<usize> = contents.records.keys().copied().collect();
        ids.sort_unstable();
        std::fs::remove_dir_all(&dir).ok();
        assert!(ids.len() > 4, "benchmark too small for deadline tests");
        ids
    })
}

fn resume_config(journal: &Path) -> ScanConfig {
    ScanConfig {
        journal: Some(journal.to_path_buf()),
        resume_from: Some(journal.to_path_buf()),
        ..base_scan()
    }
}

/// A fault plan that stalls *every* tile long enough to guarantee the
/// scan outlives a ~100 ms deadline (honest tiles take ~tens of ms).
fn stall_everything() -> FaultPlan {
    FaultPlan {
        stall_per_mille: 1000,
        stall_ms: 150,
        site: FaultSite::Prefilter,
        ..Default::default()
    }
}

#[test]
fn zero_deadline_aborts_before_the_first_batch() {
    let dir = workdir("zero");
    let journal = dir.join("scan.journal");
    let scan = ScanConfig {
        deadline: Some(Duration::ZERO),
        journal: Some(journal.clone()),
        ..base_scan()
    };
    let report = run(&scan, 2);
    assert_eq!(report.aborted, Some(AbortReason::DeadlineExceeded));
    assert_eq!(report.tiles_scanned, 0, "no batch may be admitted");
    assert!(report.failed_tiles.is_empty());
    assert_eq!(
        report.telemetry.aborted_reason.as_deref(),
        Some("deadline_exceeded")
    );

    // The journal is a valid header-only file; resuming it finishes the
    // scan with the clean digest.
    let contents = read_journal(&journal).expect("aborted journal is valid");
    assert!(contents.records.is_empty());
    let resumed = run(&resume_config(&journal), 2);
    assert_eq!(resumed.aborted, None);
    assert_eq!(resumed.digest(), clean_report().digest());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deadline_abort_then_resume_digests_identically_at_any_thread_count() {
    let dir = workdir("abort_resume");
    for threads in [1usize, 2, 4] {
        let journal = dir.join(format!("abort_{threads}.journal"));
        let scan = ScanConfig {
            deadline: Some(Duration::from_millis(100)),
            fault_plan: stall_everything(),
            journal: Some(journal.clone()),
            ..base_scan()
        };
        let report = run(&scan, threads);
        assert_eq!(
            report.aborted,
            Some(AbortReason::DeadlineExceeded),
            "{threads} threads: stalled scan must blow a 100 ms deadline"
        );
        assert!(
            report.tiles_scanned < report.tiles_total,
            "{threads} threads: abort must leave work undone"
        );

        // The abort left only whole records: the journal's valid prefix
        // is the entire file, no torn tail.
        let contents = read_journal(&journal).expect("aborted journal is valid");
        let file_len = std::fs::metadata(&journal).expect("journal metadata").len();
        assert_eq!(contents.valid_len, file_len, "{threads} threads");
        assert_eq!(contents.records.len(), report.tiles_scanned);

        // Resuming without the deadline (or the stalls) finishes the scan
        // bit-identically to a never-interrupted run.
        let resumed = run(&resume_config(&journal), threads);
        assert_eq!(resumed.aborted, None);
        assert_eq!(resumed.resumed_tiles, contents.records.len());
        assert_eq!(
            resumed.digest(),
            clean_report().digest(),
            "{threads} threads"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tile_timeout_quarantines_exactly_the_stalled_set_at_any_thread_count() {
    let ids = scanned_tile_ids();
    let mut stalled = vec![ids[1], ids[ids.len() - 2]];
    stalled.sort_unstable();

    let dir = workdir("watchdog");
    let mut digests = Vec::new();
    for threads in [1usize, 2, 4] {
        let journal = dir.join(format!("wd_{threads}.journal"));
        let scan = ScanConfig {
            tile_timeout: Some(Duration::from_millis(250)),
            failure_policy: FailurePolicy::SkipAndRecord {
                max_failed_tiles: ids.len(),
            },
            fault_plan: FaultPlan {
                stall_tasks: stalled.clone(),
                stall_ms: 600,
                site: FaultSite::Prefilter,
                ..Default::default()
            },
            journal: Some(journal.clone()),
            ..base_scan()
        };
        let report = run(&scan, threads);
        assert_eq!(report.aborted, None, "a timeout quarantines, never aborts");

        let mut failed: Vec<usize> = report.failed_tiles.iter().map(|f| f.tile).collect();
        failed.sort_unstable();
        assert_eq!(failed, stalled, "{threads} threads");
        for f in &report.failed_tiles {
            assert_eq!(f.kind, FailureKind::TimedOut, "tile {}", f.tile);
            assert!(
                f.reason.contains("soft time budget of 250 ms"),
                "{}",
                f.reason
            );
        }
        // Stalls fire on the retry too, so each stalled tile is retried
        // once and then quarantined — same semantics as a panicking tile.
        assert_eq!(report.retries, stalled.len());
        assert_eq!(report.telemetry.timed_out, stalled.len());

        // Timed-out tiles are never journaled.
        let contents = read_journal(&journal).expect("journal reads back");
        for id in &stalled {
            assert!(!contents.records.contains_key(id), "tile {id} journaled");
        }
        digests.push(report.digest());
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "timed-out quarantine digest must be thread-count-invariant"
    );
    assert_ne!(
        digests[0],
        clean_report().digest(),
        "quarantined tiles must be visibly absent from the report"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn precancelled_token_aborts_as_interrupted_and_outranks_the_deadline() {
    let token = CancelToken::new();
    token.cancel();
    // Both stop conditions hold; the external interrupt must win the
    // attribution — it is the more actionable of the two.
    let scan = ScanConfig {
        cancel: Some(token),
        deadline: Some(Duration::ZERO),
        ..base_scan()
    };
    let report = run(&scan, 2);
    assert_eq!(report.aborted, Some(AbortReason::Interrupted));
    assert_eq!(report.tiles_scanned, 0);
    assert_eq!(
        report.telemetry.aborted_reason.as_deref(),
        Some("interrupted")
    );
}

#[test]
fn generous_budgets_leave_the_scan_bit_identical() {
    // Deadline, tile budget, and cancel token all armed but never
    // tripped: the watchdog machinery must be purely observational.
    let scan = ScanConfig {
        deadline: Some(Duration::from_secs(3600)),
        tile_timeout: Some(Duration::from_secs(600)),
        cancel: Some(CancelToken::new()),
        ..base_scan()
    };
    let report = run(&scan, 2);
    assert_eq!(report.aborted, None);
    assert_eq!(report.retries, 0);
    assert_eq!(report.telemetry.timed_out, 0);
    assert_eq!(report.telemetry.aborted_reason, None);
    assert_eq!(report.digest(), clean_report().digest());
}

/// Journal bytes left behind by a deadline-aborted scan, plus the length
/// of its header line — computed once for the prefix-truncation
/// properties below.
fn aborted_journal_bytes() -> &'static (Vec<u8>, usize) {
    static BYTES: OnceLock<(Vec<u8>, usize)> = OnceLock::new();
    BYTES.get_or_init(|| {
        let dir = workdir("prop_seed");
        let journal = dir.join("aborted.journal");
        let scan = ScanConfig {
            deadline: Some(Duration::from_millis(100)),
            fault_plan: stall_everything(),
            journal: Some(journal.clone()),
            ..base_scan()
        };
        let report = run(&scan, 2);
        assert_eq!(report.aborted, Some(AbortReason::DeadlineExceeded));
        let bytes = std::fs::read(&journal).expect("journal bytes");
        let header_len = bytes
            .iter()
            .position(|&b| b == b'\n')
            .expect("journal has a header line")
            + 1;
        std::fs::remove_dir_all(&dir).ok();
        (bytes, header_len)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite invariant: *any* prefix truncation of a deadline-aborted
    /// journal (down to its header) is accepted by `read_journal`, and a
    /// resume from it reproduces the clean digest and re-appends the
    /// journal to a superset of the prefix.
    #[test]
    fn any_prefix_of_an_aborted_journal_resumes_to_the_clean_digest(
        cut_frac in 0.0f64..1.0,
    ) {
        let (bytes, header_len) = aborted_journal_bytes();
        let span = bytes.len() - header_len;
        let cut = header_len + ((cut_frac * (span as f64 + 1.0)) as usize).min(span);
        let dir = workdir(&format!("prop_cut_{cut}"));
        let journal = dir.join("cut.journal");
        std::fs::write(&journal, &bytes[..cut]).expect("truncate copy");

        let contents = read_journal(&journal).expect("any prefix cut must be accepted");
        prop_assert!(contents.valid_len as usize <= cut);

        let resumed = run(&resume_config(&journal), 2);
        prop_assert_eq!(resumed.aborted, None);
        prop_assert_eq!(resumed.resumed_tiles, contents.records.len());
        prop_assert_eq!(resumed.digest(), clean_report().digest());
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cuts *inside* the header are the one unrecoverable truncation:
    /// they must fail cleanly (`InvalidData`), never panic, so the CLI
    /// can tell the user to start a fresh journal.
    #[test]
    fn cuts_inside_the_header_fail_cleanly(cut_frac in 0.0f64..1.0) {
        let (bytes, header_len) = aborted_journal_bytes();
        let cut = (cut_frac * (*header_len as f64 - 1.0)).round() as usize;
        let dir = workdir(&format!("prop_hdr_{cut}"));
        let journal = dir.join("hdr.journal");
        std::fs::write(&journal, &bytes[..cut]).expect("truncate copy");
        let err = read_journal(&journal).expect_err("headerless journal must be rejected");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }
}
