//! Batched-inference integration tests: the compiled SVM engine must
//! report exactly the hotspot set of the per-support-vector reference
//! path, for `detect` and `scan_layout` alike, at any worker-thread
//! count, and after a serde round trip (which drops the compiled cache
//! and forces a lazy re-compile).

use hotspot_suite::benchgen::{Benchmark, BenchmarkSpec, LithoOracle};
use hotspot_suite::core::engine::StageId;
use hotspot_suite::core::{EvalMode, HotspotDetector, ScanConfig};
use hotspot_suite::layout::ClipShape;
use std::sync::OnceLock;

fn benchmark() -> &'static Benchmark {
    static BM: OnceLock<Benchmark> = OnceLock::new();
    BM.get_or_init(|| {
        Benchmark::generate(BenchmarkSpec {
            name: "eval-engine-test".into(),
            process_nm: 32,
            width: 48_000,
            height: 48_000,
            train_hotspots: 20,
            train_nonhotspots: 70,
            test_hotspots: 6,
            seed: 23,
            clip_shape: ClipShape::ICCAD2012,
            oracle: LithoOracle::default(),
            background_fill: 0.55,
            ambit_filler: true,
        })
    })
}

fn trained(bm: &Benchmark) -> &'static HotspotDetector {
    static DET: OnceLock<HotspotDetector> = OnceLock::new();
    DET.get_or_init(|| {
        HotspotDetector::builder()
            .threads(2)
            .train(&bm.training)
            .expect("training")
    })
}

#[test]
fn compiled_detect_matches_reference_across_thread_counts() {
    let bm = benchmark();
    let base = trained(bm);

    let mut reported = None;
    for threads in [1, 2, 4] {
        let compiled = base
            .clone()
            .with_threads(threads)
            .detect(&bm.layout, bm.layer)
            .expect("compiled detect");
        let reference = base
            .clone()
            .with_threads(threads)
            .with_eval_mode(EvalMode::Reference)
            .detect(&bm.layout, bm.layer)
            .expect("reference detect");

        assert_eq!(
            compiled.reported, reference.reported,
            "engines disagree at {threads} threads"
        );
        assert_eq!(compiled.clips_extracted, reference.clips_extracted);
        assert_eq!(compiled.clips_flagged, reference.clips_flagged);
        assert_eq!(compiled.feedback_reclaimed, reference.feedback_reclaimed);

        // Every extracted clip went through the batched executor.
        assert!(compiled.eval_batches >= 1, "no eval batches recorded");
        assert!(compiled.eval_batches <= compiled.clips_extracted);
        let stage = compiled
            .telemetry
            .stage(StageId::KernelEvaluation)
            .expect("eval stage");
        assert_eq!(stage.batches, compiled.eval_batches);
        assert_eq!(stage.items_in, compiled.clips_extracted);

        // Admission accounting: both modes admit the identical clip-kernel
        // pairs; only the compiled router records pruned rows, and the
        // reference path never prunes.
        let ref_stage = reference
            .telemetry
            .stage(StageId::KernelEvaluation)
            .expect("reference eval stage");
        assert_eq!(stage.admissions, ref_stage.admissions);
        assert!(
            stage.admissions >= compiled.clips_flagged as u64,
            "every flag requires an admission"
        );
        assert_eq!(ref_stage.admission_skips, 0, "reference path never prunes");

        // Thread count must not change the flagged set either.
        match &reported {
            None => reported = Some(compiled.reported.clone()),
            Some(first) => assert_eq!(
                &compiled.reported, first,
                "flagged set changed between thread counts"
            ),
        }
    }
}

#[test]
fn compiled_scan_matches_reference_engine() {
    let bm = benchmark();
    let detector = trained(bm);
    let scan = ScanConfig {
        tile_cores: 4,
        max_in_flight: 2,
        tile_density: None,
        ..Default::default()
    };

    let mut reported = None;
    for threads in [1, 2, 4] {
        let compiled = detector
            .clone()
            .with_threads(threads)
            .scan_layout(&bm.layout, bm.layer, &scan)
            .expect("compiled scan");
        let reference = detector
            .clone()
            .with_threads(threads)
            .with_eval_mode(EvalMode::Reference)
            .scan_layout(&bm.layout, bm.layer, &scan)
            .expect("reference scan");

        assert_eq!(
            compiled.reported, reference.reported,
            "scan engines disagree at {threads} threads"
        );
        assert_eq!(compiled.clips_extracted, reference.clips_extracted);
        assert_eq!(compiled.clips_flagged, reference.clips_flagged);
        assert!(compiled.eval_batches >= 1, "no eval batches recorded");

        // The flagged set is pinned across thread counts in both modes.
        match &reported {
            None => reported = Some(compiled.reported.clone()),
            Some(first) => assert_eq!(
                &compiled.reported, first,
                "scan flagged set changed between thread counts"
            ),
        }
    }
}

#[test]
#[allow(deprecated)]
fn deprecated_reference_eval_shim_still_routes() {
    let bm = benchmark();
    let detector = trained(bm);

    // `with_reference_eval` is a deprecated forwarding shim; it must keep
    // selecting the same engines as the `EvalMode` API it forwards to.
    let via_shim = detector
        .clone()
        .with_reference_eval(true)
        .detect(&bm.layout, bm.layer)
        .expect("shim reference detect");
    let via_mode = detector
        .clone()
        .with_eval_mode(EvalMode::Reference)
        .detect(&bm.layout, bm.layer)
        .expect("mode reference detect");
    assert_eq!(via_shim.reported, via_mode.reported);

    let back_to_compiled = detector
        .clone()
        .with_reference_eval(false)
        .detect(&bm.layout, bm.layer)
        .expect("shim compiled detect");
    assert_eq!(back_to_compiled.reported, via_mode.reported);
}

#[test]
fn classify_agrees_between_engines() {
    let bm = benchmark();
    let detector = trained(bm);
    let reference = detector.clone().with_eval_mode(EvalMode::Reference);

    for pattern in bm.training.hotspots.iter().chain(&bm.training.nonhotspots) {
        assert_eq!(
            detector.classify(pattern),
            reference.classify(pattern),
            "engines disagree on a training clip"
        );
        for threshold in [-0.5, 0.0, 0.5] {
            assert_eq!(
                detector.classify_with_threshold(pattern, threshold),
                reference.classify_with_threshold(pattern, threshold),
                "engines disagree at threshold {threshold}"
            );
        }
    }
}

#[test]
fn deserialised_detector_recompiles_and_matches() {
    let bm = benchmark();
    let detector = trained(bm);
    let expected = detector.detect(&bm.layout, bm.layer).expect("detect");

    // The compiled cache is #[serde(skip)]: a round-tripped detector must
    // rebuild it lazily and flag the identical set.
    let json = serde_json::to_string(detector).expect("serialise detector");
    let revived: HotspotDetector = serde_json::from_str(&json).expect("deserialise detector");
    let report = revived
        .with_threads(2)
        .detect(&bm.layout, bm.layer)
        .expect("detect after round trip");
    assert_eq!(report.reported, expected.reported);
    assert_eq!(report.clips_flagged, expected.clips_flagged);
}
