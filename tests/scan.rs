//! Streaming-scan integration tests: the tiled `scan_layout` must report
//! exactly the hotspot set of whole-layout `detect` (for any tile size and
//! in-flight window), and it must respect its configured memory bound.

use hotspot_suite::benchgen::{Benchmark, BenchmarkSpec, LithoOracle};
use hotspot_suite::core::engine::StageId;
use hotspot_suite::core::{DetectError, HotspotDetector, ScanConfig};
use hotspot_suite::layout::{ClipShape, LayerId, Layout};
use std::sync::OnceLock;

fn benchmark() -> &'static Benchmark {
    static BM: OnceLock<Benchmark> = OnceLock::new();
    BM.get_or_init(|| {
        Benchmark::generate(BenchmarkSpec {
            name: "scan-test".into(),
            process_nm: 32,
            width: 48_000,
            height: 48_000,
            train_hotspots: 20,
            train_nonhotspots: 70,
            test_hotspots: 6,
            seed: 11,
            clip_shape: ClipShape::ICCAD2012,
            oracle: LithoOracle::default(),
            background_fill: 0.55,
            ambit_filler: true,
        })
    })
}

fn trained(bm: &Benchmark) -> &'static HotspotDetector {
    static DET: OnceLock<HotspotDetector> = OnceLock::new();
    DET.get_or_init(|| {
        HotspotDetector::builder()
            .threads(2)
            .train(&bm.training)
            .expect("training")
    })
}

#[test]
fn scan_reports_the_same_hotspots_as_detect() {
    let bm = benchmark();
    let detector = trained(bm);
    let reference = detector.detect(&bm.layout, bm.layer).expect("detect");

    for (tile_cores, max_in_flight) in [(2, 1), (4, 3), (16, 0), (64, 2)] {
        let scan = ScanConfig {
            tile_cores,
            max_in_flight,
            tile_density: None,
            ..Default::default()
        };
        let report = detector
            .scan_layout(&bm.layout, bm.layer, &scan)
            .expect("scan");
        assert_eq!(
            report.reported, reference.reported,
            "hotspot set diverged at tile_cores={tile_cores} max_in_flight={max_in_flight}"
        );
        // The conservative prefilter only drops tiles whose clips the
        // distribution filter would reject, so surviving-clip counts match
        // whole-layout extraction exactly.
        assert_eq!(report.clips_extracted, reference.clips_extracted);
        assert_eq!(report.clips_flagged, reference.clips_flagged);
        assert_eq!(report.feedback_reclaimed, reference.feedback_reclaimed);
    }
}

#[test]
fn scan_holds_at_most_the_configured_window() {
    let bm = benchmark();
    let detector = trained(bm);
    let scan = ScanConfig {
        tile_cores: 2,
        max_in_flight: 2,
        tile_density: None,
        ..Default::default()
    };
    let report = detector
        .scan_layout(&bm.layout, bm.layer, &scan)
        .expect("scan");
    assert!(
        report.tiles_scanned > scan.max_in_flight,
        "layout too small to exercise the window ({} tiles)",
        report.tiles_scanned
    );
    assert!(report.peak_in_flight >= 1);
    assert!(
        report.peak_in_flight <= scan.max_in_flight,
        "peak {} exceeds the {}-tile window",
        report.peak_in_flight,
        scan.max_in_flight
    );
}

#[test]
fn scan_accounts_for_every_tile() {
    let bm = benchmark();
    let detector = trained(bm);
    let report = detector
        .scan_layout(&bm.layout, bm.layer, &ScanConfig::default())
        .expect("scan");
    assert!(report.tiles_scanned <= report.tiles_total);
    assert!(report.tiles_prefiltered <= report.tiles_scanned);
    assert!(report.clips_flagged <= report.clips_extracted);

    let t = &report.telemetry;
    assert_eq!(t.phase, "scan");
    let prefilter = t.stage(StageId::DensityPrefilter).expect("prefilter stage");
    assert_eq!(prefilter.items_in, report.tiles_scanned);
    assert_eq!(
        prefilter.items_out,
        report.tiles_scanned - report.tiles_prefiltered
    );
    let eval = t.stage(StageId::KernelEvaluation).expect("eval stage");
    assert_eq!(eval.items_in, report.clips_extracted);
}

#[test]
fn aggressive_tile_density_filters_everything_at_full_coverage() {
    let bm = benchmark();
    let detector = trained(bm);
    let scan = ScanConfig {
        tile_density: Some(1.0),
        ..Default::default()
    };
    let report = detector
        .scan_layout(&bm.layout, bm.layer, &scan)
        .expect("scan");
    // No realistic tile window is 100% covered by patterns: every tile is
    // prefiltered and nothing is reported.
    assert_eq!(report.tiles_prefiltered, report.tiles_scanned);
    assert_eq!(report.clips_extracted, 0);
    assert!(report.reported.is_empty());
}

#[test]
fn scan_rejects_bad_inputs() {
    let bm = benchmark();
    let detector = trained(bm);
    let bad = ScanConfig {
        tile_cores: 0,
        ..Default::default()
    };
    assert!(matches!(
        detector.scan_layout(&bm.layout, bm.layer, &bad),
        Err(DetectError::Config(_))
    ));
    let empty = Layout::new("empty");
    assert!(matches!(
        detector.scan_layout(&empty, LayerId::METAL1, &ScanConfig::default()),
        Err(DetectError::EmptyLayer(_))
    ));
}
