//! Integration tests for the Section IV extensions through the public
//! facade: multilayer detection over a GDSII round trip, and double
//! patterning over extracted clips.

use hotspot_suite::core::{
    DecomposedPattern, DetectorConfig, DoublePatterningDetector, MultilayerDetector,
    MultilayerPattern, MultilayerTrainingSet, Pattern,
};
use hotspot_suite::geom::{Point, Rect};
use hotspot_suite::layout::{gdsii, ClipShape, LayerId, Layout};

fn window() -> hotspot_suite::layout::ClipWindow {
    ClipShape::ICCAD2012.window_from_core_corner(Point::new(0, 0))
}

fn m1(gap: i64) -> Vec<Rect> {
    vec![
        Rect::from_extents(0, 0, 400, 300),
        Rect::from_extents(400 + gap, 0, 800 + gap, 300),
    ]
}

fn m2_crossing() -> Vec<Rect> {
    vec![Rect::from_extents(350, 0, 550, 1100)]
}

fn multilayer_training() -> MultilayerTrainingSet {
    let mut t = MultilayerTrainingSet::default();
    for i in 0..4 {
        t.hotspots.push(MultilayerPattern::new(
            window(),
            &[m1(60 + 10 * i), m2_crossing()],
        ));
        t.nonhotspots
            .push(MultilayerPattern::new(window(), &[m1(60 + 10 * i), vec![]]));
        t.nonhotspots.push(MultilayerPattern::new(
            window(),
            &[m1(450 + 10 * i), m2_crossing()],
        ));
    }
    t
}

#[test]
fn multilayer_detection_survives_gdsii_roundtrip() {
    let detector = MultilayerDetector::train(&multilayer_training(), DetectorConfig::default())
        .expect("multilayer training");

    // Two sites: one with the m2 crossing (hotspot), one without (safe).
    let mut layout = Layout::new("ml");
    let (l1, l2) = (LayerId::new(1), LayerId::new(2));
    let hot_at = Point::new(24_000, 24_000);
    let safe_at = Point::new(48_000, 24_000);
    for r in m1(70) {
        layout.add_rect(l1, r.translate(hot_at));
        layout.add_rect(l1, r.translate(safe_at));
    }
    for r in m2_crossing() {
        layout.add_rect(l2, r.translate(hot_at));
    }
    for at in [hot_at, safe_at] {
        for r in hotspot_suite::benchgen::generator::filler_rects(at) {
            layout.add_rect(l1, r);
        }
    }

    // Round-trip the layout through the binary GDSII codec first.
    let restored = gdsii::read_bytes(&gdsii::write_bytes(&layout).expect("write")).expect("read");
    assert_eq!(restored, layout);

    let reported = detector.detect(&restored, &[l1, l2]);
    let hot_window = ClipShape::ICCAD2012.window_from_core_corner(hot_at);
    let safe_window = ClipShape::ICCAD2012.window_from_core_corner(safe_at);
    assert!(
        reported.iter().any(|w| w.is_hit(&hot_window, 0.2)),
        "crossing-wire site must be reported"
    );
    assert!(
        !reported.iter().any(|w| w.is_hit(&safe_window, 0.2)),
        "bare-m1 site must not be reported"
    );
}

#[test]
fn double_patterning_detector_end_to_end() {
    let bars = |pitch: i64| -> Vec<Rect> {
        (0..3)
            .map(|i| Rect::from_extents(i * pitch, 0, i * pitch + 150, 1000))
            .collect()
    };
    let decomposed =
        |pitch: i64| DecomposedPattern::from_pattern(&Pattern::new(window(), &bars(pitch)), 250);
    let hotspots: Vec<_> = (0..4).map(|i| decomposed(230 + 5 * i)).collect();
    let safes: Vec<_> = (0..6).map(|i| decomposed(450 + 20 * i)).collect();
    let detector =
        DoublePatterningDetector::train(&hotspots, &safes, 250, DetectorConfig::default())
            .expect("dp training");

    let mut layout = Layout::new("dp");
    let hot_at = Point::new(24_000, 24_000);
    let safe_at = Point::new(48_000, 24_000);
    for r in bars(238) {
        layout.add_rect(LayerId::METAL1, r.translate(hot_at));
    }
    for r in bars(520) {
        layout.add_rect(LayerId::METAL1, r.translate(safe_at));
    }
    for at in [hot_at, safe_at] {
        for r in hotspot_suite::benchgen::generator::filler_rects(at) {
            layout.add_rect(LayerId::METAL1, r);
        }
    }
    let reported = detector.detect(&layout, LayerId::METAL1);
    let hot_window = ClipShape::ICCAD2012.window_from_core_corner(hot_at);
    let safe_window = ClipShape::ICCAD2012.window_from_core_corner(safe_at);
    assert!(
        reported.iter().any(|w| w.is_hit(&hot_window, 0.2)),
        "tight-pitch site must be reported"
    );
    assert!(
        !reported.iter().any(|w| w.is_hit(&safe_window, 0.2)),
        "relaxed-pitch site must not be reported"
    );
}

#[test]
fn multilayer_model_serialisation_roundtrip() {
    let detector = MultilayerDetector::train(&multilayer_training(), DetectorConfig::default())
        .expect("multilayer training");
    let json = serde_json::to_string(&detector).expect("serialise");
    let restored: MultilayerDetector = serde_json::from_str(&json).expect("parse");
    let probe = MultilayerPattern::new(window(), &[m1(75), m2_crossing()]);
    assert_eq!(detector.classify(&probe), restored.classify(&probe));
}
