//! Incremental re-scan integration tests: the content-addressed tile
//! result cache must make warm re-scans byte-identical to cold scans.
//!
//! The headline invariants pinned here:
//!
//! 1. a warm re-scan of an unchanged layout and a warm re-scan after
//!    editing k tiles both produce a [`ScanReport::digest`] byte-identical
//!    to a cold scan, at 1/2/4 threads, recomputing exactly the expected
//!    number of tiles;
//! 2. a corrupt cache entry is rejected individually (that tile recomputes,
//!    the scan still succeeds) and a header mismatch discards the store
//!    wholesale;
//! 3. a quarantined tile is never written to the cache as a success, and
//!    the cache composes with the journal/resume machinery.

use hotspot_suite::benchgen::{Benchmark, BenchmarkSpec, LithoOracle};
use hotspot_suite::core::{
    DetectError, FailurePolicy, FaultPlan, FaultSite, HotspotDetector, ScanConfig, ScanReport,
};
use hotspot_suite::geom::Rect;
use hotspot_suite::layout::scan::{TileScanner, TileSpec};
use hotspot_suite::layout::{ClipShape, Layout};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::OnceLock;

fn benchmark() -> &'static Benchmark {
    static BM: OnceLock<Benchmark> = OnceLock::new();
    BM.get_or_init(|| {
        Benchmark::generate(BenchmarkSpec {
            name: "cache-test".into(),
            process_nm: 32,
            width: 48_000,
            height: 48_000,
            train_hotspots: 20,
            train_nonhotspots: 70,
            test_hotspots: 6,
            seed: 23,
            clip_shape: ClipShape::ICCAD2012,
            oracle: LithoOracle::default(),
            background_fill: 0.55,
            ambit_filler: true,
        })
    })
}

fn trained(bm: &Benchmark) -> &'static HotspotDetector {
    static DET: OnceLock<HotspotDetector> = OnceLock::new();
    DET.get_or_init(|| {
        HotspotDetector::builder()
            .threads(2)
            .train(&bm.training)
            .expect("training")
    })
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hotspot_cache_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("tempdir");
    dir
}

fn base_scan() -> ScanConfig {
    ScanConfig {
        tile_cores: 8,
        max_in_flight: 2,
        ..Default::default()
    }
}

fn cached_scan(cache: &std::path::Path) -> ScanConfig {
    ScanConfig {
        cache: Some(cache.to_path_buf()),
        ..base_scan()
    }
}

fn run_on(layout: &Layout, scan: &ScanConfig, threads: usize) -> ScanReport {
    let bm = benchmark();
    trained(bm)
        .clone()
        .with_threads(threads)
        .scan_layout(layout, bm.layer, scan)
        .expect("scan")
}

fn run(scan: &ScanConfig, threads: usize) -> ScanReport {
    run_on(&benchmark().layout, scan, threads)
}

/// The clean (cache-free) report every cached variant must match.
fn clean_report() -> &'static ScanReport {
    static REPORT: OnceLock<ScanReport> = OnceLock::new();
    REPORT.get_or_init(|| run(&base_scan(), 2))
}

/// The tile spec `base_scan` resolves to (stride = 8 cores, clip halo).
fn tile_spec() -> TileSpec {
    let shape = ClipShape::ICCAD2012;
    TileSpec::new(shape.core_side() * 8, shape.ambit() + shape.core_side()).expect("spec")
}

/// Content fingerprints of every non-empty tile of `layout`, keyed by
/// grid coordinate — the same quantity the cache keys hits on.
fn layout_fingerprints(layout: &Layout) -> BTreeMap<(i64, i64), u64> {
    let bm = benchmark();
    TileScanner::from_rects(layout.dissected_rects(bm.layer), tile_spec())
        .map(|t| ((t.ix, t.iy), t.content_fingerprint()))
        .collect()
}

#[test]
fn warm_rescan_is_bit_identical_with_zero_misses_at_any_thread_count() {
    let dir = workdir("warm");
    let cache = dir.join("tiles.cache");
    let scan = cached_scan(&cache);

    let cold = run(&scan, 2);
    assert_eq!(cold.digest(), clean_report().digest());
    assert_eq!(cold.cache_hits, 0, "first scan has nothing to hit");
    let tiles = layout_fingerprints(&benchmark().layout).len();
    assert!(tiles > 4, "benchmark too small for cache tests");
    assert_eq!(cold.cache_misses, tiles, "every non-empty tile is a miss");
    assert!(cache.exists(), "cache written at scan completion");

    for threads in [1, 2, 4] {
        let warm = run(&scan, threads);
        assert_eq!(warm.digest(), clean_report().digest(), "{threads} threads");
        assert_eq!(warm.cache_misses, 0, "{threads} threads");
        assert_eq!(warm.cache_hits, tiles, "{threads} threads");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn editing_k_tiles_recomputes_exactly_the_touched_tiles() {
    let bm = benchmark();
    let dir = workdir("edited");
    let cache = dir.join("tiles.cache");
    run(&cached_scan(&cache), 2);

    // Add one small rect in the layout interior: the bbox (and therefore
    // the tile grid) must not move, and only the tiles whose core+ambit
    // window sees the new geometry may change fingerprint.
    let bbox = bm.layout.bbox().expect("non-empty layout");
    let cx = (bbox.min().x + bbox.max().x) / 2;
    let cy = (bbox.min().y + bbox.max().y) / 2;
    let mut edited = bm.layout.clone();
    edited.add_rect(bm.layer, Rect::from_extents(cx, cy, cx + 300, cy + 300));

    let before = layout_fingerprints(&bm.layout);
    let after = layout_fingerprints(&edited);
    let expected_misses = after
        .iter()
        .filter(|(key, fp)| before.get(key) != Some(fp))
        .count();
    assert!(
        expected_misses > 0 && expected_misses < after.len(),
        "edit must touch some but not all of the {} tiles, got {expected_misses}",
        after.len()
    );

    let edited_clean = run_on(&edited, &base_scan(), 2);
    for threads in [1, 2, 4] {
        // Fresh copy per thread count: a warm scan rewrites the store.
        let copy = dir.join(format!("tiles_{threads}.cache"));
        std::fs::copy(&cache, &copy).expect("copy cache");
        let report = run_on(&edited, &cached_scan(&copy), threads);
        assert_eq!(report.digest(), edited_clean.digest(), "{threads} threads");
        assert_eq!(report.cache_misses, expected_misses, "{threads} threads");
        assert_eq!(
            report.cache_hits,
            after.len() - expected_misses,
            "{threads} threads"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_cache_entry_is_rejected_individually() {
    let dir = workdir("corrupt");
    let cache = dir.join("tiles.cache");
    let scan = cached_scan(&cache);
    run(&scan, 2);

    // Flip one bit inside the payload of the second entry line (line 0 is
    // the header). The framing checksum must reject exactly that entry.
    let mut bytes = std::fs::read(&cache).expect("cache bytes");
    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(
            bytes
                .iter()
                .enumerate()
                .filter(|(_, b)| **b == b'\n')
                .map(|(i, _)| i + 1),
        )
        .collect();
    assert!(line_starts.len() > 3, "expected several cache entries");
    let mut target = line_starts[2] + 24;
    while bytes[target] == b'\n' || bytes[target] ^ 1 == b'\n' {
        target += 1;
    }
    bytes[target] ^= 1;
    std::fs::write(&cache, &bytes).expect("write damaged cache");

    let report = run(&scan, 2);
    assert_eq!(report.digest(), clean_report().digest());
    assert_eq!(report.cache_misses, 1, "only the damaged entry recomputes");

    // The write-back healed the store: a third scan is all hits.
    let healed = run(&scan, 2);
    assert_eq!(healed.cache_misses, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn grid_or_threshold_change_discards_the_whole_cache() {
    let dir = workdir("discard");
    let cache = dir.join("tiles.cache");
    run(&cached_scan(&cache), 2);

    // Same cache file, different tile grid: the header fingerprint must
    // not match, every tile recomputes, and the scan still succeeds.
    let other_grid = ScanConfig {
        tile_cores: 4,
        ..cached_scan(&cache)
    };
    let report = run(&other_grid, 2);
    assert_eq!(report.cache_hits, 0, "discarded cache serves nothing");
    assert!(report.cache_misses > 0);
    assert_eq!(
        report.digest(),
        run(
            &ScanConfig {
                tile_cores: 4,
                ..base_scan()
            },
            2
        )
        .digest()
    );

    // The rewrite now carries the tile_cores=4 header: the original scan
    // config sees a mismatched header again and recomputes everything.
    let back = run(&cached_scan(&cache), 2);
    assert_eq!(back.cache_hits, 0);
    assert_eq!(back.digest(), clean_report().digest());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantined_tiles_are_never_cached_as_successes() {
    let dir = workdir("quarantine");
    let cache = dir.join("tiles.cache");
    let plan = FaultPlan {
        seed: 42,
        panic_per_mille: 100,
        site: FaultSite::Prefilter,
        ..Default::default()
    };
    let faulty = ScanConfig {
        failure_policy: FailurePolicy::SkipAndRecord {
            max_failed_tiles: usize::MAX,
        },
        fault_plan: plan,
        ..cached_scan(&cache)
    };
    let degraded = run(&faulty, 2);
    let quarantined = degraded.failed_tiles.len();
    assert!(quarantined > 0, "seed 42 at 10% must quarantine tiles");

    // A fault-free warm re-scan recomputes exactly the quarantined tiles:
    // had any been cached as a success, it would be served stale.
    let report = run(&cached_scan(&cache), 2);
    assert_eq!(report.cache_misses, quarantined);
    assert!(report.failed_tiles.is_empty());
    assert_eq!(report.digest(), clean_report().digest());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_composes_with_journal_resume() {
    let dir = workdir("resume");
    let cache = dir.join("tiles.cache");
    let journal = dir.join("scan.journal");

    // Kill the scan after three journal appends: no cache is written (the
    // store lands only at scan completion).
    let killed = ScanConfig {
        journal: Some(journal.clone()),
        fault_plan: FaultPlan {
            fail_journal_at: Some(3),
            ..Default::default()
        },
        ..cached_scan(&cache)
    };
    let bm = benchmark();
    let err = trained(bm)
        .clone()
        .with_threads(2)
        .scan_layout(&bm.layout, bm.layer, &killed)
        .expect_err("injected journal failure must abort");
    assert!(matches!(err, DetectError::Journal(_)), "{err:?}");
    assert!(!cache.exists(), "aborted scan must not write the cache");

    // Resume from the journal with the cache enabled: replayed tiles are
    // recorded into the cache alongside the freshly computed ones.
    let resumed = ScanConfig {
        journal: Some(journal.clone()),
        resume_from: Some(journal.clone()),
        ..cached_scan(&cache)
    };
    let report = run(&resumed, 2);
    assert_eq!(report.digest(), clean_report().digest());
    assert_eq!(report.resumed_tiles, 3);

    // The healed cache now covers every tile, including the replayed ones.
    let warm = run(&cached_scan(&cache), 2);
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(warm.digest(), clean_report().digest());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_verify_revalidates_an_honest_cache() {
    let dir = workdir("verify");
    let cache = dir.join("tiles.cache");
    run(&cached_scan(&cache), 2);

    let verify = ScanConfig {
        cache_verify: true,
        ..cached_scan(&cache)
    };
    let report = run(&verify, 2);
    assert_eq!(report.digest(), clean_report().digest());
    assert!(report.cache_hits > 0, "verify mode still reports the hits");
    std::fs::remove_dir_all(&dir).ok();
}
