//! Fault-tolerance integration tests: panic isolation, the checkpoint
//! journal, and the deterministic fault-injection harness.
//!
//! The two load-bearing guarantees pinned here:
//!
//! 1. a scan killed mid-run and resumed from its journal produces a report
//!    whose deterministic content ([`ScanReport::digest`]) is
//!    byte-identical to an uninterrupted run, at any thread count and for
//!    a journal truncated at *any* byte boundary;
//! 2. under [`FailurePolicy::SkipAndRecord`], seeded injected panics never
//!    abort the scan and the quarantine list is exactly the set of tiles
//!    the plan says must fail — independent of thread count.

use hotspot_suite::benchgen::{Benchmark, BenchmarkSpec, LithoOracle};
use hotspot_suite::core::journal::read_journal;
use hotspot_suite::core::{
    DetectError, FailurePolicy, FaultPlan, FaultSite, HotspotDetector, ScanConfig, ScanReport,
};
use hotspot_suite::layout::ClipShape;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

fn benchmark() -> &'static Benchmark {
    static BM: OnceLock<Benchmark> = OnceLock::new();
    BM.get_or_init(|| {
        Benchmark::generate(BenchmarkSpec {
            name: "fault-test".into(),
            process_nm: 32,
            width: 48_000,
            height: 48_000,
            train_hotspots: 20,
            train_nonhotspots: 70,
            test_hotspots: 6,
            seed: 11,
            clip_shape: ClipShape::ICCAD2012,
            oracle: LithoOracle::default(),
            background_fill: 0.55,
            ambit_filler: true,
        })
    })
}

fn trained(bm: &Benchmark) -> &'static HotspotDetector {
    static DET: OnceLock<HotspotDetector> = OnceLock::new();
    DET.get_or_init(|| {
        HotspotDetector::builder()
            .threads(2)
            .train(&bm.training)
            .expect("training")
    })
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hotspot_fault_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("tempdir");
    dir
}

fn base_scan() -> ScanConfig {
    ScanConfig {
        tile_cores: 8,
        max_in_flight: 2,
        ..Default::default()
    }
}

fn run(scan: &ScanConfig, threads: usize) -> ScanReport {
    let bm = benchmark();
    trained(bm)
        .clone()
        .with_threads(threads)
        .scan_layout(&bm.layout, bm.layer, scan)
        .expect("scan")
}

/// The clean (fault-free, journal-free) report every variant must match.
fn clean_report() -> &'static ScanReport {
    static REPORT: OnceLock<ScanReport> = OnceLock::new();
    REPORT.get_or_init(|| run(&base_scan(), 2))
}

/// Tile ids the clean scan completes, via a throwaway journal.
fn scanned_tile_ids() -> &'static Vec<usize> {
    static IDS: OnceLock<Vec<usize>> = OnceLock::new();
    IDS.get_or_init(|| {
        let dir = workdir("tile_ids");
        let journal = dir.join("scan.journal");
        let scan = ScanConfig {
            journal: Some(journal.clone()),
            ..base_scan()
        };
        run(&scan, 2);
        let contents = read_journal(&journal).expect("journal reads back");
        let mut ids: Vec<usize> = contents.records.keys().copied().collect();
        ids.sort_unstable();
        std::fs::remove_dir_all(&dir).ok();
        assert!(ids.len() > 4, "benchmark too small for fault tests");
        ids
    })
}

fn resume_config(journal: &Path) -> ScanConfig {
    ScanConfig {
        journal: Some(journal.to_path_buf()),
        resume_from: Some(journal.to_path_buf()),
        ..base_scan()
    }
}

#[test]
fn journaled_scan_matches_unjournaled_digest() {
    let dir = workdir("journaled");
    let journal = dir.join("scan.journal");
    let scan = ScanConfig {
        journal: Some(journal.clone()),
        ..base_scan()
    };
    let report = run(&scan, 2);
    assert_eq!(report.digest(), clean_report().digest());
    assert_eq!(report.resumed_tiles, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_after_truncation_is_bit_identical_at_any_cut() {
    let dir = workdir("truncate");
    let full = dir.join("full.journal");
    let scan = ScanConfig {
        journal: Some(full.clone()),
        ..base_scan()
    };
    run(&scan, 2);
    let clean_bytes = std::fs::read(&full).expect("journal bytes");
    let clean_digest = clean_report().digest();

    // Line starts after the header: every record boundary in the file.
    let boundaries: Vec<usize> = clean_bytes
        .iter()
        .enumerate()
        .filter(|(_, b)| **b == b'\n')
        .map(|(i, _)| i + 1)
        .collect();
    assert!(boundaries.len() > 3, "expected several journal records");

    // Cut at the first record boundary, a middle one, the last, and at
    // ragged mid-record offsets around the middle boundary.
    let mid = boundaries[boundaries.len() / 2];
    let cuts = [
        boundaries[1],
        mid,
        boundaries[boundaries.len() - 2],
        mid + 1,
        mid + 7,
        mid.saturating_sub(3),
    ];
    for (i, &cut) in cuts.iter().enumerate() {
        for threads in [1, 2, 4] {
            let partial = dir.join(format!("cut_{i}_{threads}.journal"));
            std::fs::write(&partial, &clean_bytes[..cut]).expect("truncate copy");
            let report = run(&resume_config(&partial), threads);
            assert_eq!(
                report.digest(),
                clean_digest,
                "cut at byte {cut}, {threads} threads"
            );
            assert!(
                report.resumed_tiles > 0 || cut <= boundaries[0],
                "cut at byte {cut} should replay at least one tile"
            );
            // The healed journal is byte-identical to the uninterrupted
            // one: appends re-run in scan order from the valid prefix.
            assert_eq!(
                std::fs::read(&partial).expect("healed journal"),
                clean_bytes,
                "cut at byte {cut}, {threads} threads"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_journal_failure_kills_and_resume_heals() {
    let dir = workdir("journal_kill");
    let journal = dir.join("scan.journal");
    // The third fresh append dies with an injected I/O error — a
    // deterministic stand-in for `kill -9` mid-scan.
    let killed = ScanConfig {
        journal: Some(journal.clone()),
        fault_plan: FaultPlan {
            fail_journal_at: Some(3),
            ..Default::default()
        },
        ..base_scan()
    };
    let bm = benchmark();
    let err = trained(bm)
        .clone()
        .with_threads(2)
        .scan_layout(&bm.layout, bm.layer, &killed)
        .expect_err("injected journal failure must abort");
    assert!(matches!(err, DetectError::Journal(_)), "{err:?}");

    let contents = read_journal(&journal).expect("prefix is readable");
    assert_eq!(contents.records.len(), 3, "three appends landed");

    for threads in [1, 2, 4] {
        let copy = dir.join(format!("resume_{threads}.journal"));
        std::fs::copy(&journal, &copy).expect("copy journal");
        let report = run(&resume_config(&copy), threads);
        assert_eq!(report.digest(), clean_report().digest());
        assert_eq!(report.resumed_tiles, 3);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_rejects_a_journal_from_a_different_scan() {
    let dir = workdir("mismatch");
    let journal = dir.join("scan.journal");
    let scan = ScanConfig {
        journal: Some(journal.clone()),
        ..base_scan()
    };
    run(&scan, 2);
    // Same journal, different grid: the fingerprint must not match.
    let mismatched = ScanConfig {
        tile_cores: 4,
        journal: Some(journal.clone()),
        resume_from: Some(journal.clone()),
        ..base_scan()
    };
    let bm = benchmark();
    let err = trained(bm)
        .scan_layout(&bm.layout, bm.layer, &mismatched)
        .expect_err("mismatched journal must be rejected");
    assert!(matches!(err, DetectError::Journal(_)), "{err:?}");
    assert!(err.to_string().contains("different scan"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantine_is_exactly_the_planned_failure_set() {
    let plan = FaultPlan {
        seed: 42,
        panic_per_mille: 100,
        site: FaultSite::Prefilter,
        ..Default::default()
    };
    let expected: Vec<usize> = scanned_tile_ids()
        .iter()
        .copied()
        .filter(|&id| plan.persistent(id))
        .collect();
    assert!(
        !expected.is_empty(),
        "seed 42 at 10% must hit at least one tile"
    );
    assert!(
        expected.len() * 10 <= scanned_tile_ids().len() * 3,
        "10% per-mille plan should stay well under the tile count"
    );

    let dir = workdir("quarantine");
    let mut digests = Vec::new();
    for threads in [1, 2, 4] {
        let journal = dir.join(format!("q_{threads}.journal"));
        let scan = ScanConfig {
            failure_policy: FailurePolicy::SkipAndRecord {
                max_failed_tiles: scanned_tile_ids().len(),
            },
            journal: Some(journal.clone()),
            fault_plan: plan.clone(),
            ..base_scan()
        };
        let report = run(&scan, threads);
        let mut failed: Vec<usize> = report.failed_tiles.iter().map(|f| f.tile).collect();
        failed.sort_unstable();
        assert_eq!(failed, expected, "{threads} threads");
        assert_eq!(report.retries, expected.len(), "one retry per failure");
        for f in &report.failed_tiles {
            assert!(f.reason.contains("injected fault"), "{}", f.reason);
        }
        // Quarantined tiles are never journaled.
        let contents = read_journal(&journal).expect("journal reads back");
        for id in &expected {
            assert!(!contents.records.contains_key(id), "tile {id} journaled");
        }
        digests.push(report.digest());
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "degraded-mode digest must be thread-count-invariant"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn abort_policy_fails_fast_with_the_failing_tile() {
    let target = scanned_tile_ids()[1];
    let scan = ScanConfig {
        fault_plan: FaultPlan {
            panic_tasks: vec![target],
            site: FaultSite::Prefilter,
            ..Default::default()
        },
        ..base_scan()
    };
    let bm = benchmark();
    let err = trained(bm)
        .scan_layout(&bm.layout, bm.layer, &scan)
        .expect_err("Abort must surface the panic");
    match err {
        DetectError::TaskPanicked(failure) => {
            assert_eq!(failure.index, target);
            assert!(failure.payload.contains("injected fault"), "{failure}");
        }
        other => panic!("expected TaskPanicked, got {other:?}"),
    }
}

#[test]
fn transient_faults_are_retried_and_leave_no_quarantine() {
    let plan = FaultPlan {
        seed: 7,
        transient_per_mille: 200,
        site: FaultSite::Prefilter,
        ..Default::default()
    };
    let expected_retries = scanned_tile_ids()
        .iter()
        .filter(|&&id| plan.transient(id))
        .count();
    assert!(expected_retries > 0, "seed 7 at 20% must hit at least once");

    // Abort policy: the scan still completes because every retry succeeds.
    let scan = ScanConfig {
        fault_plan: plan,
        ..base_scan()
    };
    let report = run(&scan, 2);
    assert_eq!(report.retries, expected_retries);
    assert!(report.failed_tiles.is_empty());
    assert_eq!(report.digest(), clean_report().digest());
}

#[test]
fn quarantine_bound_is_enforced() {
    let target = scanned_tile_ids()[0];
    let scan = ScanConfig {
        failure_policy: FailurePolicy::SkipAndRecord {
            max_failed_tiles: 0,
        },
        fault_plan: FaultPlan {
            panic_tasks: vec![target],
            site: FaultSite::Prefilter,
            ..Default::default()
        },
        ..base_scan()
    };
    let bm = benchmark();
    let err = trained(bm)
        .scan_layout(&bm.layout, bm.layer, &scan)
        .expect_err("bound of 0 must reject the first quarantine");
    assert!(
        matches!(err, DetectError::TooManyFailures { failed: 1, max: 0 }),
        "{err:?}"
    );
}

#[test]
fn detect_surfaces_injected_panics_as_typed_failures() {
    let bm = benchmark();
    let detector = trained(bm).clone().with_fault_plan(FaultPlan {
        panic_tasks: vec![0],
        ..Default::default()
    });
    let err = detector
        .detect(&bm.layout, bm.layer)
        .expect_err("evaluation batch 0 must panic");
    match err {
        DetectError::TaskPanicked(failure) => {
            assert_eq!(failure.stage, "kernel_evaluation");
            assert_eq!(failure.index, 0);
            assert!(failure.payload.contains("injected fault"), "{failure}");
        }
        other => panic!("expected TaskPanicked, got {other:?}"),
    }
}
