//! Integration tests for Table IV behaviour (training-data fractions) and
//! the paper's rapid-convergence claim, plus suite-level sanity.

use hotspot_suite::benchgen::{iccad_suite, Benchmark, SuiteScale};
use hotspot_suite::core::{DetectorConfig, HotspotDetector};

#[test]
fn suite_generates_and_labels_consistently() {
    // Generate the smallest suite end to end; every training label must
    // agree with the oracle and every benchmark must carry hotspots.
    let specs = iccad_suite(SuiteScale::Tiny);
    assert_eq!(specs.len(), 6);
    let bm = Benchmark::generate(specs[0].clone());
    assert!(!bm.actual.is_empty());
    assert!(!bm.training.hotspots.is_empty());
    for p in bm.training.hotspots.iter().take(3) {
        assert!(bm
            .spec
            .oracle
            .is_hotspot(&p.window.core, &p.window.clip, &p.rects));
    }
}

#[test]
fn subsampled_training_still_detects_known_patterns() {
    // Rapid convergence: a modest fraction of the training data should
    // still catch a solid share of the hotspots.
    let specs = iccad_suite(SuiteScale::Tiny);
    let bm = Benchmark::generate(specs[2].clone()); // benchmark3: most data
    let full =
        HotspotDetector::train(&bm.training, DetectorConfig::default()).expect("full training");
    let sub_training = bm.training.subsample(0.5);
    let sub = HotspotDetector::train(&sub_training, DetectorConfig::default())
        .expect("subsampled training");

    let full_eval = full
        .detect(&bm.layout, bm.layer)
        .expect("evaluation")
        .score_against(&bm.actual, 0.2, bm.area_um2());
    let sub_eval = sub
        .detect(&bm.layout, bm.layer)
        .expect("evaluation")
        .score_against(&bm.actual, 0.2, bm.area_um2());

    assert!(
        full_eval.accuracy() >= 0.7,
        "full accuracy {:.2}",
        full_eval.accuracy()
    );
    assert!(
        sub_eval.accuracy() >= full_eval.accuracy() * 0.5,
        "half the data should keep at least half the accuracy ({:.2} vs {:.2})",
        sub_eval.accuracy(),
        full_eval.accuracy()
    );
}

#[test]
fn training_set_subsample_counts() {
    let specs = iccad_suite(SuiteScale::Tiny);
    let bm = Benchmark::generate(specs[1].clone());
    for fraction in [1.0, 0.5, 0.25] {
        let sub = bm.training.subsample(fraction);
        let expect_h = ((bm.training.hotspots.len() as f64 * fraction).round() as usize).max(1);
        assert_eq!(sub.hotspots.len(), expect_h);
        assert!(sub.nonhotspots.len() <= bm.training.nonhotspots.len());
    }
}
