//! Integration tests for the Table II/III orderings: the full framework
//! versus the single-kernel baseline and the contest-winner proxy, and the
//! internal ablation invariants.

use hotspot_suite::baselines::{PatternMatcher, SingleKernelSvm};
use hotspot_suite::benchgen::{Benchmark, BenchmarkSpec, LithoOracle};
use hotspot_suite::core::{score, AblationSwitches, DetectorConfig, HotspotDetector};
use hotspot_suite::layout::ClipShape;
use std::time::Duration;

fn benchmark() -> Benchmark {
    Benchmark::generate(BenchmarkSpec {
        name: "ablation".into(),
        process_nm: 28,
        width: 72_000,
        height: 72_000,
        train_hotspots: 18,
        train_nonhotspots: 70,
        test_hotspots: 8,
        seed: 31,
        clip_shape: ClipShape::ICCAD2012,
        oracle: LithoOracle::default(),
        background_fill: 0.5,
        ambit_filler: true,
    })
}

#[test]
fn ours_beats_matcher_on_hit_extra_at_similar_accuracy() {
    // The paper's headline: against the fuzzy pattern-matching winner, our
    // framework reaches comparable accuracy with a better hit/extra ratio.
    let bm = benchmark();
    let ours = HotspotDetector::train(&bm.training, DetectorConfig::default())
        .expect("framework training");
    let ours_report = ours.detect(&bm.layout, bm.layer).expect("evaluation");
    let ours_eval = ours_report.score_against(&bm.actual, 0.2, bm.area_um2());

    let matcher = PatternMatcher::train(&bm.training, DetectorConfig::default());
    let match_report = matcher.detect(&bm.layout, bm.layer);
    let match_eval = score(
        &match_report.reported,
        &bm.actual,
        0.2,
        bm.area_um2(),
        Duration::ZERO,
    );

    assert!(
        ours_eval.accuracy() + 0.15 >= match_eval.accuracy(),
        "accuracy regressed: ours {:.2} vs matcher {:.2}",
        ours_eval.accuracy(),
        match_eval.accuracy()
    );
    assert!(
        ours_eval.hit_extra_ratio() >= match_eval.hit_extra_ratio(),
        "hit/extra regressed: ours {:.3} vs matcher {:.3}",
        ours_eval.hit_extra_ratio(),
        match_eval.hit_extra_ratio()
    );
}

#[test]
fn topology_beats_single_kernel_on_false_alarm() {
    // Table III: the single huge kernel ("Basic") produces more extras than
    // the clustered framework at comparable-or-worse accuracy.
    let bm = benchmark();
    let basic =
        SingleKernelSvm::train(&bm.training, DetectorConfig::default()).expect("basic training");
    let basic_report = basic.detect(&bm.layout, bm.layer);
    let basic_eval = score(
        &basic_report.reported,
        &bm.actual,
        0.2,
        bm.area_um2(),
        Duration::ZERO,
    );

    let ours = HotspotDetector::train(&bm.training, DetectorConfig::default())
        .expect("framework training");
    let ours_eval = ours
        .detect(&bm.layout, bm.layer)
        .expect("evaluation")
        .score_against(&bm.actual, 0.2, bm.area_um2());

    assert!(
        ours_eval.hit_extra_ratio() >= basic_eval.hit_extra_ratio(),
        "clustered framework should win hit/extra: ours {:.3} vs basic {:.3}",
        ours_eval.hit_extra_ratio(),
        basic_eval.hit_extra_ratio()
    );
}

#[test]
fn removal_never_reduces_hits() {
    let bm = benchmark();
    let with = HotspotDetector::train(
        &bm.training,
        DetectorConfig {
            ablation: AblationSwitches {
                topology: true,
                removal: true,
                feedback: false,
            },
            ..Default::default()
        },
    )
    .expect("training");
    let without = HotspotDetector::train(
        &bm.training,
        DetectorConfig {
            ablation: AblationSwitches {
                topology: true,
                removal: false,
                feedback: false,
            },
            ..Default::default()
        },
    )
    .expect("training");

    let with_eval = with
        .detect(&bm.layout, bm.layer)
        .expect("evaluation")
        .score_against(&bm.actual, 0.2, bm.area_um2());
    let without_eval = without
        .detect(&bm.layout, bm.layer)
        .expect("evaluation")
        .score_against(&bm.actual, 0.2, bm.area_um2());

    assert_eq!(
        with_eval.hits, without_eval.hits,
        "removal must not change the hit count"
    );
    assert!(
        with_eval.reported <= without_eval.reported,
        "removal must not increase the report count"
    );
}

#[test]
fn feedback_never_reduces_hits() {
    let bm = benchmark();
    let run = |feedback: bool| {
        let det = HotspotDetector::train(
            &bm.training,
            DetectorConfig {
                ablation: AblationSwitches {
                    topology: true,
                    removal: true,
                    feedback,
                },
                ..Default::default()
            },
        )
        .expect("training");
        det.detect(&bm.layout, bm.layer)
            .expect("evaluation")
            .score_against(&bm.actual, 0.2, bm.area_um2())
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with.hits + 1 >= without.hits,
        "feedback cost more than one hit: {} vs {}",
        with.hits,
        without.hits
    );
    assert!(
        with.extras <= without.extras,
        "feedback must not increase extras: {} vs {}",
        with.extras,
        without.extras
    );
}
