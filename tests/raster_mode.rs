//! Rasterisation-mode integration tests: the shared per-tile summed-area
//! table (`RasterMode::Sat`) must produce **byte-identical** scan digests
//! to the reference per-clip sweep (`RasterMode::Reference`), at any
//! worker-thread count, and training under either mode must converge to
//! the same model. The SAT path is an exact-integer reformulation, not an
//! approximation — these tests pin that claim end to end.

use hotspot_suite::benchgen::{Benchmark, BenchmarkSpec, LithoOracle};
use hotspot_suite::core::{HotspotDetector, RasterMode, ScanConfig};
use hotspot_suite::layout::ClipShape;
use std::sync::OnceLock;

fn benchmark() -> &'static Benchmark {
    static BM: OnceLock<Benchmark> = OnceLock::new();
    BM.get_or_init(|| {
        Benchmark::generate(BenchmarkSpec {
            name: "raster-mode-test".into(),
            process_nm: 32,
            width: 48_000,
            height: 48_000,
            train_hotspots: 20,
            train_nonhotspots: 70,
            test_hotspots: 6,
            seed: 29,
            clip_shape: ClipShape::ICCAD2012,
            oracle: LithoOracle::default(),
            background_fill: 0.55,
            ambit_filler: true,
        })
    })
}

fn trained(bm: &Benchmark) -> &'static HotspotDetector {
    static DET: OnceLock<HotspotDetector> = OnceLock::new();
    DET.get_or_init(|| {
        HotspotDetector::builder()
            .threads(2)
            .train(&bm.training)
            .expect("training")
    })
}

#[test]
fn scan_digest_is_byte_identical_across_raster_modes() {
    let bm = benchmark();
    let detector = trained(bm);
    let scan = ScanConfig {
        tile_cores: 4,
        max_in_flight: 2,
        tile_density: None,
        ..Default::default()
    };

    let mut pinned: Option<String> = None;
    for threads in [1, 2, 4] {
        let sat = detector
            .clone()
            .with_threads(threads)
            .with_raster_mode(RasterMode::Sat)
            .scan_layout(&bm.layout, bm.layer, &scan)
            .expect("sat scan");
        let reference = detector
            .clone()
            .with_threads(threads)
            .with_raster_mode(RasterMode::Reference)
            .scan_layout(&bm.layout, bm.layer, &scan)
            .expect("reference scan");

        assert_eq!(
            sat.digest(),
            reference.digest(),
            "raster modes disagree at {threads} threads"
        );
        assert_eq!(sat.reported, reference.reported);
        assert_eq!(sat.clips_extracted, reference.clips_extracted);
        assert_eq!(sat.clips_flagged, reference.clips_flagged);
        assert_eq!(sat.feedback_reclaimed, reference.feedback_reclaimed);

        // The digest is pinned across thread counts in both modes.
        match &pinned {
            None => pinned = Some(sat.digest()),
            Some(first) => assert_eq!(
                &sat.digest(),
                first,
                "scan digest changed between thread counts"
            ),
        }
    }
}

#[test]
fn detect_matches_across_raster_modes() {
    let bm = benchmark();
    let detector = trained(bm);

    for threads in [1, 2, 4] {
        let sat = detector
            .clone()
            .with_threads(threads)
            .with_raster_mode(RasterMode::Sat)
            .detect(&bm.layout, bm.layer)
            .expect("sat detect");
        let reference = detector
            .clone()
            .with_threads(threads)
            .with_raster_mode(RasterMode::Reference)
            .detect(&bm.layout, bm.layer)
            .expect("reference detect");

        assert_eq!(
            sat.reported, reference.reported,
            "raster modes disagree at {threads} threads"
        );
        assert_eq!(sat.clips_extracted, reference.clips_extracted);
        assert_eq!(sat.clips_flagged, reference.clips_flagged);
    }
}

#[test]
fn training_converges_identically_under_both_modes() {
    // Density clustering during training routes through the same mode
    // seam; exact rasterisation means the clusters — and therefore the
    // trained kernels and the flagged set — cannot depend on the mode.
    let bm = benchmark();
    let sat = HotspotDetector::builder()
        .threads(2)
        .raster_mode(RasterMode::Sat)
        .train(&bm.training)
        .expect("sat training");
    let reference = HotspotDetector::builder()
        .threads(2)
        .raster_mode(RasterMode::Reference)
        .train(&bm.training)
        .expect("reference training");

    assert_eq!(sat.kernels().len(), reference.kernels().len());
    let sat_report = sat.detect(&bm.layout, bm.layer).expect("sat detect");
    let ref_report = reference
        .detect(&bm.layout, bm.layer)
        .expect("reference detect");
    assert_eq!(sat_report.reported, ref_report.reported);
    assert_eq!(sat_report.clips_flagged, ref_report.clips_flagged);
}
