//! Engine-level integration tests: training determinism across thread
//! counts (the work-stealing executor and speculative `(C, γ)` rounds must
//! not change the model) and telemetry serialisation.

use hotspot_suite::benchgen::{iccad_suite, Benchmark, SuiteScale};
use hotspot_suite::core::{DetectorConfig, HotspotDetector, PipelineTelemetry};

fn fixed_seed_benchmark() -> Benchmark {
    // Benchmark 2 of the tiny fixed-seed suite: enough clusters that
    // kernel training actually fans out across workers.
    Benchmark::generate(iccad_suite(SuiteScale::Tiny).remove(1))
}

fn train_at(bm: &Benchmark, threads: usize) -> HotspotDetector {
    HotspotDetector::train(
        &bm.training,
        DetectorConfig {
            threads,
            ..Default::default()
        },
    )
    .expect("training")
}

#[test]
fn training_is_deterministic_across_thread_counts() {
    let bm = fixed_seed_benchmark();
    // Compare the serialised kernels and feedback model: every SVM weight,
    // Platt coefficient, and cluster assignment must be bit-identical.
    // (Telemetry and the thread count legitimately differ between runs, so
    // the full model JSON is not compared.)
    let fingerprint = |d: &HotspotDetector| {
        (
            serde_json::to_string(&d.kernels()).expect("kernels"),
            serde_json::to_string(&d.feedback()).expect("feedback"),
            d.summary().upsampled_hotspots,
            d.summary().hotspot_clusters,
            d.summary().nonhotspot_medoids,
        )
    };
    let want = fingerprint(&train_at(&bm, 1));
    for threads in [2, 4] {
        let got = fingerprint(&train_at(&bm, threads));
        assert_eq!(got, want, "model diverged at {threads} threads");
    }
}

#[test]
fn detection_reports_agree_across_thread_counts() {
    let bm = fixed_seed_benchmark();
    let reference = train_at(&bm, 1)
        .detect(&bm.layout, bm.layer)
        .expect("evaluation");
    for threads in [2, 4] {
        let report = train_at(&bm, threads)
            .detect(&bm.layout, bm.layer)
            .expect("evaluation");
        assert_eq!(report.reported, reference.reported, "{threads} threads");
        assert_eq!(report.clips_flagged, reference.clips_flagged);
    }
}

#[test]
fn merged_telemetry_round_trips_through_json() {
    let bm = fixed_seed_benchmark();
    let detector = train_at(&bm, 2);
    let report = detector.detect(&bm.layout, bm.layer).expect("evaluation");

    let merged = detector.summary().telemetry.merge(&report.telemetry);
    assert_eq!(merged.stages.len(), 8, "merged record covers all stages");
    assert!(merged.stages.iter().any(|s| s.items_in > 0));

    let json = serde_json::to_string(&merged).expect("serialise");
    let back: PipelineTelemetry = serde_json::from_str(&json).expect("parse");
    assert_eq!(back, merged);

    // The model JSON itself persists the training telemetry, so a later
    // `detect` run can reconstruct the full record.
    let model_json = serde_json::to_string(&detector).expect("serialise model");
    let restored: HotspotDetector = serde_json::from_str(&model_json).expect("parse model");
    assert_eq!(restored.summary().telemetry, detector.summary().telemetry);
}
