//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock timer. Each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints mean / min / max per
//! iteration. No statistical analysis, plotting, or baseline storage.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier for a parameterised benchmark, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after a warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50ms elapsed or 3 iterations, whichever first.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3 && warm_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_iters += 1;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn run_one(full_id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{full_id:<40} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = *bencher.samples.iter().min().unwrap();
    let max = *bencher.samples.iter().max().unwrap();
    println!(
        "{full_id:<40} mean {:>12}   [min {:>12}, max {:>12}]   ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        bencher.samples.len(),
    );
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark receiving `input` by reference.
    pub fn bench_with_input<I, ID: Into<BenchmarkId>, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (prints a separating blank line).
    pub fn finish(self) {
        println!();
    }
}

/// Benchmark harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 10, &mut f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("sums");
        group.sample_size(5);
        group.bench_function("small", |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(1000), &1000u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }
}
