//! Offline stand-in for `serde_json`: a strict JSON printer and parser
//! over the vendored serde crate's [`Value`] model.

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

/// JSON (de)serialisation failure.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}

// ---------------------------------------------------------------- writing

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 prints the shortest round-tripping decimal.
                let s = format!("{f}");
                out.push_str(&s);
                // Keep floats recognisable as floats on re-parse.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

/// Serialises `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible in practice; kept fallible for serde_json API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialises `value` to an indented JSON string.
///
/// # Errors
///
/// Infallible in practice; kept fallible for serde_json API parity.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serialises `value` as JSON into `writer`.
///
/// # Errors
///
/// Returns [`Error`] on I/O failure.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Serialises `value` as pretty JSON into `writer`.
///
/// # Errors
///
/// Returns [`Error`] on I/O failure.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Serialises `value` to a JSON byte vector.
///
/// # Errors
///
/// Infallible in practice; kept fallible for serde_json API parity.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Deserialises `T` from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserialises `T` from a JSON byte slice.
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or shape mismatch.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(Error::msg)?;
    from_str(s)
}

/// Deserialises `T` from a JSON reader.
///
/// # Errors
///
/// Returns [`Error`] on I/O failure, malformed JSON, or shape mismatch.
pub fn from_reader<R: Read, T: DeserializeOwned>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Parses a JSON document into the [`Value`] model.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing garbage.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

// ---------------------------------------------------------------- parsing

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::msg(format!(
            "expected `{}` at byte {}",
            c as char, *pos
        )))
    }
}

fn parse_at(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::msg("unexpected end of input")),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_at(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error::msg(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::msg("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect `\uXXXX` low surrogate.
                            if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u') {
                                let lo = parse_hex4(b, *pos + 3)?;
                                *pos += 6;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err(Error::msg("lone high surrogate"));
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::msg("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 encoded char.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(Error::msg)?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32, Error> {
    let s = b
        .get(at..at + 4)
        .ok_or_else(|| Error::msg("truncated unicode escape"))?;
    let s = std::str::from_utf8(s).map_err(Error::msg)?;
    u32::from_str_radix(s, 16).map_err(Error::msg)
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(Error::msg)?;
    if text.is_empty() || text == "-" {
        return Err(Error::msg(format!("invalid number at byte {start}")));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u128>() {
            return Ok(Value::UInt(u));
        }
        if let Ok(i) = text.parse::<i128>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::msg(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        let f: f64 = from_str(&to_string(&1.25f64).unwrap()).unwrap();
        assert_eq!(f, 1.25);
        assert_eq!(to_string(&true).unwrap(), "true");
    }

    #[test]
    fn float_distinguishes_itself_from_int() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\tе✓".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn nested_collections_round_trip() {
        let v: Vec<Vec<f64>> = vec![vec![1.0, 2.5], vec![], vec![-0.5]];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f64>>>(&json).unwrap(), v);
    }

    #[test]
    fn options_round_trip() {
        let v: Vec<Option<u8>> = vec![Some(1), None];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null]");
        assert_eq!(from_str::<Vec<Option<u8>>>(&json).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("4 2").is_err());
        assert!(from_str::<u32>("[").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Vec<u8>> = vec![vec![1], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn shortest_float_round_trips_exactly() {
        for f in [
            0.1f64,
            1e300,
            -2.2250738585072014e-308,
            std::f64::consts::PI,
        ] {
            let parsed: f64 = from_str(&to_string(&f).unwrap()).unwrap();
            assert_eq!(parsed, f);
        }
    }
}
