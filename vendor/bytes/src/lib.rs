//! Offline stand-in for the `bytes` crate: a growable byte buffer with the
//! big-endian `put_*` methods the GDSII writer uses.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// Sink for big-endian primitive writes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `i16`.
    fn put_i16(&mut self, v: i16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable, contiguous byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consumes the buffer into its backing `Vec<u8>`.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }

    /// The written bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.inner
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_puts() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16(0x0102);
        b.put_i16(-2);
        b.put_i32(0x0304_0506);
        b.put_slice(&[9, 9]);
        assert_eq!(
            b.to_vec(),
            vec![0x01, 0x02, 0xFF, 0xFE, 0x03, 0x04, 0x05, 0x06, 9, 9]
        );
        assert_eq!(b.len(), 10);
    }
}
