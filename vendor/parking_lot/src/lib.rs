//! Offline stand-in for `parking_lot`: `Mutex` / `RwLock` with the
//! non-poisoning API, implemented over `std::sync`. A poisoned std lock
//! (a panicked holder) is treated as still usable, matching parking_lot's
//! semantics of simply not tracking poisoning.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A readers-writer lock whose guards never surface poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value` in a readers-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 400);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }
}
