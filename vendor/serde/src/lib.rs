//! Offline stand-in for the `serde` crate.
//!
//! The container this repository builds in has no network access and no
//! cached registry, so the real serde cannot be fetched. This crate keeps
//! the *surface* the workspace uses — `Serialize` / `Deserialize` traits,
//! `serde::de::DeserializeOwned`, and `#[derive(Serialize, Deserialize)]`
//! with `#[serde(skip)]` — on top of a much simpler value-based data model:
//! every type converts to and from a [`Value`] tree, and `serde_json` is a
//! plain JSON printer/parser over that tree.
//!
//! The representation matches real serde's JSON conventions closely enough
//! for this workspace (externally tagged enums, transparent newtype
//! structs, stringified integer map keys), but it makes no attempt at
//! zero-copy deserialisation or borrowed data.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialised value (the JSON data model plus `u128`
/// and `i128` range integers).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative or signed integer.
    Int(i128),
    /// A non-negative integer (covers `u128`).
    UInt(u128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries when `self` is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialisation/deserialisation failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Serialises `self` into the value data model.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialises from the value data model.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// The `serde::de` module surface the workspace relies on.
pub mod de {
    pub use crate::{Deserialize, Error};

    /// Marker for owned deserialisation (all deserialisation here is owned).
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

/// The `serde::ser` module surface.
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// Derive-macro helper: fetches and deserialises object field `name`.
///
/// # Errors
///
/// Returns [`Error`] when the field is missing or has the wrong shape.
pub fn __field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::custom(format!("missing field `{name}`"))),
    }
}

/// Like [`__field`], but an absent field deserialises to `T::default()` —
/// the backing helper of the derive's `#[serde(default)]` attribute.
pub fn __field_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    name: &str,
) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Ok(T::default()),
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Int(i) => u128::try_from(*i)
                        .ok()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::custom("integer out of range")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i128;
                if i >= 0 {
                    Value::UInt(i as u128)
                } else {
                    Value::Int(i)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::UInt(u) => i128::try_from(*u)
                        .ok()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::custom("integer out of range")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, u128, usize);
impl_signed!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Float(f)
                } else {
                    // JSON has no NaN/Inf; mirror serde_json and emit null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(std::path::PathBuf::from(s)),
            _ => Err(Error::custom("expected path string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => Ok(($(
                        $t::from_value(
                            items.get($n).ok_or_else(|| Error::custom("tuple too short"))?,
                        )?,
                    )+)),
                    _ => Err(Error::custom("expected tuple array")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Serialises a map key. Integer-like keys become their decimal strings,
/// mirroring serde_json's stringified map keys.
fn key_to_string<K: Serialize>(key: &K) -> Result<String, Error> {
    match key.to_value() {
        Value::Str(s) => Ok(s),
        Value::UInt(u) => Ok(u.to_string()),
        Value::Int(i) => Ok(i.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        _ => Err(Error::custom("unsupported map key type")),
    }
}

/// Reverses [`key_to_string`]: the string re-enters the value model as a
/// number when it parses as one, else as a string.
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(u) = key.parse::<u128>() {
        if let Ok(k) = K::from_value(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    if let Ok(i) = key.parse::<i128>() {
        if let Ok(k) = K::from_value(&Value::Int(i)) {
            return Ok(k);
        }
    }
    if let Ok(b) = key.parse::<bool>() {
        if let Ok(k) = K::from_value(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    K::from_value(&Value::Str(key.to_string()))
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut out = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = key_to_string(k).unwrap_or_else(|_| String::from("<key>"));
            out.push((key, v.to_value()));
        }
        Value::Object(out)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => {
                let mut out = BTreeMap::new();
                for (k, v) in entries {
                    out.insert(key_from_string(k)?, V::from_value(v)?);
                }
                Ok(out)
            }
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort entries by stringified key.
        let mut out: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_to_string(k).unwrap_or_else(|_| String::from("<key>")),
                    v.to_value(),
                )
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(out)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => {
                let mut out = HashMap::with_capacity(entries.len());
                for (k, v) in entries {
                    out.insert(key_from_string(k)?, V::from_value(v)?);
                }
                Ok(out)
            }
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs() as u128)),
            (
                "nanos".to_string(),
                Value::UInt(self.subsec_nanos() as u128),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs: u64 = __field(
            v.as_object()
                .ok_or_else(|| Error::custom("expected duration"))?,
            "secs",
        )?;
        let nanos: u32 = __field(
            v.as_object()
                .ok_or_else(|| Error::custom("expected duration"))?,
            "nanos",
        )?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert(7u16, "x".to_string());
        assert_eq!(
            BTreeMap::<u16, String>::from_value(&m.to_value()).unwrap(),
            m
        );
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn u128_survives() {
        let big = u128::MAX - 3;
        assert_eq!(u128::from_value(&big.to_value()).unwrap(), big);
    }
}
