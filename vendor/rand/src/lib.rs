//! Offline stand-in for the `rand` crate (0.9-style API surface).
//!
//! Implements exactly what this workspace calls: `StdRng::seed_from_u64`,
//! `Rng::random_range` over integer ranges, `Rng::random_bool`, and
//! `SliceRandom::shuffle`. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, which is all the benchmark
//! generator needs (it never promises bit-compatibility with upstream
//! rand's StdRng, whose algorithm is explicitly unspecified).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Ranges that can be sampled uniformly to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniformly random `u64`.
    fn random_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministic construction from small seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// In-place random reordering.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0i64..1_000_000),
                b.random_range(0i64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10i64..20);
            assert!((10..20).contains(&v));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
