//! Offline stand-in for the `crossbeam` facade, providing the
//! [`deque`] work-stealing primitives the hotspot engine's executor uses.
//!
//! The real crossbeam-deque is a lock-free Chase–Lev deque; this vendored
//! version provides the same `Worker` / `Stealer` / `Injector` / `Steal`
//! API over locked `VecDeque`s. Semantics match (LIFO owner pops, FIFO
//! steals, shared injector); only raw contention behaviour differs, which
//! is irrelevant at the task granularity this workspace schedules (clip
//! batches and whole SVM trainings).

#![forbid(unsafe_code)]

/// Work-stealing double-ended queues.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// A race was lost; the caller may retry.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, when any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// `true` when the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// The owner side of a work-stealing deque (LIFO for the owner).
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// A new FIFO-stealing deque.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// A new LIFO deque (same implementation here).
        pub fn new_lifo() -> Self {
            Self::new_fifo()
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            locked(&self.queue).push_back(task);
        }

        /// Pops from the owner's end (most recently pushed first).
        pub fn pop(&self) -> Option<T> {
            locked(&self.queue).pop_back()
        }

        /// `true` when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            locked(&self.queue).is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            locked(&self.queue).len()
        }

        /// A stealer handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// The thief side of a deque: steals from the opposite end.
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal the oldest queued task.
        pub fn steal(&self) -> Steal<T> {
            match locked(&self.queue).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// `true` when the queue was empty at the time of observation.
        pub fn is_empty(&self) -> bool {
            locked(&self.queue).is_empty()
        }
    }

    /// A shared FIFO injector queue feeding all workers.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            locked(&self.queue).push_back(task);
        }

        /// Attempts to take the oldest task.
        pub fn steal(&self) -> Steal<T> {
            match locked(&self.queue).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// `true` when the queue was empty at the time of observation.
        pub fn is_empty(&self) -> bool {
            locked(&self.queue).is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            locked(&self.queue).len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn owner_pops_lifo_thief_steals_fifo() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_feeds_many_threads() {
        let inj = Injector::new();
        for i in 0..1000 {
            inj.push(i);
        }
        let taken: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut n = 0;
                        while inj.steal().success().is_some() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(taken, 1000);
        assert!(inj.is_empty());
    }
}
