//! Offline stand-in for `serde_derive`.
//!
//! Generates `impl serde::Serialize` / `impl serde::Deserialize` for the
//! value-based data model of the vendored `serde` crate. The parser is
//! hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote` available
//! offline) and supports exactly the shapes this workspace derives:
//! non-generic named structs, tuple structs, unit structs, and enums with
//! unit / tuple / struct variants, plus the `#[serde(skip)]` and
//! `#[serde(default)]` field attributes (`default` deserialises an absent
//! field to `Default::default()` while still serialising it).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` for the annotated item.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serialize codegen")
}

/// Derives `serde::Deserialize` for the annotated item.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("deserialize codegen")
}

// ---------------------------------------------------------------- parsing

/// Flags carried by one field's `#[serde(...)]` attributes.
#[derive(Debug, Clone, Copy, Default)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

/// `true` when the attribute group tokens contain `serde(... flag ...)`.
fn attr_has_serde_flag(group: &proc_macro::Group, flag: &str) -> bool {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == flag)),
        _ => false,
    }
}

/// Consumes leading attributes from `tokens[*i..]`, returning the serde
/// field flags (`skip`, `default`) they carry.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        attrs.skip |= attr_has_serde_flag(g, "skip");
                        attrs.default |= attr_has_serde_flag(g, "default");
                        *i += 2;
                        continue;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    attrs
}

/// Consumes a `pub` / `pub(...)` visibility prefix when present.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Consumes tokens of a type (or expression) until a top-level comma,
/// tracking `<...>` nesting so generic arguments don't split early.
fn skip_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                ',' if angle == 0 => return,
                '<' => angle += 1,
                '>' => angle -= 1,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_until_comma(&tokens, &mut i);
        i += 1; // consume the comma (or run off the end)
        fields.push(Field {
            name,
            skip: attrs.skip,
            default: attrs.default,
        });
    }
    fields
}

fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_until_comma(&tokens, &mut i);
        i += 1;
        count += 1;
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g))
            }
            _ => VariantKind::Unit,
        };
        // Skip a `= discriminant` and the trailing comma.
        skip_until_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    loop {
        skip_attrs(&tokens, &mut i);
        let before = i;
        skip_visibility(&tokens, &mut i);
        if i == before {
            break;
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g))
            }
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    };
    Item { name, shape }
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__fields.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Object(__fields)"
            )
        }
        Shape::TupleStruct(0) | Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {payload})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let pat: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pat} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{items}]))]),\n",
                            pat = pat.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                } else if f.default {
                    inits.push_str(&format!(
                        "{n}: ::serde::__field_or_default(__obj, \"{n}\")?,\n",
                        n = f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::__field(__obj, \"{n}\")?,\n",
                        n = f.name
                    ));
                }
            }
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\nOk({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(0) => format!("let _ = __v; Ok({name}())"),
        Shape::UnitStruct => format!("let _ = __v; Ok({name})"),
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(__items.get({i}).ok_or_else(|| ::serde::Error::custom(\"tuple struct too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "let __items = match __v {{ ::serde::Value::Array(a) => a, _ => return Err(::serde::Error::custom(\"expected array for {name}\")) }};\nOk({name}({}))",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(1) => {
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(__items.get({i}).ok_or_else(|| ::serde::Error::custom(\"variant tuple too short\"))?)?"
                                )
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __items = match __payload {{ ::serde::Value::Array(a) => a, _ => return Err(::serde::Error::custom(\"expected array payload\")) }}; Ok({name}::{vn}({})) }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::core::default::Default::default(),",
                                    f.name
                                ));
                            } else if f.default {
                                inits.push_str(&format!(
                                    "{n}: ::serde::__field_or_default(__obj, \"{n}\")?,",
                                    n = f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{n}: ::serde::__field(__obj, \"{n}\")?,",
                                    n = f.name
                                ));
                            }
                        }
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __obj = __payload.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object payload\"))?; Ok({name}::{vn} {{ {inits} }}) }},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}_ => Err(::serde::Error::custom(\"unknown variant of {name}\")),\n}},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __payload) = &__entries[0];\n\
                 match __tag.as_str() {{\n{payload_arms}_ => Err(::serde::Error::custom(\"unknown variant of {name}\")),\n}}\n\
                 }},\n\
                 _ => Err(::serde::Error::custom(\"expected enum value for {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n    fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n        {body}\n    }}\n}}\n"
    )
}
