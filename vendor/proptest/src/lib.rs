//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! `proptest::collection::vec`, `proptest::bool::ANY`, simple
//! character-class regex string strategies, and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros. Cases are generated from a
//! deterministic per-test RNG; there is no shrinking — a failing case
//! panics with its inputs via the normal assertion message.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic per-test random source (xoshiro256++ over SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the RNG for one test case from the test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h ^ ((case as u64) << 32 | 0x9E37);
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) << 64) | self.next_u64() as u128) % n
    }
}

/// Per-run configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::{Strategy, TestRng};

    /// A uniformly random boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.clone().generate(rng)
        }
    }

    impl SizeRange for Range<i32> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.clone().generate(rng) as usize
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `proptest::collection::vec`: vectors of `size` elements drawn from
    /// `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ------------------------------------------------------ string strategies

/// One parsed element of the mini string pattern.
#[derive(Debug, Clone)]
enum PatternPart {
    /// A literal character.
    Literal(char),
    /// A character class with repetition bounds.
    Class {
        chars: Vec<char>,
        min: usize,
        max: usize,
    },
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut set = Vec::new();
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => break,
            '-' => {
                // Range like `a-z` (when flanked); literal `-` otherwise.
                if let (Some(lo), Some(&hi)) = (prev, chars.peek()) {
                    if hi != ']' {
                        chars.next();
                        let (lo, hi) = (lo as u32, hi as u32);
                        for code in lo + 1..=hi {
                            if let Some(ch) = char::from_u32(code) {
                                set.push(ch);
                            }
                        }
                        prev = None;
                        continue;
                    }
                }
                set.push('-');
                prev = Some('-');
            }
            c => {
                set.push(c);
                prev = Some(c);
            }
        }
    }
    set
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Option<(usize, usize)> {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let (min, max) = match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or(0),
                    hi.trim().parse().unwrap_or(8),
                ),
                None => {
                    let n = spec.trim().parse().unwrap_or(1);
                    (n, n)
                }
            };
            Some((min, max))
        }
        Some('*') => {
            chars.next();
            Some((0, 8))
        }
        Some('+') => {
            chars.next();
            Some((1, 8))
        }
        Some('?') => {
            chars.next();
            Some((0, 1))
        }
        _ => None,
    }
}

fn parse_pattern(pattern: &str) -> Vec<PatternPart> {
    let mut parts = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let (chars_set, is_class) = match c {
            '[' => (parse_class(&mut chars), true),
            '\\' => (vec![chars.next().unwrap_or('\\')], false),
            c => (vec![c], false),
        };
        match parse_quantifier(&mut chars) {
            Some((min, max)) => parts.push(PatternPart::Class {
                chars: chars_set,
                min,
                max,
            }),
            None if is_class => parts.push(PatternPart::Class {
                chars: chars_set,
                min: 1,
                max: 1,
            }),
            None => parts.push(PatternPart::Literal(chars_set[0])),
        }
    }
    parts
}

/// `&str` patterns act as string strategies over a small regex subset:
/// literals, `[...]` classes (with ranges), and `{m,n}` / `*` / `+` / `?`
/// quantifiers.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for part in parse_pattern(self) {
            match part {
                PatternPart::Literal(c) => out.push(c),
                PatternPart::Class { chars, min, max } => {
                    let n = if max > min {
                        min + rng.below((max - min + 1) as u128) as usize
                    } else {
                        min
                    };
                    for _ in 0..n {
                        if chars.is_empty() {
                            continue;
                        }
                        let idx = rng.below(chars.len() as u128) as usize;
                        out.push(chars[idx]);
                    }
                }
            }
        }
        out
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Error type carried by rejected or failed cases, mirroring
/// `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Skips the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares deterministic property tests over strategies.
///
/// Supports the forms this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop((x, y) in strategy(), z in 0..10i64) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public surface.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    // One closure per case, typed like real proptest bodies
                    // (`Result<(), TestCaseError>`) so `prop_assume!` and
                    // explicit `return Ok(())` both work.
                    #[allow(clippy::redundant_closure_call, unreachable_code)]
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = __outcome {
                        panic!("proptest case {__case} failed: {err}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let v = (5i64..9).generate(&mut rng);
            assert!((5..9).contains(&v));
            let f = (0.0f64..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn string_pattern_generates_identifiers() {
        let mut rng = crate::TestRng::for_case("strings", 1);
        for _ in 0..200 {
            let s = "[a-zA-Z][a-zA-Z0-9_]{0,12}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic(), "{s}");
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = crate::TestRng::for_case("vecs", 2);
        for _ in 0..100 {
            let v = crate::collection::vec(0u8..8, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works((a, b) in (0i64..10, 0i64..10), flip in crate::bool::ANY) {
            prop_assume!(a != 9);
            let sum = a + b;
            prop_assert!(sum >= a.min(b));
            if flip {
                prop_assert_eq!(sum, b + a);
            }
        }
    }
}
