//! Batched, flattened SVM inference — the clip-evaluation hot loop.
//!
//! [`SvmModel::decision_value`] is the *reference* implementation: it walks
//! a `Vec<Vec<f64>>` of support vectors, evaluating the kernel row by row.
//! That layout pointer-chases one heap allocation per support vector and
//! recomputes `‖x − svᵢ‖²` as a fused subtract–square–sum per row, which
//! the full-chip scan pays millions of times.
//!
//! [`CompiledModel`] flattens the trained model into one contiguous
//! row-major support-vector matrix with precomputed per-row squared norms
//! and the min-max scaler baked in, so an RBF row costs one dot product:
//!
//! ```text
//! ‖x − svᵢ‖² = ‖x‖² + ‖svᵢ‖² − 2 ⟨svᵢ, x⟩
//! ```
//!
//! with `‖x‖²` shared across all rows of the model and `‖svᵢ‖²` shared
//! across all queries. The dot products run over fixed-width lane chunks
//! that stable `rustc` autovectorises (no SIMD crates). [`BatchEvaluator`]
//! owns the scratch buffers, so scoring a batch of clips against a set of
//! compiled kernels performs no allocation at all.
//!
//! Scaling is baked in as per-dimension offsets plus *reciprocal* spans
//! (a multiply where the reference divides — equal to 1 ulp), fused with
//! the ‖x‖² accumulation in a single pass over the query.
//!
//! Compiled decision values agree with the reference implementation to
//! ~1e-12 relative (the summation *order* and the scaling rounding
//! change, the algebra does not); `tests/eval_equivalence.rs` pins the
//! agreement to `1e-9` across kernels, dimensions, and random models.
//!
//! ```
//! use hotspot_svm::{BatchEvaluator, Kernel, SvmTrainer};
//!
//! let x = vec![vec![0.0], vec![0.2], vec![0.8], vec![1.0]];
//! let y = vec![-1.0, -1.0, 1.0, 1.0];
//! let model = SvmTrainer::new(Kernel::rbf(0.5)).c(10.0).train(&x, &y)?;
//! let compiled = model.compile();
//! let mut eval = BatchEvaluator::new();
//! let fast = eval.decision_value(&compiled, &[0.9]);
//! let slow = model.decision_value(&[0.9]);
//! assert!((fast - slow).abs() < 1e-9);
//! # Ok::<(), hotspot_svm::TrainError>(())
//! ```

use crate::{Kernel, SvmModel};

/// Number of independent accumulator lanes in the chunked dot product.
/// Eight f64 lanes fill two AVX2 registers (or one AVX-512 register) and
/// give the compiler enough independent chains to hide FMA latency.
const LANES: usize = 8;

/// Chunked dot product with a fixed, deterministic summation order.
///
/// The lane accumulators are independent, so the loop autovectorises on
/// stable Rust; the order never depends on threading, keeping results
/// reproducible across runs and thread counts.
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for l in 0..LANES {
            lanes[l] += xa[l] * xb[l];
        }
    }
    let mut acc = 0.0;
    for l in lanes {
        acc += l;
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += x * y;
    }
    acc
}

/// A trained [`SvmModel`] flattened for the batched inference engine.
///
/// Built once per model with [`SvmModel::compile`] (typically right after
/// training, or lazily after deserialising a persisted model); evaluation
/// then goes through a [`BatchEvaluator`]. The compiled form is a pure
/// acceleration: it holds exactly the reference model's support vectors,
/// coefficients, bias, and scaler.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    kernel: Kernel,
    /// Feature dimension of the *unscaled* query vector.
    dim: usize,
    /// Row-major `n_sv × dim` support-vector matrix (stored scaled, as the
    /// training-time scaler left them).
    sv: Vec<f64>,
    /// `‖svᵢ‖²` per row, for the norm-trick RBF distance.
    sv_norms: Vec<f64>,
    /// `αᵢ yᵢ` per row.
    coef: Vec<f64>,
    /// Bias term ρ.
    rho: f64,
    /// Baked-in min-max scaling: per-dimension minima. Empty when the
    /// model was trained without scaling.
    scale_lo: Vec<f64>,
    /// Baked-in min-max scaling: precomputed reciprocal spans, so the hot
    /// loop multiplies where [`crate::FeatureScaler::transform`] divides
    /// (same value to 1 ulp). Empty when the model was trained without
    /// scaling.
    scale_inv: Vec<f64>,
}

impl CompiledModel {
    /// Flattens `model` into the compiled representation.
    pub fn compile(model: &SvmModel) -> CompiledModel {
        let dim = model.dim();
        let support = model.support_vectors();
        let mut sv = Vec::with_capacity(support.len() * dim);
        let mut sv_norms = Vec::with_capacity(support.len());
        for row in support {
            sv.extend_from_slice(row);
            sv_norms.push(dot(row, row));
        }
        let (scale_lo, scale_inv) = match model.scaler() {
            Some(s) => (
                s.mins().to_vec(),
                s.spans().iter().map(|sp| 1.0 / sp).collect(),
            ),
            None => (Vec::new(), Vec::new()),
        };
        CompiledModel {
            kernel: model.kernel(),
            dim,
            sv,
            sv_norms,
            coef: model.coefficients().to_vec(),
            rho: model.rho(),
            scale_lo,
            scale_inv,
        }
    }

    /// Feature dimension expected by evaluation.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of support-vector rows.
    pub fn support_vector_count(&self) -> usize {
        self.coef.len()
    }

    /// The kernel the model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Floating-point operations of the support-vector dot products of one
    /// decision value (`2 · dim · n_sv`) — the bench binaries' GFLOP/s
    /// proxy. Scaling, norms, and `exp` calls are excluded.
    pub fn flops_per_eval(&self) -> u64 {
        2 * self.dim as u64 * self.coef.len() as u64
    }

    /// Decision value over an already-scaled query with `‖xs‖²` given.
    fn decision_scaled(&self, xs: &[f64], x_norm: f64) -> f64 {
        // Degenerate zero-dimension models carry no per-row data to dot.
        if self.dim == 0 {
            let k0 = match self.kernel {
                Kernel::Rbf { .. } => 1.0,
                Kernel::Linear => 0.0,
                Kernel::Polynomial {
                    gamma,
                    coef0,
                    degree,
                } => (gamma * 0.0 + coef0).powi(degree as i32),
            };
            return self.coef.iter().map(|c| c * k0).sum::<f64>() - self.rho;
        }
        let rows = self.sv.chunks_exact(self.dim);
        let mut acc = 0.0;
        match self.kernel {
            Kernel::Rbf { gamma } => {
                for ((row, &svn), &c) in rows.zip(&self.sv_norms).zip(&self.coef) {
                    // Clamped at zero: rounding may drive the norm-trick
                    // distance a hair negative when x ≈ svᵢ.
                    let d2 = (x_norm + svn - 2.0 * dot(row, xs)).max(0.0);
                    acc += c * (-gamma * d2).exp();
                }
            }
            Kernel::Linear => {
                for (row, &c) in rows.zip(&self.coef) {
                    acc += c * dot(row, xs);
                }
            }
            Kernel::Polynomial {
                gamma,
                coef0,
                degree,
            } => {
                for (row, &c) in rows.zip(&self.coef) {
                    acc += c * (gamma * dot(row, xs) + coef0).powi(degree as i32);
                }
            }
        }
        acc - self.rho
    }
}

/// Reusable scratch for scoring clips against [`CompiledModel`]s.
///
/// One evaluator serves any number of models of any dimension; keep it
/// alive across a batch (e.g. one per worker thread or per scan tile) and
/// the hot loop performs no heap allocation after the first clip.
#[derive(Debug, Default)]
pub struct BatchEvaluator {
    scaled: Vec<f64>,
}

impl BatchEvaluator {
    /// An evaluator with empty scratch (grown on first use).
    pub fn new() -> BatchEvaluator {
        BatchEvaluator::default()
    }

    /// Signed decision value of `x` under `model` — the compiled equivalent
    /// of [`SvmModel::decision_value`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the model's training dimension.
    pub fn decision_value(&mut self, model: &CompiledModel, x: &[f64]) -> f64 {
        assert_eq!(x.len(), model.dim, "feature dimension mismatch");
        if model.scale_lo.is_empty() {
            return model.decision_scaled(x, dot(x, x));
        }
        // Fused scaling + query norm: one chunked pass writes the scaled
        // query into the scratch while accumulating ‖xs‖² on independent
        // lanes (same autovectorizable shape as `dot`).
        let scaled = &mut self.scaled;
        scaled.clear();
        scaled.resize(x.len(), 0.0);
        let mut lanes = [0.0f64; LANES];
        let mut out = scaled.chunks_exact_mut(LANES);
        let mut cx = x.chunks_exact(LANES);
        let mut clo = model.scale_lo.chunks_exact(LANES);
        let mut cinv = model.scale_inv.chunks_exact(LANES);
        for (((o, xs), lo), inv) in (&mut out).zip(&mut cx).zip(&mut clo).zip(&mut cinv) {
            for l in 0..LANES {
                let s = (xs[l] - lo[l]) * inv[l];
                o[l] = s;
                lanes[l] += s * s;
            }
        }
        let mut x_norm = 0.0;
        for l in lanes {
            x_norm += l;
        }
        for (((o, xs), lo), inv) in out
            .into_remainder()
            .iter_mut()
            .zip(cx.remainder())
            .zip(clo.remainder())
            .zip(cinv.remainder())
        {
            let s = (xs - lo) * inv;
            *o = s;
            x_norm += s * s;
        }
        model.decision_scaled(&self.scaled, x_norm)
    }

    /// Predicted class of `x`: `+1.0` when the decision value is
    /// non-negative, mirroring [`SvmModel::predict`].
    pub fn predict(&mut self, model: &CompiledModel, x: &[f64]) -> f64 {
        if self.decision_value(model, x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Scores a batch of clips against one compiled model, appending one
    /// decision value per clip to `out` (cleared first). The scratch is
    /// reused across the whole batch.
    pub fn decision_values_into(
        &mut self,
        model: &CompiledModel,
        clips: &[Vec<f64>],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(clips.len());
        for clip in clips {
            out.push(self.decision_value(model, clip));
        }
    }

    /// Scores a batch of clips against a set of compiled kernels, returning
    /// the row-major `clips.len() × models.len()` decision matrix. All
    /// clips must match every model's dimension.
    pub fn decision_matrix(&mut self, models: &[CompiledModel], clips: &[Vec<f64>]) -> Vec<f64> {
        let mut out = Vec::with_capacity(models.len() * clips.len());
        for clip in clips {
            for model in models {
                out.push(self.decision_value(model, clip));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SvmTrainer;

    fn separable() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x = vec![
            vec![0.0, 0.1],
            vec![0.1, 0.0],
            vec![0.2, 0.2],
            vec![0.9, 1.0],
            vec![1.0, 0.8],
            vec![0.8, 0.9],
        ];
        let y = vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0];
        (x, y)
    }

    #[test]
    fn chunked_dot_matches_naive() {
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 64, 100] {
            let a: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - 3.0).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn compiled_matches_reference_on_trained_model() {
        let (x, y) = separable();
        let model = SvmTrainer::new(Kernel::rbf(1.0))
            .c(100.0)
            .train(&x, &y)
            .unwrap();
        let compiled = model.compile();
        assert_eq!(compiled.dim(), 2);
        assert_eq!(
            compiled.support_vector_count(),
            model.support_vector_count()
        );
        let mut eval = BatchEvaluator::new();
        for q in [[0.05, 0.05], [0.95, 0.95], [0.5, 0.5], [-1.0, 2.0]] {
            let fast = eval.decision_value(&compiled, &q);
            let slow = model.decision_value(&q);
            assert!((fast - slow).abs() < 1e-9, "{q:?}: {fast} vs {slow}");
            assert_eq!(eval.predict(&compiled, &q), model.predict(&q));
        }
    }

    #[test]
    fn batch_apis_match_single_evaluation() {
        let (x, y) = separable();
        let a = SvmTrainer::new(Kernel::rbf(0.7))
            .c(10.0)
            .train(&x, &y)
            .unwrap();
        let b = SvmTrainer::new(Kernel::Linear)
            .c(10.0)
            .train(&x, &y)
            .unwrap();
        let models = [a.compile(), b.compile()];
        let clips = vec![vec![0.3, 0.4], vec![0.9, 0.9]];
        let mut eval = BatchEvaluator::new();

        let mut out = Vec::new();
        eval.decision_values_into(&models[0], &clips, &mut out);
        assert_eq!(out.len(), 2);
        for (clip, &v) in clips.iter().zip(&out) {
            assert_eq!(v, eval.decision_value(&models[0], clip));
        }

        let matrix = eval.decision_matrix(&models, &clips);
        assert_eq!(matrix.len(), 4);
        for (ci, clip) in clips.iter().enumerate() {
            for (mi, model) in models.iter().enumerate() {
                assert_eq!(
                    matrix[ci * models.len() + mi],
                    eval.decision_value(model, clip)
                );
            }
        }
    }

    #[test]
    fn flops_proxy_counts_dot_work() {
        let (x, y) = separable();
        let model = SvmTrainer::new(Kernel::rbf(1.0)).train(&x, &y).unwrap();
        let compiled = model.compile();
        assert_eq!(
            compiled.flops_per_eval(),
            2 * 2 * compiled.support_vector_count() as u64
        );
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn rejects_wrong_dimension() {
        let (x, y) = separable();
        let compiled = SvmTrainer::new(Kernel::rbf(1.0))
            .train(&x, &y)
            .unwrap()
            .compile();
        let _ = BatchEvaluator::new().decision_value(&compiled, &[0.0]);
    }
}
