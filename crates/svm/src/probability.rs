//! Platt scaling: calibrated probability estimates from SVM decision
//! values.
//!
//! LIBSVM's probability outputs fit a sigmoid `P(y=1|f) = 1/(1+e^{Af+B})`
//! to held-out decision values by regularised maximum likelihood (Platt
//! 1999, with the numerically robust Newton iteration of Lin, Lin & Weng
//! 2007). The hotspot framework uses calibrated probabilities to express
//! operating points (`ours_med`, `ours_low`) as probability cut-offs
//! instead of raw margins.

use serde::{Deserialize, Serialize};

/// A fitted Platt sigmoid.
///
/// ```
/// use hotspot_svm::PlattScaler;
/// let decisions = vec![-2.0, -1.5, -1.0, 1.0, 1.5, 2.0];
/// let labels = vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0];
/// let scaler = PlattScaler::fit(&decisions, &labels);
/// assert!(scaler.probability(2.0) > 0.8);
/// assert!(scaler.probability(-2.0) < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlattScaler {
    a: f64,
    b: f64,
}

impl PlattScaler {
    /// Fits the sigmoid to `(decision, label)` pairs with labels `±1`.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or differ in length.
    pub fn fit(decisions: &[f64], labels: &[f64]) -> PlattScaler {
        assert!(!decisions.is_empty(), "cannot fit Platt scaling to no data");
        assert_eq!(decisions.len(), labels.len(), "length mismatch");

        let prior1 = labels.iter().filter(|&&t| t > 0.0).count() as f64;
        let prior0 = labels.len() as f64 - prior1;
        let hi_target = (prior1 + 1.0) / (prior1 + 2.0);
        let lo_target = 1.0 / (prior0 + 2.0);
        let targets: Vec<f64> = labels
            .iter()
            .map(|&t| if t > 0.0 { hi_target } else { lo_target })
            .collect();

        let max_iter = 100;
        let min_step = 1e-10;
        let sigma = 1e-12;
        let eps = 1e-5;

        let mut a = 0.0f64;
        let mut b = ((prior0 + 1.0) / (prior1 + 1.0)).ln();

        let fval = |a: f64, b: f64| -> f64 {
            let mut f = 0.0;
            for (&d, &t) in decisions.iter().zip(&targets) {
                let fapb = d * a + b;
                // log(1+e^x) computed stably for both signs.
                f += if fapb >= 0.0 {
                    t * fapb + (1.0 + (-fapb).exp()).ln()
                } else {
                    (t - 1.0) * fapb + (1.0 + fapb.exp()).ln()
                };
            }
            f
        };

        let mut current = fval(a, b);
        for _ in 0..max_iter {
            // Gradient and Hessian.
            let (mut h11, mut h22, mut h21) = (sigma, sigma, 0.0);
            let (mut g1, mut g2) = (0.0f64, 0.0f64);
            for (&d, &t) in decisions.iter().zip(&targets) {
                let fapb = d * a + b;
                let (p, q) = if fapb >= 0.0 {
                    let e = (-fapb).exp();
                    (e / (1.0 + e), 1.0 / (1.0 + e))
                } else {
                    let e = fapb.exp();
                    (1.0 / (1.0 + e), e / (1.0 + e))
                };
                let d2 = p * q;
                h11 += d * d * d2;
                h22 += d2;
                h21 += d * d2;
                let d1 = t - p;
                g1 += d * d1;
                g2 += d1;
            }
            if g1.abs() < eps && g2.abs() < eps {
                break;
            }
            // Newton direction from the 2×2 system.
            let det = h11 * h22 - h21 * h21;
            let da = -(h22 * g1 - h21 * g2) / det;
            let db = -(-h21 * g1 + h11 * g2) / det;
            let gd = g1 * da + g2 * db;

            // Backtracking line search.
            let mut step = 1.0f64;
            let mut moved = false;
            while step >= min_step {
                let na = a + step * da;
                let nb = b + step * db;
                let nf = fval(na, nb);
                if nf < current + 1e-4 * step * gd {
                    a = na;
                    b = nb;
                    current = nf;
                    moved = true;
                    break;
                }
                step /= 2.0;
            }
            if !moved {
                break;
            }
        }
        PlattScaler { a, b }
    }

    /// The calibrated probability that a sample with decision value
    /// `decision` is a positive (hotspot).
    pub fn probability(&self, decision: f64) -> f64 {
        let fapb = decision * self.a + self.b;
        if fapb >= 0.0 {
            let e = (-fapb).exp();
            e / (1.0 + e)
        } else {
            1.0 / (1.0 + fapb.exp())
        }
    }

    /// The decision value at which the calibrated probability crosses
    /// `p` — the margin threshold equivalent to a probability cut-off.
    /// Returns `None` when the sigmoid is flat (degenerate fit).
    pub fn decision_at(&self, p: f64) -> Option<f64> {
        if self.a.abs() < 1e-12 {
            return None;
        }
        let p = p.clamp(1e-9, 1.0 - 1e-9);
        // p = 1/(1+e^{Af+B})  =>  f = (ln(1/p − 1) − B)/A
        Some(((1.0 / p - 1.0).ln() - self.b) / self.a)
    }

    /// The fitted `(A, B)` coefficients.
    pub fn coefficients(&self) -> (f64, f64) {
        (self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (Vec<f64>, Vec<f64>) {
        let decisions = vec![-3.0, -2.0, -1.2, -0.8, 0.8, 1.2, 2.0, 3.0];
        let labels = vec![-1.0, -1.0, -1.0, -1.0, 1.0, 1.0, 1.0, 1.0];
        (decisions, labels)
    }

    #[test]
    fn separable_fit_is_confident_at_extremes() {
        let (d, y) = separable();
        let s = PlattScaler::fit(&d, &y);
        assert!(s.probability(3.0) > 0.85, "p(+3) = {}", s.probability(3.0));
        assert!(
            s.probability(-3.0) < 0.15,
            "p(-3) = {}",
            s.probability(-3.0)
        );
        // Near the boundary the probability is uncertain.
        let p0 = s.probability(0.0);
        assert!((0.2..=0.8).contains(&p0), "p(0) = {p0}");
    }

    #[test]
    fn probability_is_monotone_in_decision() {
        let (d, y) = separable();
        let s = PlattScaler::fit(&d, &y);
        let mut last = 0.0;
        for i in -30..=30 {
            let p = s.probability(i as f64 / 10.0);
            assert!(p >= last - 1e-12, "non-monotone at {i}");
            last = p;
        }
    }

    #[test]
    fn decision_at_inverts_probability() {
        let (d, y) = separable();
        let s = PlattScaler::fit(&d, &y);
        for &p in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let f = s.decision_at(p).expect("non-degenerate");
            assert!(
                (s.probability(f) - p).abs() < 1e-9,
                "round trip failed at p = {p}"
            );
        }
    }

    #[test]
    fn noisy_overlap_gives_soft_probabilities() {
        // Interleaved labels: nothing should be confidently classified.
        let decisions = vec![-1.0, -0.5, 0.0, 0.5, 1.0, -0.8, 0.8, 0.2];
        let labels = vec![-1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0];
        let s = PlattScaler::fit(&decisions, &labels);
        let p = s.probability(1.0);
        assert!((0.05..=0.95).contains(&p), "p = {p}");
    }

    #[test]
    fn single_class_degenerates_gracefully() {
        let decisions = vec![0.5, 1.0, 1.5];
        let labels = vec![1.0, 1.0, 1.0];
        let s = PlattScaler::fit(&decisions, &labels);
        // All positives: probability should be high everywhere.
        assert!(s.probability(1.0) > 0.5);
    }

    #[test]
    fn probabilities_bounded() {
        let (d, y) = separable();
        let s = PlattScaler::fit(&d, &y);
        for i in -100..=100 {
            let p = s.probability(i as f64);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_panics() {
        let _ = PlattScaler::fit(&[], &[]);
    }
}
