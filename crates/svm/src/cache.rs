//! Kernel row caches for the SMO solver.
//!
//! SMO repeatedly needs full kernel rows `K(i, ·)` for the two working-set
//! indices and for gradient updates. For the paper's per-cluster training
//! sets (hundreds of patterns) the whole matrix fits in memory; for larger
//! sets a bounded LRU of rows keeps memory flat.
//!
//! Two caches live here:
//!
//! - [`KernelCache`] — the private per-solve row cache every SMO call owns.
//! - [`SharedKernelCache`] — a `parking_lot`-guarded cache of **squared
//!   distance** rows `d²(i, ·) = ‖xᵢ − x·‖²`. The iterative learning loop
//!   doubles γ every round but trains on the same vectors, and the RBF
//!   kernel is `K(i, j) = exp(−γ d²(i, j))`, so the γ-independent distances
//!   are what's worth sharing: rounds trained concurrently (and sequential
//!   re-trainings) reuse each other's rows instead of recomputing the
//!   `O(n² · dim)` distance work per round.

use crate::Kernel;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Squared Euclidean distance between two equal-length vectors.
fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// A thread-safe LRU cache of squared-distance rows over a fixed training
/// set, shared by concurrent SMO solves on the same vectors.
///
/// Callers must pass the **same** `x` (same order, same scaling) to every
/// [`row`](SharedKernelCache::row) call; the cache is keyed by row index
/// only. [`crate::SvmTrainer::train_with_cache`] upholds this because its
/// min-max feature scaling is a deterministic function of the training
/// vectors, so every round of iterative learning scales them identically.
#[derive(Debug, Default)]
pub struct SharedKernelCache {
    state: Mutex<SharedState>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct SharedState {
    rows: HashMap<usize, Arc<Vec<f64>>>,
    lru: Vec<usize>, // most recent last
    hits: u64,
    misses: u64,
}

impl SharedKernelCache {
    /// A cache holding at most `capacity_rows` distance rows (floored at 2;
    /// pass the training-set size to cache the full matrix).
    pub fn new(capacity_rows: usize) -> Self {
        SharedKernelCache {
            state: Mutex::new(SharedState::default()),
            capacity: capacity_rows.max(2),
        }
    }

    /// The squared-distance row `d²(i, ·)` over `x`, computed and cached on
    /// miss. The row is returned as an `Arc` so concurrent solves share one
    /// allocation.
    pub fn row(&self, i: usize, x: &[Vec<f64>]) -> Arc<Vec<f64>> {
        if let Some(row) = self.lookup(i) {
            return row;
        }
        // Compute outside the lock: rows are O(n · dim) work and concurrent
        // rounds would serialise on the mutex otherwise. A racing thread may
        // duplicate the computation; the insert below is idempotent.
        let xi = &x[i];
        let row: Arc<Vec<f64>> = Arc::new(x.iter().map(|xj| squared_distance(xi, xj)).collect());
        let mut state = self.state.lock();
        if let Some(existing) = state.rows.get(&i) {
            return Arc::clone(existing);
        }
        if state.rows.len() >= self.capacity {
            let victim = state.lru.remove(0);
            state.rows.remove(&victim);
        }
        state.rows.insert(i, Arc::clone(&row));
        state.lru.push(i);
        row
    }

    fn lookup(&self, i: usize) -> Option<Arc<Vec<f64>>> {
        let mut state = self.state.lock();
        if let Some(row) = state.rows.get(&i).map(Arc::clone) {
            state.hits += 1;
            if let Some(pos) = state.lru.iter().position(|&t| t == i) {
                state.lru.remove(pos);
            }
            state.lru.push(i);
            Some(row)
        } else {
            state.misses += 1;
            None
        }
    }

    /// `(hits, misses)` counters, for diagnostics and tests.
    pub fn stats(&self) -> (u64, u64) {
        let state = self.state.lock();
        (state.hits, state.misses)
    }

    /// Number of rows currently resident.
    pub fn len(&self) -> usize {
        self.state.lock().rows.len()
    }

    /// `true` when no rows are resident.
    pub fn is_empty(&self) -> bool {
        self.state.lock().rows.is_empty()
    }
}

/// LRU cache of kernel matrix rows over a fixed training set.
pub struct KernelCache<'a> {
    kernel: Kernel,
    x: &'a [Vec<f64>],
    rows: HashMap<usize, Vec<f64>>,
    lru: Vec<usize>, // most recent last
    capacity: usize,
    hits: u64,
    misses: u64,
    shared: Option<&'a SharedKernelCache>,
}

impl<'a> KernelCache<'a> {
    /// Creates a cache over training vectors `x` holding at most
    /// `capacity_rows` rows (at least 2, since SMO touches two rows per
    /// iteration).
    pub fn new(kernel: Kernel, x: &'a [Vec<f64>], capacity_rows: usize) -> Self {
        KernelCache {
            kernel,
            x,
            rows: HashMap::new(),
            lru: Vec::new(),
            capacity: capacity_rows.max(2),
            hits: 0,
            misses: 0,
            shared: None,
        }
    }

    /// Like [`new`](KernelCache::new), but row misses for RBF kernels are
    /// served from `shared` squared-distance rows (`K = exp(−γ d²)`)
    /// instead of recomputing distances. Non-RBF kernels fall back to
    /// direct evaluation.
    pub fn with_shared(
        kernel: Kernel,
        x: &'a [Vec<f64>],
        capacity_rows: usize,
        shared: &'a SharedKernelCache,
    ) -> Self {
        let mut cache = Self::new(kernel, x, capacity_rows);
        cache.shared = Some(shared);
        cache
    }

    /// Number of training vectors.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when the training set is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Returns the kernel row `K(i, ·)`, computing and caching it on miss.
    pub fn row(&mut self, i: usize) -> &[f64] {
        if self.rows.contains_key(&i) {
            self.hits += 1;
            self.touch(i);
        } else {
            self.misses += 1;
            if self.rows.len() >= self.capacity {
                // Evict the least recently used row.
                let victim = self.lru.remove(0);
                self.rows.remove(&victim);
            }
            let row = self.compute_row(i);
            self.rows.insert(i, row);
            self.lru.push(i);
        }
        &self.rows[&i]
    }

    /// Diagonal entry `K(i, i)` without caching a full row.
    pub fn diagonal(&self, i: usize) -> f64 {
        self.kernel.eval(&self.x[i], &self.x[i])
    }

    /// `(hits, misses)` counters, for diagnostics and tests.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn touch(&mut self, i: usize) {
        if let Some(pos) = self.lru.iter().position(|&t| t == i) {
            self.lru.remove(pos);
        }
        self.lru.push(i);
    }

    fn compute_row(&self, i: usize) -> Vec<f64> {
        if let (Kernel::Rbf { gamma }, Some(shared)) = (self.kernel, self.shared) {
            let d2 = shared.row(i, self.x);
            return d2.iter().map(|d| (-gamma * d).exp()).collect();
        }
        let xi = &self.x[i];
        self.x.iter().map(|xj| self.kernel.eval(xi, xj)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Vec<Vec<f64>> {
        (0..6).map(|i| vec![i as f64]).collect()
    }

    #[test]
    fn row_values_match_kernel() {
        let x = data();
        let mut cache = KernelCache::new(Kernel::Linear, &x, 4);
        let row = cache.row(3).to_vec();
        for (j, v) in row.iter().enumerate() {
            assert_eq!(*v, (3 * j) as f64);
        }
    }

    #[test]
    fn hit_after_first_access() {
        let x = data();
        let mut cache = KernelCache::new(Kernel::Linear, &x, 4);
        cache.row(0);
        cache.row(0);
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 1);
    }

    #[test]
    fn eviction_keeps_capacity() {
        let x = data();
        let mut cache = KernelCache::new(Kernel::Linear, &x, 2);
        cache.row(0);
        cache.row(1);
        cache.row(2); // evicts 0
        cache.row(0); // miss again
        let (_, misses) = cache.stats();
        assert_eq!(misses, 4);
    }

    #[test]
    fn lru_order_respects_touches() {
        let x = data();
        let mut cache = KernelCache::new(Kernel::Linear, &x, 2);
        cache.row(0);
        cache.row(1);
        cache.row(0); // touch 0, so 1 is LRU
        cache.row(2); // evicts 1
        cache.row(0); // still cached -> hit
        let (hits, _) = cache.stats();
        assert_eq!(hits, 2);
    }

    #[test]
    fn diagonal_matches_row() {
        let x = data();
        let mut cache = KernelCache::new(Kernel::rbf(0.5), &x, 4);
        for i in 0..x.len() {
            let d = cache.diagonal(i);
            assert!((cache.row(i)[i] - d).abs() < 1e-15);
        }
    }

    #[test]
    fn capacity_floor_is_two() {
        let x = data();
        let mut cache = KernelCache::new(Kernel::Linear, &x, 0);
        cache.row(0);
        cache.row(1);
        cache.row(0);
        let (hits, _) = cache.stats();
        assert_eq!(hits, 1, "both working-set rows must stay resident");
    }

    #[test]
    fn shared_rows_are_squared_distances() {
        let x = data();
        let shared = SharedKernelCache::new(x.len());
        let row = shared.row(2, &x);
        for (j, d2) in row.iter().enumerate() {
            let diff = 2.0 - j as f64;
            assert!((d2 - diff * diff).abs() < 1e-12);
        }
        let (hits, misses) = shared.stats();
        assert_eq!((hits, misses), (0, 1));
        shared.row(2, &x);
        assert_eq!(shared.stats(), (1, 1));
    }

    #[test]
    fn shared_cache_serves_rbf_rows_exactly() {
        // A with_shared cache must produce bit-identical rows to a private
        // one: exp(−γ d²) is evaluated the same way in Kernel::eval.
        let x = data();
        let gamma = 0.37;
        let shared = SharedKernelCache::new(x.len());
        let mut plain = KernelCache::new(Kernel::rbf(gamma), &x, x.len());
        let mut cached = KernelCache::with_shared(Kernel::rbf(gamma), &x, x.len(), &shared);
        for i in 0..x.len() {
            assert_eq!(plain.row(i), cached.row(i), "row {i}");
        }
        let (_, misses) = shared.stats();
        assert_eq!(misses, x.len() as u64);
    }

    #[test]
    fn shared_cache_is_concurrently_usable() {
        let x: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let shared = SharedKernelCache::new(x.len());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut cache =
                        KernelCache::with_shared(Kernel::rbf(0.5), &x, x.len(), &shared);
                    for i in 0..x.len() {
                        let row = cache.row(i).to_vec();
                        assert!((row[i] - 1.0).abs() < 1e-12);
                    }
                });
            }
        });
        let (hits, misses) = shared.stats();
        assert_eq!(hits + misses, 4 * x.len() as u64);
        assert!(shared.len() <= x.len());
    }

    #[test]
    fn shared_cache_evicts_at_capacity() {
        let x = data();
        let shared = SharedKernelCache::new(2);
        shared.row(0, &x);
        shared.row(1, &x);
        shared.row(2, &x); // evicts 0
        assert_eq!(shared.len(), 2);
        shared.row(0, &x); // miss again
        let (_, misses) = shared.stats();
        assert_eq!(misses, 4);
    }

    #[test]
    fn non_rbf_kernels_ignore_shared_cache() {
        let x = data();
        let shared = SharedKernelCache::new(x.len());
        let mut cache = KernelCache::with_shared(Kernel::Linear, &x, x.len(), &shared);
        let row = cache.row(3).to_vec();
        for (j, v) in row.iter().enumerate() {
            assert_eq!(*v, (3 * j) as f64);
        }
        assert!(
            shared.is_empty(),
            "linear kernels must not populate d² rows"
        );
    }
}
