//! Kernel row cache for the SMO solver.
//!
//! SMO repeatedly needs full kernel rows `K(i, ·)` for the two working-set
//! indices and for gradient updates. For the paper's per-cluster training
//! sets (hundreds of patterns) the whole matrix fits in memory; for larger
//! sets a bounded LRU of rows keeps memory flat.

use crate::Kernel;
use std::collections::HashMap;

/// LRU cache of kernel matrix rows over a fixed training set.
pub struct KernelCache<'a> {
    kernel: Kernel,
    x: &'a [Vec<f64>],
    rows: HashMap<usize, Vec<f64>>,
    lru: Vec<usize>, // most recent last
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<'a> KernelCache<'a> {
    /// Creates a cache over training vectors `x` holding at most
    /// `capacity_rows` rows (at least 2, since SMO touches two rows per
    /// iteration).
    pub fn new(kernel: Kernel, x: &'a [Vec<f64>], capacity_rows: usize) -> Self {
        KernelCache {
            kernel,
            x,
            rows: HashMap::new(),
            lru: Vec::new(),
            capacity: capacity_rows.max(2),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of training vectors.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when the training set is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Returns the kernel row `K(i, ·)`, computing and caching it on miss.
    pub fn row(&mut self, i: usize) -> &[f64] {
        if self.rows.contains_key(&i) {
            self.hits += 1;
            self.touch(i);
        } else {
            self.misses += 1;
            if self.rows.len() >= self.capacity {
                // Evict the least recently used row.
                let victim = self.lru.remove(0);
                self.rows.remove(&victim);
            }
            let xi = &self.x[i];
            let row: Vec<f64> = self.x.iter().map(|xj| self.kernel.eval(xi, xj)).collect();
            self.rows.insert(i, row);
            self.lru.push(i);
        }
        &self.rows[&i]
    }

    /// Diagonal entry `K(i, i)` without caching a full row.
    pub fn diagonal(&self, i: usize) -> f64 {
        self.kernel.eval(&self.x[i], &self.x[i])
    }

    /// `(hits, misses)` counters, for diagnostics and tests.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn touch(&mut self, i: usize) {
        if let Some(pos) = self.lru.iter().position(|&t| t == i) {
            self.lru.remove(pos);
        }
        self.lru.push(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Vec<Vec<f64>> {
        (0..6).map(|i| vec![i as f64]).collect()
    }

    #[test]
    fn row_values_match_kernel() {
        let x = data();
        let mut cache = KernelCache::new(Kernel::Linear, &x, 4);
        let row = cache.row(3).to_vec();
        for (j, v) in row.iter().enumerate() {
            assert_eq!(*v, (3 * j) as f64);
        }
    }

    #[test]
    fn hit_after_first_access() {
        let x = data();
        let mut cache = KernelCache::new(Kernel::Linear, &x, 4);
        cache.row(0);
        cache.row(0);
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 1);
    }

    #[test]
    fn eviction_keeps_capacity() {
        let x = data();
        let mut cache = KernelCache::new(Kernel::Linear, &x, 2);
        cache.row(0);
        cache.row(1);
        cache.row(2); // evicts 0
        cache.row(0); // miss again
        let (_, misses) = cache.stats();
        assert_eq!(misses, 4);
    }

    #[test]
    fn lru_order_respects_touches() {
        let x = data();
        let mut cache = KernelCache::new(Kernel::Linear, &x, 2);
        cache.row(0);
        cache.row(1);
        cache.row(0); // touch 0, so 1 is LRU
        cache.row(2); // evicts 1
        cache.row(0); // still cached -> hit
        let (hits, _) = cache.stats();
        assert_eq!(hits, 2);
    }

    #[test]
    fn diagonal_matches_row() {
        let x = data();
        let mut cache = KernelCache::new(Kernel::rbf(0.5), &x, 4);
        for i in 0..x.len() {
            let d = cache.diagonal(i);
            assert!((cache.row(i)[i] - d).abs() < 1e-15);
        }
    }

    #[test]
    fn capacity_floor_is_two() {
        let x = data();
        let mut cache = KernelCache::new(Kernel::Linear, &x, 0);
        cache.row(0);
        cache.row(1);
        cache.row(0);
        let (hits, _) = cache.stats();
        assert_eq!(hits, 1, "both working-set rows must stay resident");
    }
}
