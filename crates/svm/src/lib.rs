//! Two-class soft-margin C-SVM with an RBF kernel, trained by sequential
//! minimal optimisation (SMO).
//!
//! This crate is the from-scratch replacement for LIBSVM \[20\] used by the
//! paper. It solves the dual quadratic program of eq. (3):
//!
//! ```text
//! max f(a) = Σ aₙ − ½ Σₙ Σₘ aₙ aₘ tₙ tₘ k(xₙ, xₘ)
//! s.t.  0 ≤ aₙ ≤ C,   Σ aₙ tₙ = 0,
//!       k(xₙ, xₘ) = exp(−γ ‖xₙ − xₘ‖²)
//! ```
//!
//! using SMO with maximal-violating-pair working-set selection, a kernel row
//! cache, per-class penalty weights (for imbalanced data), and optional
//! min-max feature scaling.
//!
//! For the clip-evaluation hot loop, a trained model can be
//! [compiled](SvmModel::compile) into a flattened [`CompiledModel`] and
//! scored through a [`BatchEvaluator`] with reusable scratch — identical
//! decisions, several times the throughput (see the [`eval`-module
//! docs](CompiledModel)).
//!
//! # Examples
//!
//! ```
//! use hotspot_svm::{Kernel, SvmTrainer};
//!
//! // A linearly separable toy problem.
//! let x = vec![vec![0.0], vec![0.2], vec![0.8], vec![1.0]];
//! let y = vec![-1.0, -1.0, 1.0, 1.0];
//! let model = SvmTrainer::new(Kernel::rbf(0.5))
//!     .c(10.0)
//!     .train(&x, &y)?;
//! assert_eq!(model.predict(&[0.1]), -1.0);
//! assert_eq!(model.predict(&[0.9]), 1.0);
//! # Ok::<(), hotspot_svm::TrainError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod eval;
mod kernel;
mod model;
mod probability;
mod scale;
mod smo;

pub use cache::{KernelCache, SharedKernelCache};
pub use eval::{BatchEvaluator, CompiledModel};
pub use kernel::Kernel;
pub use model::{SvmModel, SvmTrainer, TrainError};
pub use probability::PlattScaler;
pub use scale::FeatureScaler;
pub use smo::{solve, solve_with_cache, SmoParams, SmoSolution};
