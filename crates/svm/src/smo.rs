//! Sequential minimal optimisation for the C-SVM dual.
//!
//! Solves (in LIBSVM's minimisation form)
//!
//! ```text
//! min  ½ αᵀQα − eᵀα     s.t.  yᵀα = 0,  0 ≤ αᵢ ≤ C_{yᵢ}
//! ```
//!
//! where `Q_ij = y_i y_j K(x_i, x_j)`, by repeatedly optimising the maximal
//! violating pair (working-set selection WSS1 of Fan, Chen & Lin). This is
//! the optimiser behind eq. (3) of the paper.

use crate::{Kernel, KernelCache, SharedKernelCache};

/// Solver parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoParams {
    /// Penalty for positive-class slack (`C₊`).
    pub c_pos: f64,
    /// Penalty for negative-class slack (`C₋`).
    pub c_neg: f64,
    /// KKT violation tolerance (stopping threshold).
    pub eps: f64,
    /// Hard iteration cap; `0` means the LIBSVM-style default
    /// `max(10⁷, 100·n)`.
    pub max_iter: u64,
    /// Kernel cache capacity in rows; `0` means "all rows".
    pub cache_rows: usize,
}

impl Default for SmoParams {
    fn default() -> Self {
        SmoParams {
            c_pos: 1.0,
            c_neg: 1.0,
            eps: 1e-3,
            max_iter: 0,
            cache_rows: 0,
        }
    }
}

/// The solved dual problem.
#[derive(Debug, Clone, PartialEq)]
pub struct SmoSolution {
    /// Lagrange multipliers α (one per training vector).
    pub alpha: Vec<f64>,
    /// Bias term ρ; the decision function is `Σ αᵢ yᵢ K(xᵢ, x) − ρ`.
    pub rho: f64,
    /// Number of working-set iterations performed.
    pub iterations: u64,
    /// `true` if the KKT gap dropped below `eps` before the iteration cap.
    pub converged: bool,
    /// Dual objective value `½ αᵀQα − eᵀα` at the solution.
    pub objective: f64,
}

const TAU: f64 = 1e-12;

/// Runs SMO on the given training set.
///
/// `y` must contain only `+1.0` / `−1.0` (validated by the caller,
/// [`crate::SvmTrainer`]).
pub fn solve(x: &[Vec<f64>], y: &[f64], kernel: Kernel, params: &SmoParams) -> SmoSolution {
    solve_with_cache(x, y, kernel, params, None)
}

/// Like [`solve`], optionally backing kernel-row misses with a shared
/// squared-distance cache (see [`SharedKernelCache`]); concurrent solves on
/// the same `x` — the iterative `(C, γ)` rounds — then share the distance
/// work. The solution is bit-identical to [`solve`]'s.
pub fn solve_with_cache(
    x: &[Vec<f64>],
    y: &[f64],
    kernel: Kernel,
    params: &SmoParams,
    shared: Option<&SharedKernelCache>,
) -> SmoSolution {
    let n = x.len();
    debug_assert_eq!(n, y.len());
    if n == 0 {
        return SmoSolution {
            alpha: Vec::new(),
            rho: 0.0,
            iterations: 0,
            converged: true,
            objective: 0.0,
        };
    }

    let cap = if params.cache_rows == 0 {
        n
    } else {
        params.cache_rows
    };
    let mut cache = match shared {
        Some(sh) => KernelCache::with_shared(kernel, x, cap, sh),
        None => KernelCache::new(kernel, x, cap),
    };
    let qd: Vec<f64> = (0..n).map(|i| cache.diagonal(i)).collect();

    let c_of = |i: usize| {
        if y[i] > 0.0 {
            params.c_pos
        } else {
            params.c_neg
        }
    };

    let mut alpha = vec![0.0f64; n];
    // G_i = (Qα)_i − 1; starts at −1 since α = 0.
    let mut grad = vec![-1.0f64; n];

    let max_iter = if params.max_iter == 0 {
        10_000_000u64.max(100 * n as u64)
    } else {
        params.max_iter
    };

    let mut iterations = 0u64;
    let mut converged = false;
    while iterations < max_iter {
        // Working-set selection WSS2 (Fan, Chen & Lin 2005 — LIBSVM's
        // default): i maximises the violation over I_up; j minimises the
        // second-order gain −b²/a over the violating members of I_low.
        let mut g_max = f64::NEG_INFINITY; // max over I_up of −y G
        let mut g_min = f64::INFINITY; // min over I_low of −y G
        let mut i_sel = usize::MAX;
        for t in 0..n {
            let minus_yg = -y[t] * grad[t];
            let in_up = (y[t] > 0.0 && alpha[t] < c_of(t)) || (y[t] < 0.0 && alpha[t] > 0.0);
            let in_low = (y[t] < 0.0 && alpha[t] < c_of(t)) || (y[t] > 0.0 && alpha[t] > 0.0);
            if in_up && minus_yg > g_max {
                g_max = minus_yg;
                i_sel = t;
            }
            if in_low && minus_yg < g_min {
                g_min = minus_yg;
            }
        }
        if g_max - g_min < params.eps || i_sel == usize::MAX || !g_min.is_finite() {
            converged = true;
            break;
        }
        let i = i_sel;
        let row_i_for_select: Vec<f64> = cache.row(i).to_vec();
        let mut j_sel = usize::MAX;
        let mut best_gain = f64::INFINITY; // minimising −b²/a
        for t in 0..n {
            let in_low = (y[t] < 0.0 && alpha[t] < c_of(t)) || (y[t] > 0.0 && alpha[t] > 0.0);
            if !in_low {
                continue;
            }
            let minus_yg = -y[t] * grad[t];
            let b = g_max - minus_yg;
            if b <= 0.0 {
                continue; // not a violating pair with i
            }
            // a = K_ii + K_tt − 2 K_it: the curvature along the feasible
            // update direction (label factors cancel), floored at τ.
            let a = (qd[i] + qd[t] - 2.0 * row_i_for_select[t]).max(TAU);
            let gain = -(b * b) / a;
            if gain < best_gain {
                best_gain = gain;
                j_sel = t;
            }
        }
        if j_sel == usize::MAX {
            converged = true;
            break;
        }
        iterations += 1;

        let j = j_sel;
        let k_ij = row_i_for_select[j];
        let (old_ai, old_aj) = (alpha[i], alpha[j]);
        let (ci, cj) = (c_of(i), c_of(j));

        if y[i] != y[j] {
            let quad = (qd[i] + qd[j] + 2.0 * k_ij).max(TAU);
            let delta = (-grad[i] - grad[j]) / quad;
            let diff = alpha[i] - alpha[j];
            alpha[i] += delta;
            alpha[j] += delta;
            if diff > 0.0 {
                if alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = diff;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = -diff;
            }
            if diff > ci - cj {
                if alpha[i] > ci {
                    alpha[i] = ci;
                    alpha[j] = ci - diff;
                }
            } else if alpha[j] > cj {
                alpha[j] = cj;
                alpha[i] = cj + diff;
            }
        } else {
            let quad = (qd[i] + qd[j] - 2.0 * k_ij).max(TAU);
            let delta = (grad[i] - grad[j]) / quad;
            let sum = alpha[i] + alpha[j];
            alpha[i] -= delta;
            alpha[j] += delta;
            if sum > ci {
                if alpha[i] > ci {
                    alpha[i] = ci;
                    alpha[j] = sum - ci;
                }
            } else if alpha[j] < 0.0 {
                alpha[j] = 0.0;
                alpha[i] = sum;
            }
            if sum > cj {
                if alpha[j] > cj {
                    alpha[j] = cj;
                    alpha[i] = sum - cj;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = sum;
            }
        }

        // Gradient update: G_t += Q_ti Δα_i + Q_tj Δα_j.
        let dai = alpha[i] - old_ai;
        let daj = alpha[j] - old_aj;
        if dai != 0.0 || daj != 0.0 {
            let row_i: Vec<f64> = cache.row(i).to_vec();
            let row_j = cache.row(j);
            for t in 0..n {
                grad[t] += y[t] * y[i] * row_i[t] * dai + y[t] * y[j] * row_j[t] * daj;
            }
        }
    }

    let rho = compute_rho(&alpha, &grad, y, params);
    let objective = 0.5
        * alpha
            .iter()
            .zip(&grad)
            .map(|(a, g)| a * (g - 1.0))
            .sum::<f64>();

    SmoSolution {
        alpha,
        rho,
        iterations,
        converged,
        objective,
    }
}

/// Bias from the KKT conditions: average of `y_t G_t` over free support
/// vectors, or the midpoint of the bound-derived interval when none is free.
fn compute_rho(alpha: &[f64], grad: &[f64], y: &[f64], params: &SmoParams) -> f64 {
    let mut upper = f64::INFINITY;
    let mut lower = f64::NEG_INFINITY;
    let mut sum_free = 0.0;
    let mut nr_free = 0usize;
    for t in 0..alpha.len() {
        let c_t = if y[t] > 0.0 {
            params.c_pos
        } else {
            params.c_neg
        };
        let yg = y[t] * grad[t];
        if (alpha[t] - c_t).abs() < TAU {
            if y[t] < 0.0 {
                upper = upper.min(yg);
            } else {
                lower = lower.max(yg);
            }
        } else if alpha[t] < TAU {
            if y[t] > 0.0 {
                upper = upper.min(yg);
            } else {
                lower = lower.max(yg);
            }
        } else {
            nr_free += 1;
            sum_free += yg;
        }
    }
    if nr_free > 0 {
        sum_free / nr_free as f64
    } else if upper.is_finite() && lower.is_finite() {
        (upper + lower) / 2.0
    } else if upper.is_finite() {
        // Single-class (all +1) degenerate case: any ρ ≤ upper satisfies the
        // KKT conditions; take the boundary value.
        upper
    } else if lower.is_finite() {
        lower
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(x: &[Vec<f64>], y: &[f64], sol: &SmoSolution, kernel: Kernel, q: &[f64]) -> f64 {
        x.iter()
            .zip(y)
            .zip(&sol.alpha)
            .map(|((xi, yi), ai)| ai * yi * kernel.eval(xi, q))
            .sum::<f64>()
            - sol.rho
    }

    #[test]
    fn two_point_linear_max_margin() {
        // x = 0 (−1) and x = 1 (+1), linear kernel, large C: the maximum
        // margin separator is f(x) = 2x − 1, so α₀ = α₁ = 2 and ρ = 1.
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![-1.0, 1.0];
        let params = SmoParams {
            c_pos: 1e6,
            c_neg: 1e6,
            ..Default::default()
        };
        let sol = solve(&x, &y, Kernel::Linear, &params);
        assert!(sol.converged);
        assert!((sol.alpha[0] - 2.0).abs() < 1e-6, "alpha = {:?}", sol.alpha);
        assert!((sol.alpha[1] - 2.0).abs() < 1e-6);
        let f_mid = decision(&x, &y, &sol, Kernel::Linear, &[0.5]);
        assert!(f_mid.abs() < 1e-6, "boundary at midpoint, got {f_mid}");
        assert!(decision(&x, &y, &sol, Kernel::Linear, &[1.0]) > 0.99);
        assert!(decision(&x, &y, &sol, Kernel::Linear, &[0.0]) < -0.99);
    }

    #[test]
    fn xor_with_rbf() {
        let x = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ];
        let y = vec![1.0, 1.0, -1.0, -1.0];
        let params = SmoParams {
            c_pos: 100.0,
            c_neg: 100.0,
            ..Default::default()
        };
        let kernel = Kernel::rbf(1.0);
        let sol = solve(&x, &y, kernel, &params);
        assert!(sol.converged);
        for (xi, yi) in x.iter().zip(&y) {
            let f = decision(&x, &y, &sol, kernel, xi);
            assert!(f * yi > 0.0, "point {xi:?} misclassified ({f})");
        }
    }

    #[test]
    fn equality_constraint_holds() {
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 7) as f64, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let sol = solve(&x, &y, Kernel::rbf(0.5), &SmoParams::default());
        let sum: f64 = sol.alpha.iter().zip(&y).map(|(a, t)| a * t).sum();
        assert!(sum.abs() < 1e-9, "Σ αᵢ yᵢ = {sum}");
    }

    #[test]
    fn box_constraints_hold() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![(i as f64).sin()]).collect();
        let y: Vec<f64> = (0..30)
            .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let params = SmoParams {
            c_pos: 2.0,
            c_neg: 0.5,
            ..Default::default()
        };
        let sol = solve(&x, &y, Kernel::rbf(2.0), &params);
        for (a, t) in sol.alpha.iter().zip(&y) {
            let c = if *t > 0.0 { 2.0 } else { 0.5 };
            assert!(*a >= -1e-12 && *a <= c + 1e-9, "α = {a} outside [0, {c}]");
        }
    }

    #[test]
    fn single_class_gives_zero_alphas() {
        // With only +1 labels, yᵀα = 0 forces α = 0.
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![1.0, 1.0];
        let sol = solve(&x, &y, Kernel::Linear, &SmoParams::default());
        assert!(sol.alpha.iter().all(|a| *a == 0.0));
        // ρ midpoint makes the decision positive everywhere.
        assert!(decision(&x, &y, &sol, Kernel::Linear, &[5.0]) > 0.0);
    }

    #[test]
    fn empty_input() {
        let sol = solve(&[], &[], Kernel::Linear, &SmoParams::default());
        assert!(sol.converged);
        assert!(sol.alpha.is_empty());
    }

    #[test]
    fn objective_decreases_with_more_freedom() {
        // Larger C can only lower (or keep) the optimal objective.
        let x: Vec<Vec<f64>> = (0..12).map(|i| vec![(i % 5) as f64 / 4.0]).collect();
        let y: Vec<f64> = (0..12)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let lo = solve(
            &x,
            &y,
            Kernel::rbf(1.0),
            &SmoParams {
                c_pos: 0.1,
                c_neg: 0.1,
                ..Default::default()
            },
        );
        let hi = solve(
            &x,
            &y,
            Kernel::rbf(1.0),
            &SmoParams {
                c_pos: 10.0,
                c_neg: 10.0,
                ..Default::default()
            },
        );
        assert!(hi.objective <= lo.objective + 1e-9);
    }

    #[test]
    fn iteration_cap_respected() {
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i as f64 * 0.7).sin(), (i as f64).cos()])
            .collect();
        let y: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let sol = solve(
            &x,
            &y,
            Kernel::rbf(10.0),
            &SmoParams {
                c_pos: 1e4,
                c_neg: 1e4,
                max_iter: 3,
                ..Default::default()
            },
        );
        assert!(sol.iterations <= 3);
    }
}
