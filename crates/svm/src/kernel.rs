//! Kernel functions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A positive semi-definite kernel function.
///
/// The paper uses the Gaussian radial basis function
/// `k(x, x') = exp(−γ ‖x − x'‖²)`; linear and polynomial kernels are
/// provided for baselines and tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// Gaussian RBF with width parameter γ.
    Rbf {
        /// Width parameter γ > 0.
        gamma: f64,
    },
    /// Dot product `⟨x, x'⟩`.
    Linear,
    /// `(γ ⟨x, x'⟩ + coef0)^degree`.
    Polynomial {
        /// Scale applied to the dot product.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
        /// Polynomial degree.
        degree: u32,
    },
}

impl Kernel {
    /// Convenience constructor for the RBF kernel.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is not finite and positive.
    pub fn rbf(gamma: f64) -> Kernel {
        assert!(gamma.is_finite() && gamma > 0.0, "gamma must be positive");
        Kernel::Rbf { gamma }
    }

    /// Evaluates the kernel on two feature vectors.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when vector lengths differ.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "feature dimension mismatch");
        match *self {
            Kernel::Rbf { gamma } => {
                let sq: f64 = a
                    .iter()
                    .zip(b)
                    .map(|(x, y)| {
                        let d = x - y;
                        d * d
                    })
                    .sum();
                (-gamma * sq).exp()
            }
            Kernel::Linear => dot(a, b),
            Kernel::Polynomial {
                gamma,
                coef0,
                degree,
            } => (gamma * dot(a, b) + coef0).powi(degree as i32),
        }
    }

    /// For RBF-family kernels, returns a copy with γ replaced; other kernels
    /// are returned unchanged. Used by the paper's iterative learning, which
    /// doubles γ between self-training rounds.
    pub fn with_gamma(&self, gamma: f64) -> Kernel {
        match *self {
            Kernel::Rbf { .. } => Kernel::Rbf { gamma },
            Kernel::Polynomial { coef0, degree, .. } => Kernel::Polynomial {
                gamma,
                coef0,
                degree,
            },
            Kernel::Linear => Kernel::Linear,
        }
    }

    /// Returns γ for kernels that have one.
    pub fn gamma(&self) -> Option<f64> {
        match *self {
            Kernel::Rbf { gamma } | Kernel::Polynomial { gamma, .. } => Some(gamma),
            Kernel::Linear => None,
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Kernel::Rbf { gamma } => write!(f, "rbf(gamma={gamma})"),
            Kernel::Linear => write!(f, "linear"),
            Kernel::Polynomial {
                gamma,
                coef0,
                degree,
            } => write!(f, "poly(gamma={gamma}, coef0={coef0}, degree={degree})"),
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbf_at_zero_distance_is_one() {
        let k = Kernel::rbf(0.5);
        let v = vec![1.0, -2.0, 3.0];
        assert!((k.eval(&v, &v) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rbf_decays_with_distance() {
        let k = Kernel::rbf(1.0);
        let a = vec![0.0];
        assert!(k.eval(&a, &[1.0]) > k.eval(&a, &[2.0]));
        assert!((k.eval(&a, &[1.0]) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn rbf_is_symmetric() {
        let k = Kernel::rbf(0.3);
        let a = vec![1.0, 2.0];
        let b = vec![-0.5, 0.25];
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
    }

    #[test]
    fn linear_is_dot_product() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn polynomial_kernel() {
        let k = Kernel::Polynomial {
            gamma: 1.0,
            coef0: 1.0,
            degree: 2,
        };
        // (1*2 + 1)^2 = 9
        assert_eq!(k.eval(&[1.0], &[2.0]), 9.0);
    }

    #[test]
    fn with_gamma_replaces_width() {
        let k = Kernel::rbf(0.1).with_gamma(0.2);
        assert_eq!(k.gamma(), Some(0.2));
        assert_eq!(Kernel::Linear.with_gamma(5.0), Kernel::Linear);
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn rbf_rejects_bad_gamma() {
        let _ = Kernel::rbf(-1.0);
    }

    #[test]
    fn display() {
        assert_eq!(Kernel::rbf(0.25).to_string(), "rbf(gamma=0.25)");
        assert_eq!(Kernel::Linear.to_string(), "linear");
    }
}
