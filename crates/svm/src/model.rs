//! Trainer builder and the trained SVM model.

use crate::{smo, FeatureScaler, Kernel, SmoParams};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error training an SVM.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// No training vectors were given.
    EmptyTrainingSet,
    /// `x` and `y` lengths differ.
    LengthMismatch {
        /// Number of feature vectors.
        x: usize,
        /// Number of labels.
        y: usize,
    },
    /// Feature vectors have inconsistent dimensions.
    DimensionMismatch {
        /// Dimension of the first vector.
        expected: usize,
        /// Index of the offending vector.
        index: usize,
        /// Its dimension.
        found: usize,
    },
    /// A label was not `+1.0` or `−1.0`.
    BadLabel {
        /// Index of the offending label.
        index: usize,
        /// The label value.
        value: f64,
    },
    /// A feature value was NaN or infinite.
    NonFiniteFeature {
        /// Index of the offending vector.
        index: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::EmptyTrainingSet => write!(f, "empty training set"),
            TrainError::LengthMismatch { x, y } => {
                write!(f, "{x} feature vectors but {y} labels")
            }
            TrainError::DimensionMismatch {
                expected,
                index,
                found,
            } => write!(
                f,
                "vector {index} has dimension {found}, expected {expected}"
            ),
            TrainError::BadLabel { index, value } => {
                write!(f, "label {index} is {value}, expected +1 or -1")
            }
            TrainError::NonFiniteFeature { index } => {
                write!(f, "vector {index} contains a non-finite value")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// Builder for training a two-class C-SVM.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone, PartialEq)]
pub struct SvmTrainer {
    kernel: Kernel,
    params: SmoParams,
    scale: bool,
}

impl SvmTrainer {
    /// Starts a trainer with the given kernel, `C = 1`, `eps = 1e-3`, and
    /// feature scaling enabled.
    pub fn new(kernel: Kernel) -> Self {
        SvmTrainer {
            kernel,
            params: SmoParams::default(),
            scale: true,
        }
    }

    /// Sets both class penalties to `c`.
    pub fn c(mut self, c: f64) -> Self {
        self.params.c_pos = c;
        self.params.c_neg = c;
        self
    }

    /// Sets per-class penalties (`C₊`, `C₋`) for imbalanced data.
    pub fn class_weights(mut self, c_pos: f64, c_neg: f64) -> Self {
        self.params.c_pos = c_pos;
        self.params.c_neg = c_neg;
        self
    }

    /// Sets the KKT stopping tolerance.
    pub fn eps(mut self, eps: f64) -> Self {
        self.params.eps = eps;
        self
    }

    /// Caps the number of SMO iterations (0 = automatic).
    pub fn max_iter(mut self, max_iter: u64) -> Self {
        self.params.max_iter = max_iter;
        self
    }

    /// Enables or disables min-max feature scaling (default on).
    pub fn scale(mut self, scale: bool) -> Self {
        self.scale = scale;
        self
    }

    /// Trains a model.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for empty, mismatched, non-finite, or
    /// incorrectly labelled data. A single-class training set is *not* an
    /// error: the resulting model classifies everything as that class.
    pub fn train(&self, x: &[Vec<f64>], y: &[f64]) -> Result<SvmModel, TrainError> {
        self.train_impl(x, y, None)
    }

    /// Like [`train`](SvmTrainer::train), but kernel-row misses inside SMO
    /// are served from `shared` squared-distance rows. Repeated or
    /// concurrent trainings on the **same** `x` — the hotspot pipeline's
    /// iterative `(C, γ)` rounds — then share the `O(n²·dim)` distance work.
    /// The trained model is identical to [`train`](SvmTrainer::train)'s.
    ///
    /// # Errors
    ///
    /// Same as [`train`](SvmTrainer::train).
    pub fn train_with_cache(
        &self,
        x: &[Vec<f64>],
        y: &[f64],
        shared: &crate::SharedKernelCache,
    ) -> Result<SvmModel, TrainError> {
        self.train_impl(x, y, Some(shared))
    }

    fn train_impl(
        &self,
        x: &[Vec<f64>],
        y: &[f64],
        shared: Option<&crate::SharedKernelCache>,
    ) -> Result<SvmModel, TrainError> {
        if x.is_empty() {
            return Err(TrainError::EmptyTrainingSet);
        }
        if x.len() != y.len() {
            return Err(TrainError::LengthMismatch {
                x: x.len(),
                y: y.len(),
            });
        }
        let dim = x[0].len();
        for (i, row) in x.iter().enumerate() {
            if row.len() != dim {
                return Err(TrainError::DimensionMismatch {
                    expected: dim,
                    index: i,
                    found: row.len(),
                });
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(TrainError::NonFiniteFeature { index: i });
            }
        }
        for (i, &t) in y.iter().enumerate() {
            if t != 1.0 && t != -1.0 {
                return Err(TrainError::BadLabel { index: i, value: t });
            }
        }

        let scaler = if self.scale {
            Some(FeatureScaler::fit(x))
        } else {
            None
        };
        let scaled: Vec<Vec<f64>>;
        let xs: &[Vec<f64>] = match &scaler {
            Some(s) => {
                scaled = s.transform_all(x);
                &scaled
            }
            None => x,
        };

        let sol = smo::solve_with_cache(xs, y, self.kernel, &self.params, shared);

        // Keep only support vectors (α > 0).
        let mut support = Vec::new();
        let mut coef = Vec::new();
        for ((xi, &yi), &ai) in xs.iter().zip(y).zip(&sol.alpha) {
            if ai > 0.0 {
                support.push(xi.clone());
                coef.push(ai * yi);
            }
        }

        Ok(SvmModel {
            kernel: self.kernel,
            support,
            coef,
            rho: sol.rho,
            scaler,
            dim,
            iterations: sol.iterations,
            converged: sol.converged,
        })
    }
}

/// A trained two-class SVM.
///
/// The decision function is `f(x) = Σᵢ coefᵢ k(svᵢ, x) − ρ`; `predict`
/// returns its sign as `±1.0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmModel {
    kernel: Kernel,
    support: Vec<Vec<f64>>,
    coef: Vec<f64>, // αᵢ yᵢ
    rho: f64,
    scaler: Option<FeatureScaler>,
    dim: usize,
    iterations: u64,
    converged: bool,
}

thread_local! {
    /// Reusable scaling buffer: `decision_value` is called millions of
    /// times per scan, so the reference path must not allocate per call.
    static SCALE_SCRATCH: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
}

impl SvmModel {
    /// Signed distance-like decision value for a feature vector.
    ///
    /// This is the *reference* implementation the batched engine is pinned
    /// against; for hot loops, [`compile`](Self::compile) the model and
    /// score through a [`crate::BatchEvaluator`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimension.
    pub fn decision_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        match &self.scaler {
            Some(s) => SCALE_SCRATCH.with(|cell| {
                let mut buf = cell.borrow_mut();
                s.transform_into(x, &mut buf);
                self.decision_value_scaled(&buf)
            }),
            None => self.decision_value_scaled(x),
        }
    }

    /// Decision value over an already-scaled query.
    fn decision_value_scaled(&self, xq: &[f64]) -> f64 {
        self.support
            .iter()
            .zip(&self.coef)
            .map(|(sv, c)| c * self.kernel.eval(sv, xq))
            .sum::<f64>()
            - self.rho
    }

    /// Flattens this model into a [`CompiledModel`](crate::CompiledModel)
    /// for the batched inference engine (contiguous support vectors,
    /// precomputed row norms, baked-in scaling). Compile once — at train
    /// time or after deserialising — and score through a
    /// [`crate::BatchEvaluator`].
    pub fn compile(&self) -> crate::CompiledModel {
        crate::CompiledModel::compile(self)
    }

    /// Predicted class: `+1.0` when the decision value is non-negative.
    ///
    /// Equivalent to [`predict_with_threshold`](Self::predict_with_threshold)
    /// at `threshold = 0.0`: both treat the boundary case
    /// `decision_value == threshold` as positive.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.predict_with_threshold(x, 0.0)
    }

    /// Predicts with a shifted decision threshold: positive when
    /// `decision_value >= threshold`. The paper's `ours_med` / `ours_low`
    /// operating points raise this threshold to trade hits for extras.
    ///
    /// At `threshold = 0.0` this is exactly [`predict`](Self::predict):
    /// the boundary case `decision_value == threshold` counts as positive
    /// under both entry points.
    pub fn predict_with_threshold(&self, x: &[f64], threshold: f64) -> f64 {
        if self.decision_value(x) >= threshold {
            1.0
        } else {
            -1.0
        }
    }

    /// Fraction of `(x, y)` pairs predicted correctly.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn accuracy(&self, x: &[Vec<f64>], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len());
        if x.is_empty() {
            return 1.0;
        }
        let correct = x
            .iter()
            .zip(y)
            .filter(|(xi, &yi)| self.predict(xi) == yi)
            .count();
        correct as f64 / x.len() as f64
    }

    /// Number of support vectors retained.
    pub fn support_vector_count(&self) -> usize {
        self.support.len()
    }

    /// The retained support vectors (scaled, when scaling was enabled).
    pub(crate) fn support_vectors(&self) -> &[Vec<f64>] {
        &self.support
    }

    /// The `αᵢ yᵢ` coefficients, parallel to the support vectors.
    pub(crate) fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    /// The bias term ρ.
    pub(crate) fn rho(&self) -> f64 {
        self.rho
    }

    /// The fitted feature scaler, when scaling was enabled.
    pub(crate) fn scaler(&self) -> Option<&FeatureScaler> {
        self.scaler.as_ref()
    }

    /// The kernel the model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Feature dimension expected by `predict`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// SMO iterations used in training.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// `true` if SMO reached its KKT tolerance.
    pub fn converged(&self) -> bool {
        self.converged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x = vec![
            vec![0.0, 0.1],
            vec![0.1, 0.0],
            vec![0.2, 0.2],
            vec![0.9, 1.0],
            vec![1.0, 0.8],
            vec![0.8, 0.9],
        ];
        let y = vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0];
        (x, y)
    }

    #[test]
    fn trains_and_separates() {
        let (x, y) = separable();
        let model = SvmTrainer::new(Kernel::rbf(1.0))
            .c(100.0)
            .train(&x, &y)
            .unwrap();
        assert!(model.converged());
        assert_eq!(model.accuracy(&x, &y), 1.0);
        assert_eq!(model.predict(&[0.05, 0.05]), -1.0);
        assert_eq!(model.predict(&[0.95, 0.95]), 1.0);
    }

    #[test]
    fn validation_errors() {
        let t = SvmTrainer::new(Kernel::Linear);
        assert_eq!(t.train(&[], &[]), Err(TrainError::EmptyTrainingSet));
        assert_eq!(
            t.train(&[vec![0.0]], &[1.0, -1.0]),
            Err(TrainError::LengthMismatch { x: 1, y: 2 })
        );
        assert_eq!(
            t.train(&[vec![0.0], vec![0.0, 1.0]], &[1.0, -1.0]),
            Err(TrainError::DimensionMismatch {
                expected: 1,
                index: 1,
                found: 2
            })
        );
        assert_eq!(
            t.train(&[vec![0.0], vec![1.0]], &[1.0, 0.5]),
            Err(TrainError::BadLabel {
                index: 1,
                value: 0.5
            })
        );
        assert_eq!(
            t.train(&[vec![f64::NAN]], &[1.0]),
            Err(TrainError::NonFiniteFeature { index: 0 })
        );
    }

    #[test]
    fn single_class_predicts_that_class() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![1.0, 1.0, 1.0];
        let model = SvmTrainer::new(Kernel::rbf(1.0)).train(&x, &y).unwrap();
        assert_eq!(model.predict(&[10.0]), 1.0);
        assert_eq!(model.accuracy(&x, &y), 1.0);
    }

    #[test]
    fn threshold_shifts_operating_point() {
        let (x, y) = separable();
        let model = SvmTrainer::new(Kernel::rbf(1.0))
            .c(100.0)
            .train(&x, &y)
            .unwrap();
        let q = [0.95, 0.95];
        let f = model.decision_value(&q);
        assert!(f > 0.0);
        assert_eq!(model.predict_with_threshold(&q, f + 0.1), -1.0);
        assert_eq!(model.predict_with_threshold(&q, f - 0.1), 1.0);
    }

    #[test]
    fn predict_and_threshold_share_boundary_semantics() {
        let (x, y) = separable();
        let model = SvmTrainer::new(Kernel::rbf(1.0))
            .c(100.0)
            .train(&x, &y)
            .unwrap();
        for q in [[0.05, 0.05], [0.5, 0.5], [0.95, 0.95]] {
            // threshold = 0 must reproduce predict exactly...
            assert_eq!(model.predict(&q), model.predict_with_threshold(&q, 0.0));
            // ...and the exact boundary counts as positive for both.
            let f = model.decision_value(&q);
            assert_eq!(model.predict_with_threshold(&q, f), 1.0);
        }
    }

    #[test]
    fn scaling_improves_mixed_magnitudes() {
        // One feature in nanometres, one in unit densities; without scaling
        // the nm axis dominates the RBF. The scaled model must separate.
        let x = vec![
            vec![1000.0, 0.1],
            vec![1100.0, 0.15],
            vec![1000.0, 0.9],
            vec![1100.0, 0.85],
        ];
        let y = vec![-1.0, -1.0, 1.0, 1.0];
        let model = SvmTrainer::new(Kernel::rbf(1.0))
            .c(100.0)
            .train(&x, &y)
            .unwrap();
        assert_eq!(model.accuracy(&x, &y), 1.0);
    }

    #[test]
    fn class_weights_bias_the_boundary() {
        // Overlapping clouds; penalising negative slack much harder pulls
        // the boundary toward the positive class.
        let x = vec![
            vec![0.4],
            vec![0.45],
            vec![0.5],
            vec![0.55],
            vec![0.6],
            vec![0.5],
        ];
        let y = vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0];
        let balanced = SvmTrainer::new(Kernel::Linear)
            .scale(false)
            .c(1.0)
            .train(&x, &y)
            .unwrap();
        let neg_heavy = SvmTrainer::new(Kernel::Linear)
            .scale(false)
            .class_weights(0.1, 10.0)
            .train(&x, &y)
            .unwrap();
        // With heavy negative penalty the ambiguous 0.5 region leans negative.
        assert!(neg_heavy.decision_value(&[0.5]) <= balanced.decision_value(&[0.5]));
    }

    #[test]
    fn support_vectors_subset_of_training() {
        let (x, y) = separable();
        let model = SvmTrainer::new(Kernel::rbf(1.0))
            .c(10.0)
            .train(&x, &y)
            .unwrap();
        assert!(model.support_vector_count() >= 2);
        assert!(model.support_vector_count() <= x.len());
    }

    #[test]
    fn serde_roundtrip_is_identical() {
        // Serialisable via serde derive; spot-check with a JSON-free format:
        // use bincode-less approach — serde_test is unavailable, so check
        // Debug equality through clone.
        let (x, y) = separable();
        let model = SvmTrainer::new(Kernel::rbf(1.0)).train(&x, &y).unwrap();
        let copy = model.clone();
        assert_eq!(model, copy);
        assert_eq!(
            model.decision_value(&[0.5, 0.5]),
            copy.decision_value(&[0.5, 0.5])
        );
    }

    #[test]
    fn cached_training_matches_uncached() {
        // Scaling stays on: the scaler is deterministic, so the shared d²
        // rows are consistent and the models must match exactly.
        let (x, y) = separable();
        let shared = crate::SharedKernelCache::new(x.len());
        let trainer = SvmTrainer::new(Kernel::rbf(1.0)).c(100.0);
        let plain = trainer.train(&x, &y).unwrap();
        for _ in 0..3 {
            let cached = trainer.train_with_cache(&x, &y, &shared).unwrap();
            assert_eq!(plain, cached);
        }
        let (hits, _) = shared.stats();
        assert!(hits > 0, "later rounds must reuse distance rows");
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn predict_rejects_wrong_dimension() {
        let (x, y) = separable();
        let model = SvmTrainer::new(Kernel::rbf(1.0)).train(&x, &y).unwrap();
        let _ = model.predict(&[0.0]);
    }
}
