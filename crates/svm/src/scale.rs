//! Min-max feature scaling.
//!
//! RBF kernels are sensitive to feature magnitudes; the critical features of
//! the paper mix nanometre distances (thousands) with densities (≤ 1), so
//! models scale each dimension to `[0, 1]` based on the training data.

use serde::{Deserialize, Serialize};

/// Per-dimension min-max scaler fitted on training data.
///
/// ```
/// use hotspot_svm::FeatureScaler;
/// let data = vec![vec![0.0, 100.0], vec![10.0, 300.0]];
/// let scaler = FeatureScaler::fit(&data);
/// assert_eq!(scaler.transform(&[5.0, 200.0]), vec![0.5, 0.5]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureScaler {
    mins: Vec<f64>,
    spans: Vec<f64>, // max − min, 1.0 for constant dimensions
}

impl FeatureScaler {
    /// Fits the scaler to training vectors. Constant dimensions map to 0.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or rows have inconsistent lengths.
    pub fn fit(data: &[Vec<f64>]) -> Self {
        assert!(!data.is_empty(), "cannot fit a scaler to no data");
        let dim = data[0].len();
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for row in data {
            assert_eq!(row.len(), dim, "inconsistent feature dimension");
            for (d, &v) in row.iter().enumerate() {
                mins[d] = mins[d].min(v);
                maxs[d] = maxs[d].max(v);
            }
        }
        let spans = mins
            .iter()
            .zip(&maxs)
            .map(|(lo, hi)| {
                let s = hi - lo;
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        FeatureScaler { mins, spans }
    }

    /// Feature dimension the scaler was fitted on.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Per-dimension minima (the subtracted offsets).
    pub(crate) fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Per-dimension spans (`max − min`, 1.0 for constant dimensions).
    pub(crate) fn spans(&self) -> &[f64] {
        &self.spans
    }

    /// Scales one vector into `[0, 1]` per dimension (values outside the
    /// training range extrapolate linearly beyond `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` differs from the fitted dimension.
    pub fn transform(&self, v: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(v.len());
        self.transform_into(v, &mut out);
        out
    }

    /// Scales one vector into a caller-provided buffer (cleared first),
    /// so hot loops can reuse the allocation across calls. The arithmetic
    /// is identical to [`transform`](Self::transform).
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` differs from the fitted dimension.
    pub fn transform_into(&self, v: &[f64], buf: &mut Vec<f64>) {
        assert_eq!(v.len(), self.dim(), "feature dimension mismatch");
        buf.clear();
        buf.extend(
            v.iter()
                .zip(self.mins.iter().zip(&self.spans))
                .map(|(x, (lo, span))| (x - lo) / span),
        );
    }

    /// Scales a batch of vectors.
    pub fn transform_all(&self, data: &[Vec<f64>]) -> Vec<Vec<f64>> {
        data.iter().map(|v| self.transform(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_training_extremes_to_unit_interval() {
        let data = vec![vec![-5.0, 2.0], vec![5.0, 4.0], vec![0.0, 3.0]];
        let s = FeatureScaler::fit(&data);
        assert_eq!(s.transform(&[-5.0, 2.0]), vec![0.0, 0.0]);
        assert_eq!(s.transform(&[5.0, 4.0]), vec![1.0, 1.0]);
        assert_eq!(s.transform(&[0.0, 3.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn constant_dimension_maps_to_zero() {
        let data = vec![vec![7.0], vec![7.0]];
        let s = FeatureScaler::fit(&data);
        assert_eq!(s.transform(&[7.0]), vec![0.0]);
    }

    #[test]
    fn out_of_range_extrapolates() {
        let data = vec![vec![0.0], vec![10.0]];
        let s = FeatureScaler::fit(&data);
        assert_eq!(s.transform(&[20.0]), vec![2.0]);
        assert_eq!(s.transform(&[-10.0]), vec![-1.0]);
    }

    #[test]
    fn transform_into_reuses_buffer_and_matches() {
        let data = vec![vec![-5.0, 2.0], vec![5.0, 4.0]];
        let s = FeatureScaler::fit(&data);
        let mut buf = vec![99.0; 7]; // stale content must be cleared
        s.transform_into(&[0.0, 3.0], &mut buf);
        assert_eq!(buf, s.transform(&[0.0, 3.0]));
        s.transform_into(&[-5.0, 2.0], &mut buf);
        assert_eq!(buf, vec![0.0, 0.0]);
    }

    #[test]
    fn transform_all_matches_individual() {
        let data = vec![vec![0.0, 1.0], vec![2.0, 3.0]];
        let s = FeatureScaler::fit(&data);
        assert_eq!(
            s.transform_all(&data),
            vec![s.transform(&data[0]), s.transform(&data[1])]
        );
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_panics() {
        let _ = FeatureScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let s = FeatureScaler::fit(&[vec![1.0, 2.0]]);
        let _ = s.transform(&[1.0]);
    }
}
