//! Property tests pinning the batched inference engine to the reference
//! implementation: for any trained model — RBF, linear, or polynomial
//! kernel, any feature dimension, scaling on or off — the compiled
//! decision value must match `SvmModel::decision_value` within 1e-9, and
//! the predicted classes must be identical.

use hotspot_svm::{BatchEvaluator, Kernel, SvmTrainer};
use proptest::prelude::*;

const MAX_DIM: usize = 16;
const MAX_TRAIN: usize = 24;
const MAX_QUERY: usize = 8;

/// Slices a flat coordinate pool into `n` rows of `dim` values.
fn rows(flat: &[f64], n: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| flat[i * dim..(i + 1) * dim].to_vec())
        .collect()
}

/// Builds a two-class training set: positives are shifted along
/// dimension 0 so training converges fast while keeping overlap in play.
fn problem(flat: &[f64], labels: &[bool], n: usize, dim: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut x = rows(flat, n, dim);
    let mut y = Vec::with_capacity(n);
    for (row, &pos) in x.iter_mut().zip(labels) {
        if pos {
            row[0] += 2.0;
            y.push(1.0);
        } else {
            y.push(-1.0);
        }
    }
    (x, y)
}

/// Maps a selector integer plus shape parameters onto one of the three
/// kernel families (the vendored proptest has no `prop_oneof!`).
fn kernel_from(sel: u8, gamma: f64, coef0: f64, degree: u32) -> Kernel {
    match sel % 3 {
        0 => Kernel::rbf(gamma),
        1 => Kernel::Linear,
        _ => Kernel::Polynomial {
            gamma,
            coef0,
            degree,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compiled_decisions_match_reference(
        flat in proptest::collection::vec(-3.0f64..3.0, MAX_DIM * MAX_TRAIN),
        qflat in proptest::collection::vec(-3.0f64..3.0, MAX_DIM * MAX_QUERY),
        labels in proptest::collection::vec(proptest::bool::ANY, MAX_TRAIN),
        dim in 1usize..MAX_DIM,
        n in 4usize..MAX_TRAIN,
        nq in 1usize..MAX_QUERY,
        sel in 0u8..3,
        gamma in 0.05f64..4.0,
        coef0 in -1.0f64..1.0,
        degree in 1u32..4,
        scale in proptest::bool::ANY,
        c in 0.5f64..50.0,
    ) {
        let (x, y) = problem(&flat, &labels, n, dim);
        let queries = rows(&qflat, nq, dim);
        let kernel = kernel_from(sel, gamma, coef0, degree);
        let model = SvmTrainer::new(kernel)
            .c(c)
            .scale(scale)
            .max_iter(20_000)
            .train(&x, &y)
            .expect("training");
        let compiled = model.compile();
        let mut eval = BatchEvaluator::new();
        for q in &queries {
            let reference = model.decision_value(q);
            let fast = eval.decision_value(&compiled, q);
            let tol = 1e-9 * reference.abs().max(1.0);
            prop_assert!(
                (fast - reference).abs() <= tol,
                "kernel {kernel}, dim {dim}: compiled {fast} vs reference {reference}"
            );
            prop_assert_eq!(eval.predict(&compiled, q), model.predict(q));
        }
    }

    #[test]
    fn batch_scoring_matches_per_clip_scoring(
        flat in proptest::collection::vec(-3.0f64..3.0, MAX_DIM * MAX_TRAIN),
        qflat in proptest::collection::vec(-3.0f64..3.0, MAX_DIM * MAX_QUERY),
        labels in proptest::collection::vec(proptest::bool::ANY, MAX_TRAIN),
        dim in 1usize..MAX_DIM,
        n in 4usize..MAX_TRAIN,
        nq in 1usize..MAX_QUERY,
        gamma in 0.1f64..2.0,
    ) {
        let (x, y) = problem(&flat, &labels, n, dim);
        let queries = rows(&qflat, nq, dim);
        let model = SvmTrainer::new(Kernel::rbf(gamma)).c(10.0).train(&x, &y).expect("training");
        let compiled = model.compile();
        let mut eval = BatchEvaluator::new();
        let mut batch = Vec::new();
        eval.decision_values_into(&compiled, &queries, &mut batch);
        prop_assert_eq!(batch.len(), queries.len());
        for (q, &v) in queries.iter().zip(&batch) {
            // Same scratch, same arithmetic: bitwise equal.
            prop_assert_eq!(v, eval.decision_value(&compiled, q));
        }
    }
}
