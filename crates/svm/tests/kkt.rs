//! Property tests: KKT conditions and classification sanity of the SMO
//! solver on randomly generated problems.

use hotspot_svm::{Kernel, SmoParams, SvmTrainer};
use proptest::prelude::*;

/// Random two-class problems with controllable separation.
fn arb_problem() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    let point = (0.0f64..1.0, 0.0f64..1.0);
    proptest::collection::vec((point, proptest::bool::ANY), 4..30).prop_map(|raw| {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for ((a, b), pos) in raw {
            // Shift positives toward (1, 1) to keep both separable-ish and
            // overlapping cases in play.
            if pos {
                x.push(vec![a * 0.7 + 0.3, b * 0.7 + 0.3]);
                y.push(1.0);
            } else {
                x.push(vec![a * 0.7, b * 0.7]);
                y.push(-1.0);
            }
        }
        (x, y)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kkt_conditions_hold((x, y) in arb_problem(), c in 0.5f64..50.0, gamma in 0.1f64..5.0) {
        let kernel = Kernel::rbf(gamma);
        let sol = hotspot_svm_solve(&x, &y, kernel, c);

        // Box constraints.
        for &a in &sol.alpha {
            prop_assert!(a >= -1e-9 && a <= c + 1e-6);
        }
        // Equality constraint.
        let s: f64 = sol.alpha.iter().zip(&y).map(|(a, t)| a * t).sum();
        prop_assert!(s.abs() < 1e-6, "sum alpha*y = {}", s);

        // Free support vectors sit on the margin: y f(x) ≈ 1.
        let decision = |q: &[f64]| -> f64 {
            x.iter()
                .zip(&y)
                .zip(&sol.alpha)
                .map(|((xi, yi), ai)| ai * yi * kernel.eval(xi, q))
                .sum::<f64>()
                - sol.rho
        };
        for i in 0..x.len() {
            let a = sol.alpha[i];
            if a > 1e-8 && a < c - 1e-8 {
                let margin = y[i] * decision(&x[i]);
                prop_assert!((margin - 1.0).abs() < 5e-3,
                    "free SV {} has margin {}", i, margin);
            }
        }
    }

    #[test]
    fn separable_data_reaches_full_training_accuracy(seed in 0u64..1000) {
        // Deterministic pseudo-random well-separated clusters.
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64 / 2.0) % 1.0
        };
        for i in 0..20 {
            let (cx, cy, label) = if i % 2 == 0 { (0.0, 0.0, -1.0) } else { (3.0, 3.0, 1.0) };
            x.push(vec![cx + next() * 0.5, cy + next() * 0.5]);
            y.push(label);
        }
        let model = SvmTrainer::new(Kernel::rbf(1.0)).c(100.0).train(&x, &y).unwrap();
        prop_assert_eq!(model.accuracy(&x, &y), 1.0);
    }

    #[test]
    fn prediction_is_deterministic((x, y) in arb_problem()) {
        let model = SvmTrainer::new(Kernel::rbf(1.0)).c(10.0).train(&x, &y).unwrap();
        let q = vec![0.5, 0.5];
        prop_assert_eq!(model.predict(&q), model.predict(&q));
        prop_assert_eq!(model.decision_value(&q), model.decision_value(&q));
    }
}

/// Helper: run the low-level solver with symmetric C (tests the re-exported
/// `SmoParams`/`solve` path used by iterative learning in the core crate).
fn hotspot_svm_solve(
    x: &[Vec<f64>],
    y: &[f64],
    kernel: Kernel,
    c: f64,
) -> hotspot_svm::SmoSolution {
    hotspot_svm::solve(
        x,
        y,
        kernel,
        &SmoParams {
            c_pos: c,
            c_neg: c,
            ..Default::default()
        },
    )
}
