//! Horizontal and vertical tiling of a pattern window.
//!
//! The MTCG construction (Fig. 6) first tiles the core region: the window is
//! cut into *block* tiles (covered by polygons) and *space* tiles. The
//! horizontal tiling cuts at every horizontal polygon edge, producing
//! horizontally maximal tiles; the vertical tiling is its transpose.

use hotspot_geom::{Coord, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a tile is covered by polygons or empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TileKind {
    /// Covered by layout polygons.
    Block,
    /// Empty space.
    Space,
}

impl fmt::Display for TileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileKind::Block => f.write_str("block"),
            TileKind::Space => f.write_str("space"),
        }
    }
}

/// One tile of a tiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tile {
    /// The tile's extent (window coordinates).
    pub rect: Rect,
    /// Block or space.
    pub kind: TileKind,
}

impl Tile {
    /// Number of tile sides lying on the window boundary (0–4).
    pub fn boundary_edges(&self, window: &Rect) -> usize {
        let mut n = 0;
        if self.rect.min().x == window.min().x {
            n += 1;
        }
        if self.rect.max().x == window.max().x {
            n += 1;
        }
        if self.rect.min().y == window.min().y {
            n += 1;
        }
        if self.rect.max().y == window.max().y {
            n += 1;
        }
        n
    }
}

/// Direction of a tiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TilingAxis {
    /// Cut at horizontal edges: tiles are horizontally maximal.
    Horizontal,
    /// Cut at vertical edges: tiles are vertically maximal.
    Vertical,
}

/// A complete tiling of a window into block and space tiles.
///
/// ```
/// use hotspot_geom::Rect;
/// use hotspot_topo::{Tiling, TileKind};
///
/// let window = Rect::from_extents(0, 0, 100, 100);
/// let rects = [Rect::from_extents(40, 40, 60, 60)];
/// let t = Tiling::horizontal(&window, &rects);
/// let blocks = t.tiles_of_kind(TileKind::Block).count();
/// assert_eq!(blocks, 1);
/// // Tiles partition the window exactly.
/// let area: i64 = t.tiles().iter().map(|t| t.rect.area()).sum();
/// assert_eq!(area, window.area());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tiling {
    window: Rect,
    axis: TilingAxis,
    tiles: Vec<Tile>,
}

impl Tiling {
    /// Horizontally tiles `window` around the given polygon rectangles
    /// (clipped to the window).
    pub fn horizontal(window: &Rect, rects: &[Rect]) -> Tiling {
        let tiles = tile_bands(window, rects, false);
        Tiling {
            window: *window,
            axis: TilingAxis::Horizontal,
            tiles,
        }
    }

    /// Vertically tiles `window` (the transpose construction).
    pub fn vertical(window: &Rect, rects: &[Rect]) -> Tiling {
        let tiles = tile_bands(window, rects, true);
        Tiling {
            window: *window,
            axis: TilingAxis::Vertical,
            tiles,
        }
    }

    /// The tiled window.
    pub fn window(&self) -> &Rect {
        &self.window
    }

    /// The tiling direction.
    pub fn axis(&self) -> TilingAxis {
        self.axis
    }

    /// All tiles, bottom-to-top then left-to-right.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Iterator over tiles of one kind.
    pub fn tiles_of_kind(&self, kind: TileKind) -> impl Iterator<Item = &Tile> {
        self.tiles.iter().filter(move |t| t.kind == kind)
    }
}

/// Tiles the window band by band. With `transpose = true`, the roles of the
/// axes swap (vertical tiling).
fn tile_bands(window: &Rect, rects: &[Rect], transpose: bool) -> Vec<Tile> {
    let (win, clipped): (Rect, Vec<Rect>) = {
        let clipped: Vec<Rect> = rects
            .iter()
            .filter_map(|r| r.intersection(window))
            .collect();
        if transpose {
            (
                transpose_rect(window),
                clipped.iter().map(transpose_rect).collect(),
            )
        } else {
            (*window, clipped)
        }
    };

    // Band boundaries at every horizontal edge.
    let mut ys: Vec<Coord> = vec![win.min().y, win.max().y];
    for r in &clipped {
        ys.push(r.min().y);
        ys.push(r.max().y);
    }
    ys.sort_unstable();
    ys.dedup();

    let mut tiles: Vec<Tile> = Vec::new();
    for band in ys.windows(2) {
        let (y0, y1) = (band[0], band[1]);
        if y0 >= y1 {
            continue;
        }
        // Covered x-intervals within this band (union of rect projections).
        let mut xs: Vec<(Coord, Coord)> = clipped
            .iter()
            .filter(|r| r.min().y <= y0 && r.max().y >= y1)
            .map(|r| (r.min().x, r.max().x))
            .collect();
        xs.sort_unstable();
        let mut merged: Vec<(Coord, Coord)> = Vec::new();
        for (a, b) in xs {
            if let Some(last) = merged.last_mut() {
                if a <= last.1 {
                    last.1 = last.1.max(b);
                    continue;
                }
            }
            merged.push((a, b));
        }
        // Emit alternating space/block tiles across the band.
        let mut cursor = win.min().x;
        for (a, b) in &merged {
            if *a > cursor {
                tiles.push(Tile {
                    rect: Rect::from_extents(cursor, y0, *a, y1),
                    kind: TileKind::Space,
                });
            }
            tiles.push(Tile {
                rect: Rect::from_extents(*a, y0, *b, y1),
                kind: TileKind::Block,
            });
            cursor = *b;
        }
        if cursor < win.max().x {
            tiles.push(Tile {
                rect: Rect::from_extents(cursor, y0, win.max().x, y1),
                kind: TileKind::Space,
            });
        }
    }

    // Merge vertically adjacent tiles with identical x-range and kind, so
    // tiles are maximal in the band direction.
    let merged = merge_band_runs(tiles);

    if transpose {
        merged
            .into_iter()
            .map(|t| Tile {
                rect: transpose_rect(&t.rect),
                kind: t.kind,
            })
            .collect()
    } else {
        merged
    }
}

fn transpose_rect(r: &Rect) -> Rect {
    Rect::new(r.min().transpose(), r.max().transpose())
}

fn merge_band_runs(mut tiles: Vec<Tile>) -> Vec<Tile> {
    tiles.sort_by_key(|t| (t.rect.min().x, t.rect.max().x, t.rect.min().y));
    let mut out: Vec<Tile> = Vec::with_capacity(tiles.len());
    for t in tiles {
        if let Some(last) = out.last_mut() {
            if last.kind == t.kind
                && last.rect.min().x == t.rect.min().x
                && last.rect.max().x == t.rect.max().x
                && last.rect.max().y == t.rect.min().y
            {
                last.rect = Rect::new(last.rect.min(), t.rect.max());
                continue;
            }
        }
        out.push(t);
    }
    // Restore reading order: bottom-to-top, then left-to-right.
    out.sort_by_key(|t| (t.rect.min().y, t.rect.min().x));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Rect {
        Rect::from_extents(0, 0, 100, 100)
    }

    fn tile_area(t: &Tiling) -> i64 {
        t.tiles().iter().map(|t| t.rect.area()).sum()
    }

    #[test]
    fn empty_window_is_one_space_tile() {
        let t = Tiling::horizontal(&window(), &[]);
        assert_eq!(t.tiles().len(), 1);
        assert_eq!(t.tiles()[0].kind, TileKind::Space);
        assert_eq!(t.tiles()[0].rect, window());
    }

    #[test]
    fn full_window_is_one_block_tile() {
        let t = Tiling::horizontal(&window(), &[window()]);
        assert_eq!(t.tiles().len(), 1);
        assert_eq!(t.tiles()[0].kind, TileKind::Block);
    }

    #[test]
    fn centered_square_gives_nine_region_tiling() {
        // Horizontal tiling of a centred square: 3 bands; middle band has
        // space | block | space; outer bands merge into full-width space.
        let t = Tiling::horizontal(&window(), &[Rect::from_extents(40, 40, 60, 60)]);
        assert_eq!(tile_area(&t), window().area());
        assert_eq!(t.tiles_of_kind(TileKind::Block).count(), 1);
        assert_eq!(t.tiles_of_kind(TileKind::Space).count(), 4);
    }

    #[test]
    fn tiles_partition_without_overlap() {
        let rects = [
            Rect::from_extents(0, 0, 30, 100),
            Rect::from_extents(50, 20, 80, 70),
            Rect::from_extents(90, 0, 100, 10),
        ];
        for t in [
            Tiling::horizontal(&window(), &rects),
            Tiling::vertical(&window(), &rects),
        ] {
            assert_eq!(tile_area(&t), window().area());
            let ts = t.tiles();
            for i in 0..ts.len() {
                for j in (i + 1)..ts.len() {
                    assert!(
                        !ts[i].rect.overlaps(&ts[j].rect),
                        "{:?} overlaps {:?}",
                        ts[i],
                        ts[j]
                    );
                }
            }
            // Block area equals input polygon area (inputs are disjoint).
            let block_area: i64 = t
                .tiles_of_kind(TileKind::Block)
                .map(|t| t.rect.area())
                .sum();
            let input_area: i64 = rects.iter().map(|r| r.area()).sum();
            assert_eq!(block_area, input_area);
        }
    }

    #[test]
    fn horizontal_tiles_are_horizontally_maximal() {
        // Space left and right of a block must extend to the window edges.
        let t = Tiling::horizontal(&window(), &[Rect::from_extents(40, 40, 60, 60)]);
        for tile in t.tiles_of_kind(TileKind::Space) {
            let r = tile.rect;
            // Every space tile in the middle band touches the block or edge;
            // tiles in outer bands span the full width.
            if r.min().y < 40 || r.min().y >= 60 {
                assert_eq!(r.width(), 100, "outer space band must be full width");
            }
        }
    }

    #[test]
    fn vertical_is_transpose_of_horizontal() {
        let rects = [
            Rect::from_extents(20, 0, 40, 100),
            Rect::from_extents(60, 30, 90, 80),
        ];
        let h = Tiling::horizontal(&window(), &rects);
        let trects: Vec<Rect> = rects.iter().map(transpose_rect).collect();
        let v = Tiling::vertical(&window(), &trects);
        // Transposing the vertical tiling of transposed input gives the
        // horizontal tiling.
        let mut vt: Vec<Tile> = v
            .tiles()
            .iter()
            .map(|t| Tile {
                rect: transpose_rect(&t.rect),
                kind: t.kind,
            })
            .collect();
        vt.sort_by_key(|t| (t.rect.min().y, t.rect.min().x));
        let mut ht = h.tiles().to_vec();
        ht.sort_by_key(|t| (t.rect.min().y, t.rect.min().x));
        assert_eq!(vt, ht);
    }

    #[test]
    fn overlapping_input_rects_merge() {
        let rects = [
            Rect::from_extents(10, 10, 50, 50),
            Rect::from_extents(30, 10, 70, 50),
        ];
        let t = Tiling::horizontal(&window(), &rects);
        assert_eq!(t.tiles_of_kind(TileKind::Block).count(), 1);
        let block = t.tiles_of_kind(TileKind::Block).next().unwrap();
        assert_eq!(block.rect, Rect::from_extents(10, 10, 70, 50));
    }

    #[test]
    fn boundary_edges_counted() {
        let w = window();
        let corner = Tile {
            rect: Rect::from_extents(0, 0, 10, 10),
            kind: TileKind::Block,
        };
        assert_eq!(corner.boundary_edges(&w), 2);
        let inner = Tile {
            rect: Rect::from_extents(40, 40, 60, 60),
            kind: TileKind::Block,
        };
        assert_eq!(inner.boundary_edges(&w), 0);
        let full = Tile {
            rect: w,
            kind: TileKind::Space,
        };
        assert_eq!(full.boundary_edges(&w), 4);
    }

    #[test]
    fn rects_outside_window_ignored() {
        let t = Tiling::horizontal(&window(), &[Rect::from_extents(200, 200, 300, 300)]);
        assert_eq!(t.tiles_of_kind(TileKind::Block).count(), 0);
    }
}
