//! Critical feature extraction (Section III-C, Figs. 7–8).
//!
//! From the horizontally tiled `Ch` graph and the vertically tiled `Cv`
//! graph, four kinds of topological features are extracted and recorded as
//! **rule rectangles** (width, height, offset from the window's bottom-left
//! reference point, boundary mark):
//!
//! 1. **Internal** — dimensions of a block tile between spaces,
//! 2. **External** — a space tile between exactly two block tiles,
//! 3. **Diagonal** — the corner region between diagonally adjacent tiles,
//! 4. **Segment** — a space tile with 2–3 window-boundary edges.
//!
//! Five **nontopological** features follow Fig. 7(e): corner count, touch
//! points, minimum internal distance, minimum external distance, and
//! polygon density.

use crate::mtcg::{diagonal_gap, EdgeKind, Mtcg};
use crate::tiling::{TileKind, Tiling};
use hotspot_geom::{CornerSummary, Orientation, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four topological feature kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Width/height of an isolated block tile.
    Internal,
    /// Spacing between two adjacent block tiles.
    External,
    /// Corner region between diagonally adjacent tiles.
    Diagonal,
    /// Space tile hugging the window boundary.
    Segment,
}

impl FeatureKind {
    fn code(self) -> f64 {
        match self {
            FeatureKind::Internal => 1.0,
            FeatureKind::External => 2.0,
            FeatureKind::Diagonal => 3.0,
            FeatureKind::Segment => 4.0,
        }
    }
}

impl fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FeatureKind::Internal => "internal",
            FeatureKind::External => "external",
            FeatureKind::Diagonal => "diagonal",
            FeatureKind::Segment => "segment",
        };
        f.write_str(s)
    }
}

/// One extracted topological feature, recorded relative to the window's
/// bottom-left reference point (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RuleRect {
    /// Which extraction rule produced this feature.
    pub kind: FeatureKind,
    /// Offset of the rectangle's bottom-left corner from the reference
    /// point (`d_x` in the paper).
    pub dx: i64,
    /// Vertical offset (`d_y`).
    pub dy: i64,
    /// Rectangle width.
    pub width: i64,
    /// Rectangle height.
    pub height: i64,
    /// Special mark for features touching the window boundary.
    pub boundary: bool,
}

impl RuleRect {
    fn from_rect(kind: FeatureKind, window: &Rect, rect: &Rect) -> RuleRect {
        let local = rect.translate(-window.min());
        let boundary = rect.min().x == window.min().x
            || rect.min().y == window.min().y
            || rect.max().x == window.max().x
            || rect.max().y == window.max().y;
        RuleRect {
            kind,
            dx: local.min().x,
            dy: local.min().y,
            width: local.width(),
            height: local.height(),
            boundary,
        }
    }
}

/// Configuration of feature extraction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Skip internal/external features with more than this many window-
    /// boundary edges (the paper keeps "at most one edge touching").
    pub max_boundary_edges: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            max_boundary_edges: 1,
        }
    }
}

/// The critical features of one pattern window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalFeatures {
    /// The extracted rule rectangles, canonically ordered.
    pub rules: Vec<RuleRect>,
    /// Nontopological feature 1: convex + concave corner count.
    pub corner_count: usize,
    /// Nontopological feature 2: number of touched points.
    pub touch_points: usize,
    /// Nontopological feature 3: minimum internally facing edge distance
    /// (window side when no polygon exists).
    pub min_internal: i64,
    /// Nontopological feature 4: minimum externally facing edge distance
    /// (window side when no spacing exists).
    pub min_external: i64,
    /// Nontopological feature 5: polygon density in `[0, 1]`.
    pub density: f64,
}

impl CriticalFeatures {
    /// Extracts all features of `rects` within `window`.
    pub fn extract(window: &Rect, rects: &[Rect], config: &FeatureConfig) -> CriticalFeatures {
        let horizontal = Tiling::horizontal(window, rects);
        let vertical = Tiling::vertical(window, rects);
        let ch = Mtcg::build(&horizontal);
        let cv = Mtcg::build(&vertical);

        let mut rules: Vec<RuleRect> = Vec::new();

        // Internal features: block tiles between spaces, from both tilings.
        for (graph, kind) in [(&ch, EdgeKind::Horizontal), (&cv, EdgeKind::Vertical)] {
            for idx in graph.blocks_between_spaces(kind) {
                let tile = &graph.tiles()[idx];
                if tile.boundary_edges(window) <= config.max_boundary_edges {
                    rules.push(RuleRect::from_rect(
                        FeatureKind::Internal,
                        window,
                        &tile.rect,
                    ));
                }
            }
        }

        // External features: spaces between exactly two blocks.
        for (graph, kind) in [(&ch, EdgeKind::Horizontal), (&cv, EdgeKind::Vertical)] {
            for idx in graph.spaces_between_two_blocks(kind) {
                let tile = &graph.tiles()[idx];
                if tile.boundary_edges(window) <= config.max_boundary_edges {
                    rules.push(RuleRect::from_rect(
                        FeatureKind::External,
                        window,
                        &tile.rect,
                    ));
                }
            }
        }

        // Diagonal features: corner regions of diagonal edges in the
        // horizontally tiled graph.
        for e in ch.edges().iter().filter(|e| e.kind == EdgeKind::Diagonal) {
            let a = &ch.tiles()[e.from];
            let b = &ch.tiles()[e.to];
            if let Some(gap) = diagonal_gap(&a.rect, &b.rect) {
                rules.push(RuleRect::from_rect(FeatureKind::Diagonal, window, &gap));
            }
        }

        // Segment features: boundary-hugging space tiles (2–3 boundary
        // edges) from the horizontal tiling.
        for tile in horizontal.tiles_of_kind(TileKind::Space) {
            let edges = tile.boundary_edges(window);
            if (2..=3).contains(&edges) {
                rules.push(RuleRect::from_rect(
                    FeatureKind::Segment,
                    window,
                    &tile.rect,
                ));
            }
        }

        rules.sort_by_key(|r| (r.kind, r.dx, r.dy, r.width, r.height));
        rules.dedup();

        // Nontopological features.
        let clipped: Vec<Rect> = rects
            .iter()
            .filter_map(|r| r.intersection(window))
            .collect();
        let corners = CornerSummary::of(&clipped);
        let side = window.width().max(window.height());
        let min_internal = horizontal
            .tiles_of_kind(TileKind::Block)
            .map(|t| t.rect.width())
            .chain(
                vertical
                    .tiles_of_kind(TileKind::Block)
                    .map(|t| t.rect.height()),
            )
            .min()
            .unwrap_or(side);
        let min_external = ch
            .spaces_between_two_blocks(EdgeKind::Horizontal)
            .iter()
            .map(|&i| ch.tiles()[i].rect.width())
            .chain(
                cv.spaces_between_two_blocks(EdgeKind::Vertical)
                    .iter()
                    .map(|&i| cv.tiles()[i].rect.height()),
            )
            .min()
            .unwrap_or(side);
        let block_area: i64 = horizontal
            .tiles_of_kind(TileKind::Block)
            .map(|t| t.rect.area())
            .sum();
        let density = block_area as f64 / window.area() as f64;

        CriticalFeatures {
            rules,
            corner_count: corners.total_corners(),
            touch_points: corners.touch_points,
            min_internal,
            min_external,
            density,
        }
    }

    /// Extracts features of the pattern transformed by `orientation`
    /// (the paper generates eight feature sets per training pattern).
    pub fn extract_oriented(
        window: &Rect,
        rects: &[Rect],
        orientation: Orientation,
        config: &FeatureConfig,
    ) -> CriticalFeatures {
        let local: Vec<Rect> = rects
            .iter()
            .filter_map(|r| r.intersection(window))
            .map(|r| r.translate(-window.min()))
            .collect();
        let (w, h) = (window.width(), window.height());
        let oriented = orientation.apply_rects(&local, w, h);
        let (tw, th) = orientation.window(w, h);
        let twin = Rect::from_extents(0, 0, tw, th);
        CriticalFeatures::extract(&twin, &oriented, config)
    }

    /// Flattens the features into an SVM input vector:
    /// `[kind, dx, dy, w, h, boundary]` per rule rectangle (canonical
    /// order), followed by the five nontopological features.
    pub fn to_vector(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.rules.len() * 6 + 5);
        for r in &self.rules {
            v.push(r.kind.code());
            v.push(r.dx as f64);
            v.push(r.dy as f64);
            v.push(r.width as f64);
            v.push(r.height as f64);
            v.push(if r.boundary { 1.0 } else { 0.0 });
        }
        v.push(self.corner_count as f64);
        v.push(self.touch_points as f64);
        v.push(self.min_internal as f64);
        v.push(self.min_external as f64);
        v.push(self.density);
        v
    }

    /// Flattens to exactly `len` values: truncating or zero-padding the rule
    /// section while always keeping the five nontopological features at the
    /// tail. Used when evaluating a clip against a kernel trained on a
    /// cluster with a different rule count.
    ///
    /// # Panics
    ///
    /// Panics if `len < 5`.
    pub fn to_vector_padded(&self, len: usize) -> Vec<f64> {
        assert!(len >= 5, "padded vector must hold the nontopological tail");
        let full = self.to_vector();
        let rules_len = len - 5;
        let mut v = Vec::with_capacity(len);
        let have_rules = full.len() - 5;
        v.extend_from_slice(&full[..rules_len.min(have_rules)]);
        v.resize(rules_len, 0.0);
        v.extend_from_slice(&full[have_rules..]);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Rect {
        Rect::from_extents(0, 0, 120, 120)
    }

    fn cfg() -> FeatureConfig {
        FeatureConfig::default()
    }

    #[test]
    fn empty_window_has_no_rules() {
        let f = CriticalFeatures::extract(&window(), &[], &cfg());
        // The single full-window space tile has 4 boundary edges: no rules.
        assert!(f.rules.is_empty());
        assert_eq!(f.corner_count, 0);
        assert_eq!(f.density, 0.0);
        assert_eq!(f.min_internal, 120);
    }

    #[test]
    fn isolated_block_yields_internal_feature() {
        let f = CriticalFeatures::extract(&window(), &[Rect::from_extents(40, 40, 70, 60)], &cfg());
        let internals: Vec<_> = f
            .rules
            .iter()
            .filter(|r| r.kind == FeatureKind::Internal)
            .collect();
        assert!(!internals.is_empty());
        assert!(internals.iter().any(|r| r.width == 30 && r.height == 20));
        assert_eq!(f.corner_count, 4);
        assert_eq!(f.min_internal, 20);
    }

    #[test]
    fn two_bars_yield_external_spacing() {
        let rects = [
            Rect::from_extents(10, 40, 50, 60),
            Rect::from_extents(70, 40, 110, 60),
        ];
        let f = CriticalFeatures::extract(&window(), &rects, &cfg());
        let ext: Vec<_> = f
            .rules
            .iter()
            .filter(|r| r.kind == FeatureKind::External)
            .collect();
        assert!(ext.iter().any(|r| r.width == 20), "spacing of 20 expected");
        assert_eq!(f.min_external, 20);
    }

    #[test]
    fn diagonal_blocks_yield_diagonal_feature() {
        let rects = [
            Rect::from_extents(10, 10, 40, 40),
            Rect::from_extents(70, 70, 110, 110),
        ];
        let f = CriticalFeatures::extract(&window(), &rects, &cfg());
        let diag: Vec<_> = f
            .rules
            .iter()
            .filter(|r| r.kind == FeatureKind::Diagonal)
            .collect();
        assert!(!diag.is_empty());
        assert!(diag.iter().any(|r| r.width == 30 && r.height == 30));
    }

    #[test]
    fn boundary_spaces_yield_segment_features() {
        // A vertical bar through the middle leaves two boundary-hugging
        // space tiles with 3 boundary edges each.
        let f = CriticalFeatures::extract(&window(), &[Rect::from_extents(50, 0, 70, 120)], &cfg());
        let segs: Vec<_> = f
            .rules
            .iter()
            .filter(|r| r.kind == FeatureKind::Segment)
            .collect();
        assert_eq!(segs.len(), 2);
        assert!(segs.iter().all(|r| r.boundary));
    }

    #[test]
    fn same_topology_same_vector_length() {
        // Two patterns with identical topology but different dimensions
        // must produce equally long feature vectors (the property the paper
        // relies on for per-cluster kernels).
        let a = CriticalFeatures::extract(&window(), &[Rect::from_extents(40, 40, 70, 60)], &cfg());
        let b = CriticalFeatures::extract(&window(), &[Rect::from_extents(30, 50, 80, 70)], &cfg());
        assert_eq!(a.to_vector().len(), b.to_vector().len());
    }

    #[test]
    fn vector_layout() {
        let f = CriticalFeatures::extract(&window(), &[Rect::from_extents(40, 40, 70, 60)], &cfg());
        let v = f.to_vector();
        assert_eq!(v.len(), f.rules.len() * 6 + 5);
        // Tail is the nontopological block.
        let n = v.len();
        assert_eq!(v[n - 5], f.corner_count as f64);
        assert_eq!(v[n - 1], f.density);
    }

    #[test]
    fn padded_vector_preserves_nontopological_tail() {
        let f = CriticalFeatures::extract(&window(), &[Rect::from_extents(40, 40, 70, 60)], &cfg());
        let full = f.to_vector();
        // Pad up.
        let padded = f.to_vector_padded(full.len() + 12);
        assert_eq!(padded.len(), full.len() + 12);
        assert_eq!(&padded[padded.len() - 5..], &full[full.len() - 5..]);
        // Truncate down.
        let truncated = f.to_vector_padded(11);
        assert_eq!(truncated.len(), 11);
        assert_eq!(&truncated[6..], &full[full.len() - 5..]);
    }

    #[test]
    fn density_feature_is_exact() {
        let f = CriticalFeatures::extract(&window(), &[Rect::from_extents(0, 0, 60, 120)], &cfg());
        assert!((f.density - 0.5).abs() < 1e-12);
    }

    #[test]
    fn touching_pair_counts_touch_point() {
        let rects = [
            Rect::from_extents(10, 10, 40, 40),
            Rect::from_extents(40, 40, 80, 80),
        ];
        let f = CriticalFeatures::extract(&window(), &rects, &cfg());
        assert_eq!(f.touch_points, 1);
    }

    #[test]
    fn oriented_extraction_preserves_feature_count() {
        let rects = [
            Rect::from_extents(0, 0, 50, 20),
            Rect::from_extents(70, 40, 110, 60),
        ];
        let base = CriticalFeatures::extract(&window(), &rects, &cfg());
        for o in hotspot_geom::D8 {
            let f = CriticalFeatures::extract_oriented(&window(), &rects, o, &cfg());
            assert_eq!(
                f.rules.len(),
                base.rules.len(),
                "rule count changed under {o}"
            );
            assert_eq!(f.corner_count, base.corner_count, "{o}");
            assert!((f.density - base.density).abs() < 1e-12, "{o}");
        }
    }

    #[test]
    fn mountain_pattern_extracts_multiple_feature_kinds() {
        // A "mountain" in the spirit of Fig. 8: a wide base with a peak,
        // flanked by two towers.
        let rects = [
            Rect::from_extents(0, 0, 120, 20),    // base
            Rect::from_extents(45, 20, 75, 60),   // peak
            Rect::from_extents(5, 40, 25, 110),   // left tower
            Rect::from_extents(95, 40, 115, 110), // right tower
        ];
        let f = CriticalFeatures::extract(&window(), &rects, &cfg());
        let kinds: std::collections::BTreeSet<_> = f.rules.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&FeatureKind::Internal), "kinds: {kinds:?}");
        assert!(kinds.contains(&FeatureKind::External), "kinds: {kinds:?}");
        assert!(
            f.rules.len() >= 5,
            "expected several features, got {}",
            f.rules.len()
        );
    }
}
