//! Multilayer hotspot feature extraction (Section IV-A).
//!
//! For a pattern with `m` metal layers, the paper extracts `m` feature sets
//! (one per layer) plus `m − 1` sets from the overlapped polygons of
//! adjacent layers; only diagonal and internal features are taken from the
//! overlaps.

use crate::features::{CriticalFeatures, FeatureConfig, FeatureKind};
use hotspot_geom::Rect;
use serde::{Deserialize, Serialize};

/// Feature sets of a multilayer pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultilayerFeatures {
    /// Per-layer feature sets, in input layer order.
    pub per_layer: Vec<CriticalFeatures>,
    /// Feature sets of the overlapped polygons of each adjacent layer pair
    /// (internal and diagonal rules only).
    pub overlaps: Vec<CriticalFeatures>,
}

impl MultilayerFeatures {
    /// Extracts `layers.len()` per-layer sets plus `layers.len() − 1`
    /// overlap sets (Fig. 13).
    pub fn extract(
        window: &Rect,
        layers: &[Vec<Rect>],
        config: &FeatureConfig,
    ) -> MultilayerFeatures {
        let per_layer = layers
            .iter()
            .map(|rects| CriticalFeatures::extract(window, rects, config))
            .collect();
        let overlaps = layers
            .windows(2)
            .map(|pair| {
                let common = intersect_layers(&pair[0], &pair[1]);
                let mut f = CriticalFeatures::extract(window, &common, config);
                // Only diagonal and internal features are taken from overlaps.
                f.rules
                    .retain(|r| matches!(r.kind, FeatureKind::Internal | FeatureKind::Diagonal));
                f
            })
            .collect();
        MultilayerFeatures {
            per_layer,
            overlaps,
        }
    }

    /// Flattens all sets into one SVM vector (layer sets in order, then
    /// overlap sets).
    pub fn to_vector(&self) -> Vec<f64> {
        let mut v = Vec::new();
        for f in self.per_layer.iter().chain(&self.overlaps) {
            v.extend(f.to_vector());
        }
        v
    }
}

/// Pairwise intersections of two layers' rectangles.
fn intersect_layers(a: &[Rect], b: &[Rect]) -> Vec<Rect> {
    let mut out = Vec::new();
    for ra in a {
        for rb in b {
            if let Some(i) = ra.intersection(rb) {
                out.push(i);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Rect {
        Rect::from_extents(0, 0, 120, 120)
    }

    #[test]
    fn two_layers_give_three_sets() {
        let m1 = vec![Rect::from_extents(0, 40, 120, 60)];
        let m2 = vec![Rect::from_extents(50, 0, 70, 120)];
        let f = MultilayerFeatures::extract(&window(), &[m1, m2], &FeatureConfig::default());
        assert_eq!(f.per_layer.len(), 2);
        assert_eq!(f.overlaps.len(), 1);
    }

    #[test]
    fn overlap_set_covers_via_region() {
        let m1 = vec![Rect::from_extents(0, 40, 120, 60)];
        let m2 = vec![Rect::from_extents(50, 0, 70, 120)];
        let f = MultilayerFeatures::extract(&window(), &[m1, m2], &FeatureConfig::default());
        // The overlap is the 20×20 via region.
        let overlap = &f.overlaps[0];
        assert!((overlap.density - (20.0 * 20.0) / (120.0 * 120.0)).abs() < 1e-12);
        // Only internal/diagonal rules survive.
        assert!(overlap
            .rules
            .iter()
            .all(|r| matches!(r.kind, FeatureKind::Internal | FeatureKind::Diagonal)));
    }

    #[test]
    fn disjoint_layers_have_empty_overlap() {
        let m1 = vec![Rect::from_extents(0, 0, 50, 50)];
        let m2 = vec![Rect::from_extents(60, 60, 110, 110)];
        let f = MultilayerFeatures::extract(&window(), &[m1, m2], &FeatureConfig::default());
        assert_eq!(f.overlaps[0].density, 0.0);
    }

    #[test]
    fn vector_concatenates_all_sets() {
        let m1 = vec![Rect::from_extents(0, 40, 120, 60)];
        let m2 = vec![Rect::from_extents(50, 0, 70, 120)];
        let f = MultilayerFeatures::extract(
            &window(),
            &[m1.clone(), m2.clone()],
            &FeatureConfig::default(),
        );
        let expected: usize = f
            .per_layer
            .iter()
            .chain(&f.overlaps)
            .map(|s| s.to_vector().len())
            .sum();
        assert_eq!(f.to_vector().len(), expected);
    }

    #[test]
    fn single_layer_degenerates_to_plain_extraction() {
        let m1 = vec![Rect::from_extents(10, 10, 60, 30)];
        let f = MultilayerFeatures::extract(
            &window(),
            std::slice::from_ref(&m1),
            &FeatureConfig::default(),
        );
        assert_eq!(f.per_layer.len(), 1);
        assert!(f.overlaps.is_empty());
        let plain = CriticalFeatures::extract(&window(), &m1, &FeatureConfig::default());
        assert_eq!(f.per_layer[0], plain);
    }
}
