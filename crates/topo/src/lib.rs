//! Topological classification and critical feature extraction.
//!
//! Implements Sections III-B and III-C of the paper:
//!
//! - [`dirstring`]: the four **directional strings** that encode a core
//!   pattern's topology, composite-string matching (Theorem 1), and a
//!   canonical [`TopoSignature`] for hash-based clustering,
//! - [`cluster`]: **density-based classification** — incremental clustering
//!   under the eq. (1) distance with the eq. (2) radius,
//! - [`tiling`]: horizontal/vertical dissection of a pattern window into
//!   block and space tiles,
//! - [`mtcg`]: the **modified transitive closure graph** (Fig. 6) built from
//!   the tilings by a sweep-line pass,
//! - [`features`]: **critical feature extraction** — internal, external,
//!   diagonal, and segment rule rectangles plus the five nontopological
//!   features (Figs. 7–8),
//! - [`multilayer`] and [`patterning`]: the Section IV extensions to
//!   multilayer patterns and double patterning,
//! - [`route`]: the **compiled admission router** — all kernel centroids ×
//!   8 D8 orientations packed into one matrix, queried by an
//!   allocation-free fused pass per clip.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cluster;
pub mod dirstring;
pub mod features;
pub mod mtcg;
pub mod multilayer;
pub mod patterning;
pub mod route;
pub mod tiling;

pub use cluster::{Cluster, ClusterParams, DensityClustering};
pub use dirstring::{DirectionalStrings, TopoSignature};
pub use features::{CriticalFeatures, FeatureConfig, FeatureKind, RuleRect};
pub use mtcg::{EdgeKind, Mtcg};
pub use route::{orientation_expansions, Admission, CentroidRouter, RouteStats};
pub use tiling::{Tile, TileKind, Tiling};
