//! Density-based classification (Section III-B2).
//!
//! After string-based classification, patterns sharing a topology may still
//! differ geometrically. Each pattern is pixelated into a density grid; the
//! distance between patterns is eq. (1) (orientation-minimised L1), and the
//! cluster radius is eq. (2):
//!
//! ```text
//! R = max(R₀, max_{i,j} ρ(pᵢ, pⱼ) / K)
//! ```
//!
//! Clustering is incremental: a pattern joins the first cluster whose
//! centroid is within `R`, recalculating that centroid, and otherwise seeds
//! a new cluster.

use hotspot_geom::{DensityGrid, RasterMode, Rect};
use serde::{Deserialize, Serialize};

/// Parameters of density-based classification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterParams {
    /// User-defined radius floor `R₀`.
    pub radius_floor: f64,
    /// Expected cluster count `K` (the paper uses 10).
    pub expected_count: usize,
    /// Density-grid resolution (pixels per side).
    pub grid: usize,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            radius_floor: 0.5,
            expected_count: 10,
            grid: 8,
        }
    }
}

/// One density cluster: member indices into the input slice, the running
/// centroid grid, and the medoid (member closest to the centroid).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Indices of member patterns in the order they were added.
    pub members: Vec<usize>,
    /// Mean density grid of the members.
    pub centroid: DensityGrid,
}

impl Cluster {
    /// Index (into the original input) of the member whose grid is closest
    /// to the centroid — the cluster representative the paper selects when
    /// downsampling nonhotspots.
    pub fn medoid(&self, grids: &[DensityGrid]) -> usize {
        // One scratch grid shared across the member loop (eq. (1) would
        // otherwise allocate eight grids per member).
        let mut scratch = DensityGrid::from_cells(0, 0, Vec::new());
        let mut best: Option<(usize, f64)> = None;
        for &m in &self.members {
            let d = self
                .centroid
                .distance_with(&grids[m], &mut scratch)
                .distance;
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((m, d));
            }
        }
        best.expect("clusters are never empty").0
    }
}

/// Runs density-based classification over patterns given as rect sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityClustering {
    /// The radius actually used (after applying eq. (2)).
    pub radius: f64,
    /// The clusters, in creation order.
    pub clusters: Vec<Cluster>,
    /// The density grid of every input pattern.
    pub grids: Vec<DensityGrid>,
}

impl DensityClustering {
    /// Clusters `patterns` (each a rect set inside `window`).
    ///
    /// Returns an empty clustering for no patterns.
    pub fn run(window: &Rect, patterns: &[Vec<Rect>], params: &ClusterParams) -> Self {
        Self::run_with_mode(window, patterns, params, RasterMode::default())
    }

    /// [`DensityClustering::run`] with an explicit rasterisation mode for
    /// grid construction. Both modes yield bit-identical grids for disjoint
    /// rects, so the clustering itself is mode-independent; the toggle only
    /// selects the rasterisation cost model.
    pub fn run_with_mode(
        window: &Rect,
        patterns: &[Vec<Rect>],
        params: &ClusterParams,
        mode: RasterMode,
    ) -> Self {
        let grids: Vec<DensityGrid> = patterns
            .iter()
            .map(|rects| {
                DensityGrid::from_rects_mode(window, rects, params.grid, params.grid, mode)
            })
            .collect();
        Self::run_on_grids(grids, params)
    }

    /// Clusters precomputed density grids (all must share dimensions).
    pub fn run_on_grids(grids: Vec<DensityGrid>, params: &ClusterParams) -> Self {
        if grids.is_empty() {
            return DensityClustering {
                radius: params.radius_floor,
                clusters: Vec::new(),
                grids,
            };
        }

        // Eq. (2): R = max(R0, max pairwise distance / K). One scratch grid
        // serves every orientation loop in the quadratic pass and the
        // assignment pass below.
        let mut scratch = DensityGrid::from_cells(0, 0, Vec::new());
        let mut max_pair = 0.0f64;
        for i in 0..grids.len() {
            for j in (i + 1)..grids.len() {
                let d = grids[i].distance_with(&grids[j], &mut scratch).distance;
                if d > max_pair {
                    max_pair = d;
                }
            }
        }
        let k = params.expected_count.max(1) as f64;
        let radius = params.radius_floor.max(max_pair / k);

        let mut clusters: Vec<Cluster> = Vec::new();
        for (idx, grid) in grids.iter().enumerate() {
            let mut joined = false;
            for cluster in &mut clusters {
                if cluster.centroid.distance_with(grid, &mut scratch).distance <= radius {
                    // Recalculate the centroid as the running mean.
                    let n = cluster.members.len();
                    cluster.centroid.fold_mean(grid, n);
                    cluster.members.push(idx);
                    joined = true;
                    break;
                }
            }
            if !joined {
                clusters.push(Cluster {
                    members: vec![idx],
                    centroid: grid.clone(),
                });
            }
        }

        DensityClustering {
            radius,
            clusters,
            grids,
        }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` when no patterns were clustered.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The cluster index containing pattern `idx`, if any.
    pub fn cluster_of(&self, idx: usize) -> Option<usize> {
        self.clusters.iter().position(|c| c.members.contains(&idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Rect {
        Rect::from_extents(0, 0, 100, 100)
    }

    fn params() -> ClusterParams {
        ClusterParams {
            radius_floor: 0.5,
            expected_count: 10,
            grid: 6,
        }
    }

    #[test]
    fn empty_input() {
        let c = DensityClustering::run(&window(), &[], &params());
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn identical_patterns_form_one_cluster() {
        let p = vec![Rect::from_extents(0, 0, 50, 100)];
        let patterns = vec![p.clone(), p.clone(), p];
        let c = DensityClustering::run(&window(), &patterns, &params());
        assert_eq!(c.len(), 1);
        assert_eq!(c.clusters[0].members, vec![0, 1, 2]);
    }

    #[test]
    fn distinct_patterns_split() {
        let patterns = vec![
            vec![Rect::from_extents(0, 0, 20, 20)], // sparse corner
            vec![window()],                         // full coverage
        ];
        let c = DensityClustering::run(&window(), &patterns, &params());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn rotated_copies_cluster_together() {
        // Eq. (1) minimises over D8, so rotations are distance 0.
        let base = vec![
            Rect::from_extents(0, 0, 30, 100),
            Rect::from_extents(70, 0, 100, 100),
        ];
        let rotated: Vec<Rect> = hotspot_geom::Orientation::R90.apply_rects(&base, 100, 100);
        let c = DensityClustering::run(&window(), &[base, rotated], &params());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn radius_respects_floor_and_eq2() {
        let patterns = vec![vec![Rect::from_extents(0, 0, 20, 20)], vec![window()]];
        let p = ClusterParams {
            radius_floor: 0.1,
            expected_count: 2,
            grid: 6,
        };
        let c = DensityClustering::run(&window(), &patterns, &p);
        let d = c.grids[0].distance(&c.grids[1]).distance;
        assert!((c.radius - d / 2.0).abs() < 1e-12, "eq. (2) radius");

        let p_floor = ClusterParams {
            radius_floor: 1000.0,
            ..p
        };
        let c2 = DensityClustering::run(&window(), &patterns, &p_floor);
        assert_eq!(c2.radius, 1000.0);
        // A huge radius collapses everything into one cluster.
        assert_eq!(c2.len(), 1);
    }

    #[test]
    fn medoid_is_closest_to_centroid() {
        let patterns = vec![
            vec![Rect::from_extents(0, 0, 50, 100)],
            vec![Rect::from_extents(0, 0, 52, 100)],
            vec![Rect::from_extents(0, 0, 80, 100)],
        ];
        let p = ClusterParams {
            radius_floor: 100.0, // force one cluster
            ..params()
        };
        let c = DensityClustering::run(&window(), &patterns, &p);
        assert_eq!(c.len(), 1);
        let m = c.clusters[0].medoid(&c.grids);
        // The middle pattern is nearest the mean of the three.
        assert_eq!(m, 1);
    }

    #[test]
    fn cluster_of_finds_membership() {
        let patterns = vec![vec![Rect::from_extents(0, 0, 20, 20)], vec![window()]];
        let c = DensityClustering::run(&window(), &patterns, &params());
        assert_eq!(c.cluster_of(0), Some(0));
        assert_eq!(c.cluster_of(1), Some(1));
        assert_eq!(c.cluster_of(99), None);
    }

    #[test]
    fn every_pattern_lands_in_exactly_one_cluster() {
        let patterns: Vec<Vec<Rect>> = (0..10)
            .map(|i| vec![Rect::from_extents(0, 0, 10 + 9 * i, 100)])
            .collect();
        let c = DensityClustering::run(&window(), &patterns, &params());
        let total: usize = c.clusters.iter().map(|cl| cl.members.len()).sum();
        assert_eq!(total, patterns.len());
        for i in 0..patterns.len() {
            assert!(c.cluster_of(i).is_some());
        }
    }
}
