//! Double-patterning feature extraction (Section IV-B).
//!
//! When the foundry provides a mask decomposition, the paper extracts three
//! feature sets per pattern: one from each mask and one from the combined
//! pattern. Rules from the mask sets carry mask marks.

use crate::features::{CriticalFeatures, FeatureConfig};
use hotspot_geom::Rect;
use serde::{Deserialize, Serialize};

/// A two-mask decomposition of a pattern window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaskDecomposition {
    /// Rectangles printed by mask 1.
    pub mask1: Vec<Rect>,
    /// Rectangles printed by mask 2.
    pub mask2: Vec<Rect>,
}

impl MaskDecomposition {
    /// The combined (target) pattern.
    pub fn combined(&self) -> Vec<Rect> {
        self.mask1.iter().chain(&self.mask2).copied().collect()
    }

    /// Greedy two-colouring decomposition: rectangles closer than
    /// `min_spacing` must go to different masks; conflicts fall back to
    /// mask 1 (a real decomposer would report a violation).
    pub fn decompose(rects: &[Rect], min_spacing: i64) -> MaskDecomposition {
        let n = rects.len();
        let mut color = vec![usize::MAX; n];
        for i in 0..n {
            // Colours used by already-assigned conflicting neighbours.
            let mut used = [false; 2];
            for j in 0..i {
                if conflict(&rects[i], &rects[j], min_spacing) && color[j] < 2 {
                    used[color[j]] = true;
                }
            }
            color[i] = if !used[0] {
                0
            } else if !used[1] {
                1
            } else {
                0
            };
        }
        let mut d = MaskDecomposition {
            mask1: Vec::new(),
            mask2: Vec::new(),
        };
        for (r, c) in rects.iter().zip(&color) {
            if *c == 0 {
                d.mask1.push(*r);
            } else {
                d.mask2.push(*r);
            }
        }
        d
    }
}

/// `true` when two rectangles are closer than `min_spacing` (and disjoint).
fn conflict(a: &Rect, b: &Rect, min_spacing: i64) -> bool {
    match hotspot_geom::edge_spacing(a, b) {
        Some(d) => d < min_spacing,
        None => false, // overlapping rects are the same net, not a conflict
    }
}

/// The three feature sets of a double-patterned window (Fig. 14(b)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatterningFeatures {
    /// Features of the mask-1 pattern (mask-marked).
    pub mask1: CriticalFeatures,
    /// Features of the mask-2 pattern (mask-marked).
    pub mask2: CriticalFeatures,
    /// Features of the combined pattern.
    pub combined: CriticalFeatures,
}

impl PatterningFeatures {
    /// Extracts the three feature sets.
    pub fn extract(
        window: &Rect,
        decomposition: &MaskDecomposition,
        config: &FeatureConfig,
    ) -> PatterningFeatures {
        PatterningFeatures {
            mask1: CriticalFeatures::extract(window, &decomposition.mask1, config),
            mask2: CriticalFeatures::extract(window, &decomposition.mask2, config),
            combined: CriticalFeatures::extract(window, &decomposition.combined(), config),
        }
    }

    /// Flattens mask 1, mask 2, then combined features into one vector.
    /// The mask sets are prefixed with their mask number (the paper's "mask
    /// marks").
    pub fn to_vector(&self) -> Vec<f64> {
        let mut v = vec![1.0];
        v.extend(self.mask1.to_vector());
        v.push(2.0);
        v.extend(self.mask2.to_vector());
        v.extend(self.combined.to_vector());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Rect {
        Rect::from_extents(0, 0, 120, 120)
    }

    #[test]
    fn decompose_splits_close_pairs() {
        // Two bars 10 apart with min spacing 20: must be on different masks.
        let rects = [
            Rect::from_extents(10, 40, 50, 60),
            Rect::from_extents(60, 40, 100, 60),
        ];
        let d = MaskDecomposition::decompose(&rects, 20);
        assert_eq!(d.mask1.len(), 1);
        assert_eq!(d.mask2.len(), 1);
    }

    #[test]
    fn decompose_keeps_far_pairs_together() {
        let rects = [
            Rect::from_extents(0, 0, 20, 20),
            Rect::from_extents(80, 80, 110, 110),
        ];
        let d = MaskDecomposition::decompose(&rects, 20);
        assert_eq!(d.mask1.len(), 2);
        assert!(d.mask2.is_empty());
    }

    #[test]
    fn combined_restores_all_rects() {
        let rects = [
            Rect::from_extents(10, 40, 50, 60),
            Rect::from_extents(60, 40, 100, 60),
            Rect::from_extents(0, 100, 120, 110),
        ];
        let d = MaskDecomposition::decompose(&rects, 20);
        assert_eq!(d.combined().len(), rects.len());
    }

    #[test]
    fn odd_cycle_falls_back_without_panicking() {
        // Three mutually conflicting bars (odd cycle): 2-colouring fails,
        // the greedy decomposer must still terminate.
        let rects = [
            Rect::from_extents(0, 0, 10, 30),
            Rect::from_extents(15, 0, 25, 30),
            Rect::from_extents(30, 0, 40, 30),
        ];
        let d = MaskDecomposition::decompose(&rects, 50);
        assert_eq!(d.mask1.len() + d.mask2.len(), 3);
    }

    #[test]
    fn feature_sets_cover_masks_and_combined() {
        let rects = [
            Rect::from_extents(10, 40, 50, 60),
            Rect::from_extents(60, 40, 100, 60),
        ];
        let d = MaskDecomposition::decompose(&rects, 20);
        let f = PatterningFeatures::extract(&window(), &d, &FeatureConfig::default());
        // Each mask alone has no external spacing; combined does.
        assert_eq!(f.combined.min_external, 10);
        assert!(f.mask1.min_external > 10);
        let v = f.to_vector();
        assert_eq!(v[0], 1.0);
        assert!(v.len() > f.combined.to_vector().len());
    }
}
