//! Compiled admission routing: the batched 8-orientation centroid search.
//!
//! Kernel admission evaluates the eq. (1) distance — the per-pixel L1
//! difference minimised over the eight D8 orientations — between a clip's
//! core density grid and every kernel centroid. The naive search
//! ([`DensityGrid::distance`]) allocates a transformed copy of the centroid
//! per orientation per kernel per clip; with the SVM hot loop compiled,
//! that routing search dominates the evaluation stage.
//!
//! [`CentroidRouter`] gives routing the same compiled-engine treatment: at
//! model-compile time every kernel centroid is expanded into its D8
//! orientations ([`orientation_expansions`]) and packed into one contiguous
//! row-major matrix with precomputed row norms and masses. A query is then
//! admitted in a single allocation-free fused pass per clip:
//!
//! 1. **mass gate** — `|Σx − Σc| ≤ L1(x, τ(c))` for every orientation `τ`
//!    (the pixel sum is orientation-invariant), so one comparison against
//!    the admission threshold can discharge all eight rows of a kernel;
//! 2. **norm-trick screen** — the squared L2 distance
//!    `‖x‖² + ‖cᵢ‖² − 2⟨cᵢ,x⟩` (8-lane chunked dot products, precomputed
//!    row norms) lower-bounds the L1 distance (`‖v‖₂ ≤ ‖v‖₁`), so a row
//!    whose screened distance exceeds the current bound is pruned without
//!    touching the exact metric;
//! 3. **exact pass** — the surviving rows run the exact L1 sum in the same
//!    sequential order as [`DensityGrid::l1_distance`] (bit-identical
//!    result), early-exiting once the running partial sum exceeds the
//!    bound `min(admission threshold, best distance so far)` — valid
//!    because L1 partial sums are monotone non-decreasing.
//!
//! Both screens are conservative (slack absorbs the summation-order
//! rounding of the screened quantities), and rows they prune provably
//! exceed the bound, so the admitted kernel set, the minimal distance, and
//! the arg-min orientation (first-wins tie-break in D8 order) are exactly
//! those of the naive search — pinned by the property tests in
//! `tests/route_equivalence.rs`.

use hotspot_geom::{DensityGrid, Orientation, D8};

/// Lanes per chunk of the screening dot product: 8 independent f64
/// accumulators autovectorize on stable rustc (no SIMD intrinsics).
const LANES: usize = 8;

/// Cells per early-exit checkpoint of the exact L1 pass. Accumulation
/// stays strictly sequential; only the bound comparison is amortised.
const EXIT_CHECK: usize = 8;

/// Relative slack on the screening bounds, absorbing the rounding of the
/// threshold product and the screened quantity at large magnitudes.
const REL_SLACK: f64 = 1e-9;

/// Absolute slack on the screening bounds, absorbing summation rounding of
/// masses, norms, and dot products near zero thresholds.
const ABS_SLACK: f64 = 1e-7;

/// A kernel centroid expanded into its eight D8 orientations, in D8 order.
///
/// This is the compile-time export the router packs its rows from;
/// orientations that change the grid dimensions (odd rotations of
/// non-square grids) are still returned and must be filtered against the
/// query dimensions by the caller, exactly as [`DensityGrid::distance`]
/// skips them.
pub fn orientation_expansions(grid: &DensityGrid) -> [(Orientation, DensityGrid); 8] {
    D8.map(|o| (o, grid.transform(o)))
}

/// One admitted kernel of a routed query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Admission {
    /// Index of the kernel in the router's compile order.
    pub kernel: usize,
    /// The exact eq. (1) distance — identical to the naive search's.
    pub distance: f64,
    /// The arg-min orientation (first minimising orientation in D8 order).
    pub orientation: Orientation,
}

/// Counters of one or more routing passes, for telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteStats {
    /// Queries routed.
    pub queries: usize,
    /// Kernels admitted by the density metric across all queries.
    pub admitted: usize,
    /// Centroid-orientation rows considered (kernels × aligned
    /// orientations).
    pub rows_considered: usize,
    /// Rows discharged by the orientation-invariant mass gate.
    pub mass_skips: usize,
    /// Rows pruned by the norm-trick squared-L2 screen.
    pub screen_skips: usize,
    /// Rows that ran the exact L1 pass to completion.
    pub exact_passes: usize,
    /// Exact passes abandoned once the partial sum exceeded the bound.
    pub early_exits: usize,
}

impl RouteStats {
    /// Accumulates another set of counters into this one.
    pub fn absorb(&mut self, other: &RouteStats) {
        self.queries += other.queries;
        self.admitted += other.admitted;
        self.rows_considered += other.rows_considered;
        self.mass_skips += other.mass_skips;
        self.screen_skips += other.screen_skips;
        self.exact_passes += other.exact_passes;
        self.early_exits += other.early_exits;
    }

    /// Rows pruned without computing their full exact distance — the
    /// telemetry `admission_skips` counter.
    pub fn rows_pruned(&self) -> usize {
        self.mass_skips + self.screen_skips + self.early_exits
    }
}

/// Row range and per-kernel screening constants of one compiled kernel.
#[derive(Debug, Clone)]
struct KernelSlot {
    /// First row of this kernel in the packed matrix.
    start: usize,
    /// Orientation rows this kernel owns (0 when the centroid can never
    /// align with the router's query dimensions).
    len: usize,
    /// Admission threshold: a kernel admits when the minimal exact
    /// distance is `<= threshold`.
    threshold: f64,
    /// Pixel sum of the centroid (orientation-invariant).
    mass: f64,
}

/// The compiled admission router: all kernel centroids × D8 orientations
/// packed into one contiguous row-major matrix with precomputed row norms,
/// queried by an allocation-free fused pass per clip.
///
/// Built once per model compile (alongside the flattened SVM engine) and
/// shared read-only by every evaluation thread.
#[derive(Debug, Clone)]
pub struct CentroidRouter {
    nx: usize,
    ny: usize,
    dim: usize,
    /// Packed orientation rows, row-major: `rows[r*dim..(r+1)*dim]` is the
    /// cell vector of one transformed centroid.
    rows: Vec<f64>,
    /// Squared Euclidean norm `‖cᵢ‖²` of each row.
    row_norms: Vec<f64>,
    /// The D8 orientation each row was transformed by.
    row_orientations: Vec<Orientation>,
    slots: Vec<KernelSlot>,
}

impl CentroidRouter {
    /// Packs `(centroid, admission threshold)` pairs into a router for
    /// queries of `nx × ny` cells.
    ///
    /// Kernels whose centroid dimensions differ from `nx × ny` get no
    /// rows and are never density-admitted, mirroring the dimension guard
    /// in front of the naive search. For centroids that do match, only
    /// orientations preserving the dimensions are packed (all eight for
    /// square grids), exactly the set [`DensityGrid::distance`] searches.
    ///
    /// # Panics
    ///
    /// Panics if `nx` or `ny` is zero.
    pub fn compile<'a, I>(kernels: I, nx: usize, ny: usize) -> CentroidRouter
    where
        I: IntoIterator<Item = (&'a DensityGrid, f64)>,
    {
        assert!(nx > 0 && ny > 0, "router dimensions must be positive");
        let dim = nx * ny;
        let mut rows = Vec::new();
        let mut row_norms = Vec::new();
        let mut row_orientations = Vec::new();
        let mut slots = Vec::new();
        for (centroid, threshold) in kernels {
            let start = row_orientations.len();
            let mut mass = 0.0;
            if (centroid.nx(), centroid.ny()) == (nx, ny) {
                mass = centroid.cells().iter().sum();
                for (orientation, transformed) in orientation_expansions(centroid) {
                    if (transformed.nx(), transformed.ny()) != (nx, ny) {
                        continue;
                    }
                    let cells = transformed.cells();
                    row_norms.push(cells.iter().map(|c| c * c).sum());
                    rows.extend_from_slice(cells);
                    row_orientations.push(orientation);
                }
            }
            slots.push(KernelSlot {
                start,
                len: row_orientations.len() - start,
                threshold,
                mass,
            });
        }
        CentroidRouter {
            nx,
            ny,
            dim,
            rows,
            row_norms,
            row_orientations,
            slots,
        }
    }

    /// Query grid width the router was compiled for.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Query grid height the router was compiled for.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Kernels the router was compiled with.
    pub fn kernel_count(&self) -> usize {
        self.slots.len()
    }

    /// Packed centroid-orientation rows across all kernels.
    pub fn row_count(&self) -> usize {
        self.row_orientations.len()
    }

    /// Routes one query: fills `out` with the density-admitted kernels in
    /// compile order, each carrying the exact eq. (1) distance and arg-min
    /// orientation of the naive search, and accumulates counters into
    /// `stats`.
    ///
    /// Allocation-free once `out` has grown to the admitted high-water
    /// mark.
    ///
    /// # Panics
    ///
    /// Panics if the query dimensions differ from the router's.
    pub fn route_into(
        &self,
        query: &DensityGrid,
        out: &mut Vec<Admission>,
        stats: &mut RouteStats,
    ) {
        assert_eq!(
            (query.nx(), query.ny()),
            (self.nx, self.ny),
            "query dimensions do not match the compiled router"
        );
        out.clear();
        stats.queries += 1;
        let q = query.cells();
        let mut q_norm = 0.0;
        let mut q_mass = 0.0;
        for &x in q {
            q_mass += x;
            q_norm += x * x;
        }

        for (kernel, slot) in self.slots.iter().enumerate() {
            if slot.len == 0 {
                continue;
            }
            stats.rows_considered += slot.len;
            let threshold = slot.threshold;
            // Mass gate: |Σx − Σc| lower-bounds the L1 distance at every
            // orientation, so one comparison discharges the whole kernel.
            if (q_mass - slot.mass).abs() > threshold * (1.0 + REL_SLACK) + ABS_SLACK {
                stats.mass_skips += slot.len;
                continue;
            }

            let mut best = f64::INFINITY;
            let mut best_orientation = None;
            for r in slot.start..slot.start + slot.len {
                let bound = best.min(threshold);
                let row = &self.rows[r * self.dim..(r + 1) * self.dim];
                // Norm-trick screen: ‖x−c‖₂² ≤ ‖x−c‖₁², so a row whose
                // screened distance clears the (slackened) squared bound
                // provably exceeds the bound in L1 as well.
                let d2 = (q_norm + self.row_norms[r] - 2.0 * dot(row, q)).max(0.0);
                if d2 > bound * bound * (1.0 + REL_SLACK) + ABS_SLACK {
                    stats.screen_skips += 1;
                    continue;
                }
                // Exact L1 in the same sequential summation order as
                // `DensityGrid::l1_distance` (bit-identical when it
                // completes); partial sums are monotone non-decreasing, so
                // exceeding the bound at a checkpoint is final.
                let mut acc = 0.0;
                let mut i = 0;
                let mut exited = false;
                while i < self.dim {
                    let end = (i + EXIT_CHECK).min(self.dim);
                    while i < end {
                        acc += (q[i] - row[i]).abs();
                        i += 1;
                    }
                    if acc > bound {
                        exited = true;
                        break;
                    }
                }
                if exited {
                    stats.early_exits += 1;
                    continue;
                }
                stats.exact_passes += 1;
                if acc < best {
                    best = acc;
                    best_orientation = Some(self.row_orientations[r]);
                }
            }
            if best <= threshold {
                stats.admitted += 1;
                out.push(Admission {
                    kernel,
                    distance: best,
                    orientation: best_orientation.expect("admitted kernel has a best row"),
                });
            }
        }
    }

    /// [`route_into`](Self::route_into) into a fresh vector, for one-off
    /// queries and tests.
    pub fn route(&self, query: &DensityGrid) -> (Vec<Admission>, RouteStats) {
        let mut out = Vec::new();
        let mut stats = RouteStats::default();
        self.route_into(query, &mut out, &mut stats);
        (out, stats)
    }
}

/// Chunked dot product with [`LANES`] independent accumulators, which
/// stable rustc autovectorizes; the remainder accumulates scalar.
fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let main = a.len() - a.len() % LANES;
    let mut lanes = [0.0f64; LANES];
    for (ca, cb) in a[..main]
        .chunks_exact(LANES)
        .zip(b[..main].chunks_exact(LANES))
    {
        for (lane, (x, y)) in lanes.iter_mut().zip(ca.iter().zip(cb)) {
            *lane += x * y;
        }
    }
    let mut acc = lanes.iter().sum::<f64>();
    for (x, y) in a[main..].iter().zip(&b[main..]) {
        acc += x * y;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::Rect;

    fn grid_from(cells: Vec<f64>, n: usize) -> DensityGrid {
        DensityGrid::from_cells(n, n, cells)
    }

    /// The naive per-kernel admission the router must reproduce exactly.
    fn naive(
        query: &DensityGrid,
        kernels: &[(DensityGrid, f64)],
    ) -> Vec<(usize, f64, Orientation)> {
        let mut out = Vec::new();
        for (idx, (centroid, threshold)) in kernels.iter().enumerate() {
            if (query.nx(), query.ny()) != (centroid.nx(), centroid.ny()) {
                continue;
            }
            let d = query.distance(centroid);
            if d.distance <= *threshold {
                out.push((idx, d.distance, d.orientation));
            }
        }
        out
    }

    fn check_equivalence(query: &DensityGrid, kernels: &[(DensityGrid, f64)]) {
        let router =
            CentroidRouter::compile(kernels.iter().map(|(c, t)| (c, *t)), query.nx(), query.ny());
        let (admissions, stats) = router.route(query);
        let expected = naive(query, kernels);
        let got: Vec<(usize, f64, Orientation)> = admissions
            .iter()
            .map(|a| (a.kernel, a.distance, a.orientation))
            .collect();
        assert_eq!(got, expected, "router disagrees with the naive search");
        assert_eq!(stats.admitted, expected.len());
    }

    fn ramp(n: usize, scale: f64) -> DensityGrid {
        let cells = (0..n * n).map(|i| (i as f64 * scale) % 1.0).collect();
        grid_from(cells, n)
    }

    #[test]
    fn dot_matches_reference() {
        let a: Vec<f64> = (0..19).map(|i| i as f64 * 0.25).collect();
        let b: Vec<f64> = (0..19).map(|i| (19 - i) as f64 * 0.5).collect();
        let reference: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - reference).abs() < 1e-9);
    }

    #[test]
    fn orientation_expansions_cover_d8_in_order() {
        let g = ramp(4, 0.37);
        let ex = orientation_expansions(&g);
        for ((o, t), expected) in ex.iter().zip(D8) {
            assert_eq!(*o, expected);
            assert_eq!(*t, g.transform(expected));
        }
    }

    #[test]
    fn identical_grid_admits_at_zero_distance() {
        let g = ramp(8, 0.13);
        let router = CentroidRouter::compile([(&g, 0.5)], 8, 8);
        let (adm, stats) = router.route(&g);
        assert_eq!(adm.len(), 1);
        assert_eq!(adm[0].kernel, 0);
        assert_eq!(adm[0].distance, 0.0);
        assert_eq!(adm[0].orientation, D8[0]);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.rows_considered, 8);
    }

    #[test]
    fn transformed_copies_admit_with_matching_orientation() {
        let window = Rect::from_extents(0, 0, 120, 120);
        let rects = [
            Rect::from_extents(0, 0, 30, 120),
            Rect::from_extents(60, 0, 120, 30),
        ];
        let g = DensityGrid::from_rects(&window, &rects, 6, 6);
        for o in D8 {
            let t = g.transform(o);
            check_equivalence(&g, &[(t, 0.25)]);
        }
    }

    #[test]
    fn far_grids_are_rejected_and_mass_gated() {
        let zeros = grid_from(vec![0.0; 64], 8);
        let ones = grid_from(vec![1.0; 64], 8);
        let router = CentroidRouter::compile([(&ones, 1.0)], 8, 8);
        let (adm, stats) = router.route(&zeros);
        assert!(adm.is_empty());
        // |Σx − Σc| = 64 > 1, so the mass gate discharges all 8 rows.
        assert_eq!(stats.mass_skips, 8);
        assert_eq!(stats.exact_passes, 0);
    }

    #[test]
    fn dimension_mismatched_kernels_get_no_rows() {
        let q = ramp(8, 0.21);
        let small = ramp(4, 0.21);
        let router = CentroidRouter::compile([(&small, 100.0), (&q, 100.0)], 8, 8);
        assert_eq!(router.kernel_count(), 2);
        assert_eq!(router.row_count(), 8);
        let (adm, _) = router.route(&q);
        assert_eq!(adm.len(), 1);
        assert_eq!(adm[0].kernel, 1);
    }

    #[test]
    fn non_square_grids_search_only_aligned_orientations() {
        let q = DensityGrid::from_cells(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        let c = DensityGrid::from_cells(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.7]);
        let router = CentroidRouter::compile([(&c, 10.0)], 3, 2);
        // Odd rotations of a 3×2 grid are 2×3 and must be excluded.
        assert_eq!(router.row_count(), 4);
        check_equivalence(&q, &[(c, 10.0)]);
    }

    #[test]
    fn huge_ablation_threshold_never_overflows_the_screen() {
        let q = ramp(8, 0.41);
        let c = ramp(8, 0.29);
        // The single-kernel ablation uses radius ≈ f64::MAX/4; the squared
        // screening bound overflows to +inf and must disable pruning, not
        // wrap into a rejection.
        let threshold = f64::MAX / 4.0 * 1.5;
        let router = CentroidRouter::compile([(&c, threshold)], 8, 8);
        let (adm, stats) = router.route(&q);
        assert_eq!(adm.len(), 1);
        assert_eq!(adm[0].distance, q.distance(&c).distance);
        assert_eq!(adm[0].orientation, q.distance(&c).orientation);
        assert_eq!(stats.mass_skips, 0);
        assert_eq!(stats.screen_skips, 0);
    }

    #[test]
    fn tie_break_is_first_orientation_in_d8_order() {
        // A fully symmetric grid ties at every orientation; the arg-min
        // must be the first D8 element, as the naive search returns.
        let q = grid_from(vec![0.5; 16], 4);
        let c = grid_from(vec![0.25; 16], 4);
        let router = CentroidRouter::compile([(&c, 10.0)], 4, 4);
        let (adm, _) = router.route(&q);
        assert_eq!(adm.len(), 1);
        assert_eq!(adm[0].orientation, D8[0]);
        assert_eq!(adm[0].distance, q.distance(&c).distance);
    }

    #[test]
    fn threshold_boundary_is_inclusive() {
        let q = grid_from(vec![0.0; 4], 2);
        let c = grid_from(vec![0.25; 4], 2);
        // Exact distance is 1.0 at every orientation.
        check_equivalence(&q, &[(c.clone(), 1.0)]);
        let router = CentroidRouter::compile([(&c, 1.0)], 2, 2);
        let (adm, _) = router.route(&q);
        assert_eq!(adm.len(), 1, "<= threshold must admit");
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = RouteStats {
            queries: 1,
            admitted: 2,
            rows_considered: 16,
            mass_skips: 3,
            screen_skips: 4,
            exact_passes: 5,
            early_exits: 2,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.queries, 2);
        assert_eq!(a.rows_considered, 32);
        assert_eq!(a.rows_pruned(), 18);
    }

    #[test]
    fn multi_kernel_admission_matches_naive() {
        let window = Rect::from_extents(0, 0, 120, 120);
        let q = DensityGrid::from_rects(&window, &[Rect::from_extents(0, 0, 60, 120)], 8, 8);
        let kernels: Vec<(DensityGrid, f64)> = (0..6)
            .map(|i| {
                let r = Rect::from_extents(0, 0, 15 * (i + 1), 120);
                let g = DensityGrid::from_rects(&window, &[r], 8, 8);
                (g, 0.5 + 0.5 * i as f64)
            })
            .collect();
        check_equivalence(&q, &kernels);
    }
}
