//! Directional strings and string-based topological classification
//! (Section III-B1 and Theorem 1 of the paper).
//!
//! A core pattern is sliced along polygon edges in each of the four
//! directions. Each slice becomes a binary sequence — boundary bit `1`,
//! polygon blocks `1`, space blocks `0` — read as a number, so each side of
//! the pattern carries a string of numbers. Two core patterns have the same
//! topology (up to the eight orientations) iff the concatenation of any two
//! adjacent side strings of one pattern occurs in the counterclockwise or
//! clockwise composite string of the other (Theorem 1).
//!
//! For clustering, [`TopoSignature`] canonicalises the four side strings
//! over all eight orientations into a hashable key: two patterns share a
//! signature exactly when Theorem 1 declares them topologically equal.

use hotspot_geom::{Coord, Orientation, Rect, D8};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Sentinel separating side strings inside composite strings, so a match
/// can never straddle a side boundary incorrectly.
const SIDE_SEPARATOR: u128 = u128::MAX;

/// The four directional strings of a core pattern.
///
/// Sides are stored in counterclockwise order: bottom, right (east), top,
/// left (west). Each side string is the bottom string of the pattern rotated
/// so that side faces down.
///
/// ```
/// use hotspot_geom::Rect;
/// use hotspot_topo::DirectionalStrings;
///
/// let window = Rect::from_extents(0, 0, 100, 100);
/// let rects = [Rect::from_extents(0, 0, 100, 50)];
/// let s = DirectionalStrings::of(&window, &rects);
/// // One slice, fully spanning in x: bottom string has a single number.
/// assert_eq!(s.side(0).len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DirectionalStrings {
    sides: [Vec<u128>; 4], // bottom, east, top, west
}

impl DirectionalStrings {
    /// Computes the four directional strings of the pattern `rects` inside
    /// `window` (rects are clipped to the window).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn of(window: &Rect, rects: &[Rect]) -> DirectionalStrings {
        assert!(!window.is_empty(), "window must be non-empty");
        // Normalise to local coordinates with the window at the origin.
        let local: Vec<Rect> = rects
            .iter()
            .filter_map(|r| r.intersection(window))
            .map(|r| r.translate(-window.min()))
            .collect();
        let (w, h) = (window.width(), window.height());
        // side k faces down after rotating by the inverse of R(90k)… i.e.
        // bottom: R0, east: R270, top: R180, west: R90 (see module tests).
        let sides = [
            bottom_string(&local, w, h, Orientation::R0),
            bottom_string(&local, w, h, Orientation::R270),
            bottom_string(&local, w, h, Orientation::R180),
            bottom_string(&local, w, h, Orientation::R90),
        ];
        DirectionalStrings { sides }
    }

    /// Side string `k` in counterclockwise order (0 = bottom, 1 = east,
    /// 2 = top, 3 = west).
    ///
    /// # Panics
    ///
    /// Panics if `k >= 4`.
    pub fn side(&self, k: usize) -> &[u128] {
        &self.sides[k]
    }

    /// The counterclockwise composite string: all four sides joined with
    /// separators, with the beginning side repeated at the end (as the paper
    /// prescribes) so cyclic matches succeed.
    pub fn ccw_composite(&self) -> Vec<u128> {
        let order = [0usize, 1, 2, 3, 0];
        self.composite(&order, false)
    }

    /// The clockwise composite string (side order reversed and each side's
    /// slices reversed) — this is the counterclockwise composite of the
    /// mirrored pattern.
    pub fn cw_composite(&self) -> Vec<u128> {
        let order = [0usize, 3, 2, 1, 0];
        self.composite(&order, true)
    }

    fn composite(&self, order: &[usize], reverse_each: bool) -> Vec<u128> {
        let mut out = Vec::new();
        for &k in order {
            out.push(SIDE_SEPARATOR);
            if reverse_each {
                out.extend(self.sides[k].iter().rev().copied());
            } else {
                out.extend(self.sides[k].iter().copied());
            }
        }
        out.push(SIDE_SEPARATOR);
        out
    }

    /// The query string for Theorem 1: two adjacent sides (bottom then
    /// east), separator-delimited.
    pub fn adjacent_pair_query(&self) -> Vec<u128> {
        let mut q = vec![SIDE_SEPARATOR];
        q.extend(self.sides[0].iter().copied());
        q.push(SIDE_SEPARATOR);
        q.extend(self.sides[1].iter().copied());
        q.push(SIDE_SEPARATOR);
        q
    }

    /// Theorem 1: `true` iff the two patterns have the same topology under
    /// some of the eight orientations.
    pub fn same_topology(&self, other: &DirectionalStrings) -> bool {
        let query = self.adjacent_pair_query();
        contains(&other.ccw_composite(), &query) || contains(&other.cw_composite(), &query)
    }
}

impl fmt::Display for DirectionalStrings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = ["bottom", "east", "top", "west"];
        for (name, side) in names.iter().zip(&self.sides) {
            write!(f, "{name}: <")?;
            for (i, v) in side.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f, ">")?;
        }
        Ok(())
    }
}

/// Canonical topology key: the lexicographically smallest flattened side
/// tuple over all eight orientations.
///
/// Two patterns have equal signatures iff [`DirectionalStrings::same_topology`]
/// holds for them; unlike Theorem-1 matching, the signature is hashable and
/// gives clustering a direct `HashMap` key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TopoSignature(Vec<u128>);

impl TopoSignature {
    /// Computes the canonical signature of a pattern.
    pub fn of(window: &Rect, rects: &[Rect]) -> TopoSignature {
        Self::with_orientation(window, rects).0
    }

    /// Computes the signature together with the canonical orientation — the
    /// first element of `D8` whose flattened composite attains the
    /// lexicographic minimum. Aligning every cluster member by its canonical
    /// orientation puts their critical features in a common frame.
    pub fn with_orientation(window: &Rect, rects: &[Rect]) -> (TopoSignature, Orientation) {
        let (w, h) = (window.width(), window.height());
        let local: Vec<Rect> = rects
            .iter()
            .filter_map(|r| r.intersection(window))
            .map(|r| r.translate(-window.min()))
            .collect();
        let mut best: Option<(Vec<u128>, Orientation)> = None;
        for o in D8 {
            let trects = o.apply_rects(&local, w, h);
            let (tw, th) = o.window(w, h);
            let twin = Rect::from_extents(0, 0, tw, th);
            let s = DirectionalStrings::of(&twin, &trects);
            let flat = s.ccw_composite();
            if best.as_ref().is_none_or(|(b, _)| flat < *b) {
                best = Some((flat, o));
            }
        }
        let (flat, o) = best.expect("D8 is non-empty");
        (TopoSignature(flat), o)
    }

    /// The flattened canonical string (for diagnostics).
    pub fn as_slice(&self) -> &[u128] {
        &self.0
    }
}

/// Subsequence search (naive; strings are tens of numbers long).
fn contains(haystack: &[u128], needle: &[u128]) -> bool {
    if needle.is_empty() {
        return true;
    }
    if haystack.len() < needle.len() {
        return false;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// The bottom string of the pattern after orienting by `o`: slice vertically
/// along polygon x-edges; per slice, emit the boundary bit then the
/// bottom-to-top block sequence (polygon = 1, space = 0), read as a number.
fn bottom_string(rects: &[Rect], w: Coord, h: Coord, o: Orientation) -> Vec<u128> {
    let oriented = o.apply_rects(rects, w, h);
    let (ow, oh) = o.window(w, h);

    // Slice boundaries at every vertical edge plus the window sides.
    let mut xs: Vec<Coord> = vec![0, ow];
    for r in &oriented {
        xs.push(r.min().x);
        xs.push(r.max().x);
    }
    xs.sort_unstable();
    xs.dedup();

    // Collect the merged y-interval set of each slice first; adjacent slices
    // with *identical* interval sets are one topological slice (abutting
    // rectangles of the same union create spurious edge events), so they
    // collapse before bit encoding.
    let mut slice_intervals: Vec<Vec<(Coord, Coord)>> = Vec::new();
    for slice in xs.windows(2) {
        let (x0, x1) = (slice[0], slice[1]);
        if x0 >= x1 {
            continue;
        }
        // Rects spanning the slice (slice boundaries are at all edges, so
        // any overlapping rect spans the whole slice horizontally).
        let mut intervals: Vec<(Coord, Coord)> = oriented
            .iter()
            .filter(|r| r.min().x <= x0 && r.max().x >= x1)
            .map(|r| (r.min().y, r.max().y))
            .collect();
        intervals.sort_unstable();
        // Merge touching/overlapping y-intervals.
        let mut merged: Vec<(Coord, Coord)> = Vec::new();
        for (a, b) in intervals {
            if let Some(last) = merged.last_mut() {
                if a <= last.1 {
                    last.1 = last.1.max(b);
                    continue;
                }
            }
            merged.push((a, b));
        }
        if slice_intervals.last() != Some(&merged) {
            slice_intervals.push(merged);
        }
    }

    let mut out = Vec::with_capacity(slice_intervals.len());
    for merged in &slice_intervals {
        // Bits: boundary 1, then bottom-to-top alternation.
        let mut value: u128 = 1;
        let mut cursor = 0;
        let push_bit = |v: &mut u128, bit: u128| {
            debug_assert!(v.leading_zeros() > 0, "slice block count overflow");
            *v = (*v << 1) | bit;
        };
        for (a, b) in merged {
            if *a > cursor {
                push_bit(&mut value, 0);
            }
            push_bit(&mut value, 1);
            cursor = *b;
        }
        if cursor < oh {
            push_bit(&mut value, 0);
        }
        out.push(value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Rect {
        Rect::from_extents(0, 0, 100, 100)
    }

    /// The paper's Fig. 5(a)-style step: left column solid full height,
    /// right column a floating bar.
    fn step_pattern() -> Vec<Rect> {
        vec![
            Rect::from_extents(0, 0, 50, 100),
            Rect::from_extents(50, 40, 100, 70),
        ]
    }

    #[test]
    fn fig5a_bottom_string_is_3_10() {
        let s = DirectionalStrings::of(&window(), &step_pattern());
        // Slice 1 (solid column): bits 1,1 -> 3. Slice 2 (floating bar):
        // bits 1,0,1,0 -> 10.
        assert_eq!(s.side(0), &[3u128, 10]);
    }

    #[test]
    fn empty_pattern_single_slice() {
        let s = DirectionalStrings::of(&window(), &[]);
        // One slice, boundary + one space block: bits 1,0 -> 2.
        assert_eq!(s.side(0), &[2u128]);
        assert_eq!(s.side(2), &[2u128]);
    }

    #[test]
    fn full_pattern_single_slice() {
        let s = DirectionalStrings::of(&window(), &[window()]);
        // Bits 1,1 -> 3 on every side.
        for k in 0..4 {
            assert_eq!(s.side(k), &[3u128], "side {k}");
        }
    }

    #[test]
    fn same_topology_under_all_orientations() {
        let rects = step_pattern();
        let base = DirectionalStrings::of(&window(), &rects);
        for o in D8 {
            let trects = o.apply_rects(&rects, 100, 100);
            let rotated = DirectionalStrings::of(&window(), &trects);
            assert!(
                base.same_topology(&rotated),
                "orientation {o} should match\nbase:\n{base}\nrot:\n{rotated}"
            );
            assert!(
                rotated.same_topology(&base),
                "orientation {o} reverse should match"
            );
        }
    }

    #[test]
    fn different_topologies_do_not_match() {
        let a = DirectionalStrings::of(&window(), &[Rect::from_extents(0, 0, 100, 50)]);
        let b = DirectionalStrings::of(&window(), &step_pattern());
        assert!(!a.same_topology(&b));
        assert!(!b.same_topology(&a));
        let empty = DirectionalStrings::of(&window(), &[]);
        assert!(!a.same_topology(&empty));
    }

    #[test]
    fn scaled_pattern_same_topology() {
        // Strings capture topology, not dimensions.
        let big = vec![
            Rect::from_extents(0, 0, 50, 100),
            Rect::from_extents(50, 40, 100, 70),
        ];
        let small = vec![
            Rect::from_extents(0, 0, 10, 100),
            Rect::from_extents(10, 80, 100, 90),
        ];
        let a = DirectionalStrings::of(&window(), &big);
        let b = DirectionalStrings::of(&window(), &small);
        assert!(a.same_topology(&b));
    }

    #[test]
    fn signature_matches_theorem1() {
        let patterns: Vec<Vec<Rect>> = vec![
            vec![Rect::from_extents(0, 0, 100, 50)],
            step_pattern(),
            vec![Rect::from_extents(20, 20, 80, 80)],
            vec![
                Rect::from_extents(0, 40, 100, 60),
                Rect::from_extents(40, 0, 60, 100),
            ],
            vec![],
        ];
        for (i, pa) in patterns.iter().enumerate() {
            for (j, pb) in patterns.iter().enumerate() {
                let sa = TopoSignature::of(&window(), pa);
                let sb = TopoSignature::of(&window(), pb);
                let da = DirectionalStrings::of(&window(), pa);
                let db = DirectionalStrings::of(&window(), pb);
                assert_eq!(
                    sa == sb,
                    da.same_topology(&db),
                    "signature vs theorem-1 mismatch for patterns {i}, {j}"
                );
            }
        }
    }

    #[test]
    fn signature_is_orientation_invariant() {
        let rects = step_pattern();
        let base = TopoSignature::of(&window(), &rects);
        for o in D8 {
            let trects = o.apply_rects(&rects, 100, 100);
            assert_eq!(base, TopoSignature::of(&window(), &trects), "{o}");
        }
    }

    #[test]
    fn mirrored_only_pattern_matches_via_cw_composite() {
        // An asymmetric pattern whose mirror is not any rotation of itself.
        let rects = vec![
            Rect::from_extents(0, 0, 30, 100),
            Rect::from_extents(30, 0, 100, 20),
            Rect::from_extents(60, 50, 80, 70),
        ];
        let mirrored = Orientation::Mx.apply_rects(&rects, 100, 100);
        let a = DirectionalStrings::of(&window(), &rects);
        let b = DirectionalStrings::of(&window(), &mirrored);
        assert!(a.same_topology(&b));
    }

    #[test]
    fn composite_contains_repeated_first_side() {
        let s = DirectionalStrings::of(&window(), &step_pattern());
        let ccw = s.ccw_composite();
        // Starts and ends with separator; first side repeated at the end.
        assert_eq!(ccw.first(), Some(&SIDE_SEPARATOR));
        assert_eq!(ccw.last(), Some(&SIDE_SEPARATOR));
        let b = s.side(0);
        assert_eq!(&ccw[1..1 + b.len()], b);
        assert_eq!(&ccw[ccw.len() - 1 - b.len()..ccw.len() - 1], b);
    }

    #[test]
    fn touching_rects_merge_into_one_block() {
        // Two stacked rects sharing an edge behave as one block.
        let merged = DirectionalStrings::of(
            &window(),
            &[
                Rect::from_extents(40, 0, 60, 50),
                Rect::from_extents(40, 50, 60, 100),
            ],
        );
        let solid = DirectionalStrings::of(&window(), &[Rect::from_extents(40, 0, 60, 100)]);
        assert_eq!(merged, solid);
    }
}
