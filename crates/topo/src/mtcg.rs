//! The modified transitive closure graph (MTCG) of a tiled pattern.
//!
//! Following Fig. 6 and \[6\], each tiling is converted into two constraint
//! graphs by a sweep-line pass:
//!
//! - the **vertical constraint graph** `Cv`: a directed edge runs from a
//!   tile to any tile directly above it whose x-projection overlaps,
//! - the **horizontal constraint graph** `Ch`: a directed edge runs from a
//!   tile to any tile directly to its right whose y-projection overlaps,
//! - **diagonal edges** (only in the horizontally tiled `Ch`): between two
//!   same-kind tiles meeting at exactly one corner with an empty corner
//!   region between them.

use crate::tiling::{Tile, TileKind, Tiling};
use serde::{Deserialize, Serialize};

/// Kind of MTCG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// `Cv`: source is directly below target.
    Vertical,
    /// `Ch`: source is directly left of target.
    Horizontal,
    /// Diagonal corner adjacency between same-kind tiles.
    Diagonal,
}

/// A directed MTCG edge between tile indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source tile index.
    pub from: usize,
    /// Target tile index.
    pub to: usize,
    /// Constraint kind.
    pub kind: EdgeKind,
}

/// The constraint graphs over one tiling.
///
/// ```
/// use hotspot_geom::Rect;
/// use hotspot_topo::{Mtcg, Tiling};
///
/// let window = Rect::from_extents(0, 0, 100, 100);
/// let rects = [Rect::from_extents(40, 40, 60, 60)];
/// let tiling = Tiling::horizontal(&window, &rects);
/// let g = Mtcg::build(&tiling);
/// assert!(g.edge_count() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mtcg {
    tiles: Vec<Tile>,
    edges: Vec<Edge>,
    out_adj: Vec<Vec<usize>>, // edge indices by source
    in_adj: Vec<Vec<usize>>,  // edge indices by target
}

impl Mtcg {
    /// Builds the constraint graphs for a tiling by a sweep over tile
    /// boundaries. Diagonal edges are added for corner-touching same-kind
    /// tile pairs with an empty corner region (the adjacency condition of
    /// Section III-C).
    pub fn build(tiling: &Tiling) -> Mtcg {
        let tiles = tiling.tiles().to_vec();
        let n = tiles.len();
        let mut edges = Vec::new();

        // Sweep by sorting: for each pair sharing a boundary, add Cv/Ch.
        // Tile counts per clip are small (tens), so the quadratic pair scan
        // is cheaper than a full scanline event queue and easier to verify.
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (a, b) = (&tiles[i].rect, &tiles[j].rect);
                // Vertical: a directly below b.
                if a.max().y == b.min().y && overlaps_1d(a.min().x, a.max().x, b.min().x, b.max().x)
                {
                    edges.push(Edge {
                        from: i,
                        to: j,
                        kind: EdgeKind::Vertical,
                    });
                }
                // Horizontal: a directly left of b.
                if a.max().x == b.min().x && overlaps_1d(a.min().y, a.max().y, b.min().y, b.max().y)
                {
                    edges.push(Edge {
                        from: i,
                        to: j,
                        kind: EdgeKind::Horizontal,
                    });
                }
            }
        }

        // Diagonal edges between same-kind tiles whose projections overlap
        // on neither axis, provided no same-kind tile lies inside the corner
        // region between their facing corners (the adjacency condition of
        // Section III-C). Corner-touching tiles have a degenerate (empty)
        // corner region and always qualify.
        for i in 0..n {
            for j in (i + 1)..n {
                if tiles[i].kind != tiles[j].kind {
                    continue;
                }
                let Some(gap) = diagonal_gap(&tiles[i].rect, &tiles[j].rect) else {
                    continue;
                };
                let blocked = tiles.iter().enumerate().any(|(k, t)| {
                    k != i && k != j && t.kind == tiles[i].kind && t.rect.overlaps(&gap)
                });
                if !blocked {
                    edges.push(Edge {
                        from: i,
                        to: j,
                        kind: EdgeKind::Diagonal,
                    });
                }
            }
        }

        let mut out_adj = vec![Vec::new(); n];
        let mut in_adj = vec![Vec::new(); n];
        for (e_idx, e) in edges.iter().enumerate() {
            out_adj[e.from].push(e_idx);
            in_adj[e.to].push(e_idx);
        }
        Mtcg {
            tiles,
            edges,
            out_adj,
            in_adj,
        }
    }

    /// The graph's tiles (indices match edge endpoints).
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Outgoing neighbours of tile `i` restricted to `kind` edges.
    pub fn out_neighbors(&self, i: usize, kind: EdgeKind) -> impl Iterator<Item = usize> + '_ {
        self.out_adj[i]
            .iter()
            .map(move |&e| &self.edges[e])
            .filter(move |e| e.kind == kind)
            .map(|e| e.to)
    }

    /// Incoming neighbours of tile `i` restricted to `kind` edges.
    pub fn in_neighbors(&self, i: usize, kind: EdgeKind) -> impl Iterator<Item = usize> + '_ {
        self.in_adj[i]
            .iter()
            .map(move |&e| &self.edges[e])
            .filter(move |e| e.kind == kind)
            .map(|e| e.from)
    }

    /// Indices of block tiles whose horizontal (or vertical) neighbours are
    /// all space tiles — the extraction predicate for internal features.
    pub fn blocks_between_spaces(&self, kind: EdgeKind) -> Vec<usize> {
        (0..self.tiles.len())
            .filter(|&i| self.tiles[i].kind == TileKind::Block)
            .filter(|&i| {
                // All neighbours along `kind` edges must be space tiles
                // (vacuously true for an unconnected block).
                self.out_neighbors(i, kind)
                    .chain(self.in_neighbors(i, kind))
                    .all(|n| self.tiles[n].kind == TileKind::Space)
            })
            .collect()
    }

    /// Indices of space tiles lying between exactly two block tiles along
    /// `kind` edges — the extraction predicate for external features.
    pub fn spaces_between_two_blocks(&self, kind: EdgeKind) -> Vec<usize> {
        (0..self.tiles.len())
            .filter(|&i| self.tiles[i].kind == TileKind::Space)
            .filter(|&i| {
                let blocks = self
                    .out_neighbors(i, kind)
                    .chain(self.in_neighbors(i, kind))
                    .filter(|&n| self.tiles[n].kind == TileKind::Block)
                    .count();
                blocks == 2
            })
            .collect()
    }
}

fn overlaps_1d(a0: i64, a1: i64, b0: i64, b1: i64) -> bool {
    a0 < b1 && b0 < a1
}

/// The corner region between two diagonally separated rectangles: the
/// (possibly degenerate) rectangle spanning their facing convex corners.
/// `None` when the rectangles overlap on either axis.
pub fn diagonal_gap(a: &hotspot_geom::Rect, b: &hotspot_geom::Rect) -> Option<hotspot_geom::Rect> {
    use hotspot_geom::Rect;
    // Determine relative placement on each axis (disjoint or touching).
    let (x0, x1) = if a.max().x <= b.min().x {
        (a.max().x, b.min().x)
    } else if b.max().x <= a.min().x {
        (b.max().x, a.min().x)
    } else {
        return None;
    };
    let (y0, y1) = if a.max().y <= b.min().y {
        (a.max().y, b.min().y)
    } else if b.max().y <= a.min().y {
        (b.max().y, a.min().y)
    } else {
        return None;
    };
    Some(Rect::from_extents(x0, y0, x1, y1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::Rect;

    fn window() -> Rect {
        Rect::from_extents(0, 0, 100, 100)
    }

    #[test]
    fn centered_block_has_vertical_and_horizontal_edges() {
        let tiling = Tiling::horizontal(&window(), &[Rect::from_extents(40, 40, 60, 60)]);
        let g = Mtcg::build(&tiling);
        let block = g
            .tiles()
            .iter()
            .position(|t| t.kind == TileKind::Block)
            .unwrap();
        // The block sees space below/above (Cv) and left/right (Ch).
        assert_eq!(
            g.out_neighbors(block, EdgeKind::Vertical).count()
                + g.in_neighbors(block, EdgeKind::Vertical).count(),
            2
        );
        assert_eq!(
            g.out_neighbors(block, EdgeKind::Horizontal).count()
                + g.in_neighbors(block, EdgeKind::Horizontal).count(),
            2
        );
    }

    #[test]
    fn vertical_edges_point_upward() {
        let tiling = Tiling::horizontal(&window(), &[Rect::from_extents(0, 0, 100, 50)]);
        let g = Mtcg::build(&tiling);
        for e in g.edges() {
            if e.kind == EdgeKind::Vertical {
                assert!(
                    g.tiles()[e.from].rect.max().y == g.tiles()[e.to].rect.min().y,
                    "vertical edge must go bottom to top"
                );
            }
        }
        // Exactly one vertical edge: block below space.
        assert_eq!(
            g.edges()
                .iter()
                .filter(|e| e.kind == EdgeKind::Vertical)
                .count(),
            1
        );
    }

    #[test]
    fn diagonal_edge_between_corner_touching_blocks() {
        let rects = [
            Rect::from_extents(0, 0, 40, 40),
            Rect::from_extents(40, 40, 80, 80),
        ];
        let tiling = Tiling::horizontal(&window(), &rects);
        let g = Mtcg::build(&tiling);
        let diag: Vec<_> = g
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::Diagonal)
            .filter(|e| {
                g.tiles()[e.from].kind == TileKind::Block && g.tiles()[e.to].kind == TileKind::Block
            })
            .collect();
        assert_eq!(diag.len(), 1, "one block-block diagonal expected");
    }

    #[test]
    fn separated_blocks_with_empty_corner_are_diagonal() {
        // Per Section III-C, blocks with disjoint projections on both axes
        // and an empty corner region are diagonally adjacent.
        let rects = [
            Rect::from_extents(0, 0, 20, 20),
            Rect::from_extents(60, 60, 90, 90),
        ];
        let tiling = Tiling::horizontal(&window(), &rects);
        let g = Mtcg::build(&tiling);
        assert_eq!(
            g.edges()
                .iter()
                .filter(
                    |e| e.kind == EdgeKind::Diagonal && g.tiles()[e.from].kind == TileKind::Block
                )
                .count(),
            1
        );
    }

    #[test]
    fn block_inside_corner_region_breaks_diagonal_adjacency() {
        let rects = [
            Rect::from_extents(0, 0, 20, 20),
            Rect::from_extents(60, 60, 90, 90),
            Rect::from_extents(30, 30, 50, 50), // sits in the corner region
        ];
        let tiling = Tiling::horizontal(&window(), &rects);
        let g = Mtcg::build(&tiling);
        let block_diags: Vec<_> = g
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::Diagonal && g.tiles()[e.from].kind == TileKind::Block)
            .collect();
        // Corner-to-middle pairs remain adjacent; the outer pair does not.
        let (lo, hi) = (
            Rect::from_extents(0, 0, 20, 20),
            Rect::from_extents(60, 60, 90, 90),
        );
        for e in &block_diags {
            let (a, b) = (g.tiles()[e.from].rect, g.tiles()[e.to].rect);
            let outer = (a == lo && b == hi) || (a == hi && b == lo);
            assert!(!outer, "outer pair must be blocked by the middle tile");
        }
        assert_eq!(block_diags.len(), 2);
    }

    #[test]
    fn diagonal_gap_geometry() {
        use super::diagonal_gap;
        let a = Rect::from_extents(0, 0, 10, 10);
        let b = Rect::from_extents(30, 40, 50, 60);
        assert_eq!(
            diagonal_gap(&a, &b),
            Some(Rect::from_extents(10, 10, 30, 40))
        );
        assert_eq!(
            diagonal_gap(&b, &a),
            Some(Rect::from_extents(10, 10, 30, 40))
        );
        // Overlapping x-projections: no diagonal relation.
        let c = Rect::from_extents(5, 40, 50, 60);
        assert_eq!(diagonal_gap(&a, &c), None);
    }

    #[test]
    fn blocks_between_spaces_finds_isolated_block() {
        let tiling = Tiling::horizontal(&window(), &[Rect::from_extents(40, 40, 60, 60)]);
        let g = Mtcg::build(&tiling);
        let found = g.blocks_between_spaces(EdgeKind::Horizontal);
        assert_eq!(found.len(), 1);
        assert_eq!(g.tiles()[found[0]].kind, TileKind::Block);
    }

    #[test]
    fn spaces_between_two_blocks_finds_gap() {
        // Two bars with a gap between them.
        let rects = [
            Rect::from_extents(0, 40, 40, 60),
            Rect::from_extents(60, 40, 100, 60),
        ];
        let tiling = Tiling::horizontal(&window(), &rects);
        let g = Mtcg::build(&tiling);
        let gaps = g.spaces_between_two_blocks(EdgeKind::Horizontal);
        assert_eq!(gaps.len(), 1);
        let gap = g.tiles()[gaps[0]].rect;
        assert_eq!(gap, Rect::from_extents(40, 40, 60, 60));
    }

    #[test]
    fn empty_tiling_has_no_edges() {
        let tiling = Tiling::horizontal(&window(), &[]);
        let g = Mtcg::build(&tiling);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.tiles().len(), 1);
    }

    #[test]
    fn adjacency_lists_match_edges() {
        let rects = [
            Rect::from_extents(0, 0, 30, 100),
            Rect::from_extents(60, 20, 90, 70),
        ];
        let tiling = Tiling::horizontal(&window(), &rects);
        let g = Mtcg::build(&tiling);
        for (i, _) in g.tiles().iter().enumerate() {
            for kind in [EdgeKind::Vertical, EdgeKind::Horizontal, EdgeKind::Diagonal] {
                for n in g.out_neighbors(i, kind) {
                    assert!(g
                        .edges()
                        .iter()
                        .any(|e| e.from == i && e.to == n && e.kind == kind));
                }
            }
        }
    }
}
