//! Property tests for topological classification: Theorem-1 orientation
//! invariance, signature consistency, tiling partition invariants, and
//! feature-extraction stability.

use hotspot_geom::{Point, Rect, D8};
use hotspot_topo::{
    ClusterParams, CriticalFeatures, DensityClustering, DirectionalStrings, FeatureConfig,
    TileKind, Tiling, TopoSignature,
};
use proptest::prelude::*;

const W: i64 = 120;

fn window() -> Rect {
    Rect::from_extents(0, 0, W, W)
}

/// Random disjoint-ish rect patterns inside the window.
fn arb_pattern() -> impl Strategy<Value = Vec<Rect>> {
    proptest::collection::vec((0i64..(W - 10), 0i64..(W - 10), 5i64..40, 5i64..40), 1..6).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(x, y, w, h)| {
                    Rect::from_origin_size(Point::new(x, y), w.min(W - x), h.min(W - y))
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn theorem1_holds_for_all_orientations(rects in arb_pattern()) {
        let base = DirectionalStrings::of(&window(), &rects);
        for o in D8 {
            let trects = o.apply_rects(&rects, W, W);
            let rotated = DirectionalStrings::of(&window(), &trects);
            prop_assert!(base.same_topology(&rotated), "orientation {}", o);
            prop_assert!(rotated.same_topology(&base), "reverse, orientation {}", o);
        }
    }

    #[test]
    fn signature_invariant_under_orientations(rects in arb_pattern()) {
        let base = TopoSignature::of(&window(), &rects);
        for o in D8 {
            let trects = o.apply_rects(&rects, W, W);
            prop_assert_eq!(&base, &TopoSignature::of(&window(), &trects), "{}", o);
        }
    }

    #[test]
    fn signature_agrees_with_theorem1(a in arb_pattern(), b in arb_pattern()) {
        let sa = TopoSignature::of(&window(), &a);
        let sb = TopoSignature::of(&window(), &b);
        let da = DirectionalStrings::of(&window(), &a);
        let db = DirectionalStrings::of(&window(), &b);
        prop_assert_eq!(sa == sb, da.same_topology(&db));
    }

    #[test]
    fn tilings_partition_the_window(rects in arb_pattern()) {
        for tiling in [Tiling::horizontal(&window(), &rects), Tiling::vertical(&window(), &rects)] {
            let total: i64 = tiling.tiles().iter().map(|t| t.rect.area()).sum();
            prop_assert_eq!(total, window().area());
            let tiles = tiling.tiles();
            for i in 0..tiles.len() {
                for j in (i + 1)..tiles.len() {
                    prop_assert!(!tiles[i].rect.overlaps(&tiles[j].rect));
                }
            }
        }
    }

    #[test]
    fn block_area_equals_union_area(rects in arb_pattern()) {
        // Block tiles cover exactly the union of the input rects; both
        // tilings must agree on that area.
        let h: i64 = Tiling::horizontal(&window(), &rects)
            .tiles_of_kind(TileKind::Block)
            .map(|t| t.rect.area())
            .sum();
        let v: i64 = Tiling::vertical(&window(), &rects)
            .tiles_of_kind(TileKind::Block)
            .map(|t| t.rect.area())
            .sum();
        prop_assert_eq!(h, v);
    }

    #[test]
    fn feature_vector_deterministic(rects in arb_pattern()) {
        let cfg = FeatureConfig::default();
        let a = CriticalFeatures::extract(&window(), &rects, &cfg);
        let b = CriticalFeatures::extract(&window(), &rects, &cfg);
        prop_assert_eq!(a.to_vector(), b.to_vector());
    }

    #[test]
    fn nontopological_features_orientation_invariant(rects in arb_pattern()) {
        let cfg = FeatureConfig::default();
        let base = CriticalFeatures::extract(&window(), &rects, &cfg);
        for o in D8 {
            let f = CriticalFeatures::extract_oriented(&window(), &rects, o, &cfg);
            prop_assert_eq!(f.corner_count, base.corner_count, "{}", o);
            prop_assert_eq!(f.touch_points, base.touch_points, "{}", o);
            prop_assert_eq!(f.min_internal, base.min_internal, "{}", o);
            prop_assert_eq!(f.min_external, base.min_external, "{}", o);
            prop_assert!((f.density - base.density).abs() < 1e-12, "{}", o);
        }
    }

    #[test]
    fn clustering_covers_all_patterns(patterns in proptest::collection::vec(arb_pattern(), 1..12)) {
        let c = DensityClustering::run(&window(), &patterns, &ClusterParams::default());
        let total: usize = c.clusters.iter().map(|cl| cl.members.len()).sum();
        prop_assert_eq!(total, patterns.len());
        // Members are within the radius of their (running) centroid is not
        // guaranteed post-hoc (the centroid moves), but every member must be
        // assigned to exactly one cluster.
        let mut seen = std::collections::HashSet::new();
        for cl in &c.clusters {
            for &m in &cl.members {
                prop_assert!(seen.insert(m), "pattern {} in two clusters", m);
            }
        }
    }
}
