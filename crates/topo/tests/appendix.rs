//! Tests for the paper's Appendix claims about directional strings:
//! Lemma 1 (slice codes uniquely represent slice topology) and Theorem 2
//! (composite-string matching is exact under the eight orientations).

use hotspot_geom::{Orientation, Point, Rect, D8};
use hotspot_topo::{DirectionalStrings, TopoSignature};
use proptest::prelude::*;

const W: i64 = 120;

fn window() -> Rect {
    Rect::from_extents(0, 0, W, W)
}

/// Lemma 1: two patterns whose bottom strings are equal slice-for-slice
/// share the bottom-side topology — equal codes for structurally different
/// slices must not occur. Constructively check distinct block stackings
/// map to distinct codes.
#[test]
fn lemma1_distinct_stackings_have_distinct_codes() {
    // One block in the middle of the slice: 1|0|1|0 = 10.
    let one = DirectionalStrings::of(&window(), &[Rect::from_extents(0, 40, W, 80)]);
    // Two blocks: 1|0|1|0|1|0 = 42.
    let two = DirectionalStrings::of(
        &window(),
        &[
            Rect::from_extents(0, 20, W, 40),
            Rect::from_extents(0, 70, W, 90),
        ],
    );
    // Block touching the bottom: 1|1|0 = 6.
    let grounded = DirectionalStrings::of(&window(), &[Rect::from_extents(0, 0, W, 50)]);
    assert_eq!(one.side(0), &[10u128]);
    assert_eq!(two.side(0), &[42u128]);
    assert_eq!(grounded.side(0), &[6u128]);
    assert!(!one.same_topology(&two));
    assert!(!one.same_topology(&grounded));
    assert!(!two.same_topology(&grounded));
}

/// Theorem 2 (only-if direction): patterns with different topologies never
/// match — spot-checked over a catalogue of structurally distinct patterns.
#[test]
fn theorem2_distinct_topology_catalogue_never_matches() {
    let catalogue: Vec<Vec<Rect>> = vec![
        vec![],
        vec![Rect::from_extents(0, 0, W, W)],
        vec![Rect::from_extents(0, 0, W, 60)],
        vec![Rect::from_extents(20, 20, 100, 100)],
        vec![
            Rect::from_extents(0, 0, 50, 50),
            Rect::from_extents(70, 70, 120, 120),
        ],
        vec![
            Rect::from_extents(0, 50, 120, 70),
            Rect::from_extents(50, 0, 70, 120),
        ],
        vec![
            Rect::from_extents(0, 0, 30, 120),
            Rect::from_extents(50, 0, 80, 120),
            Rect::from_extents(100, 0, 120, 120),
        ],
    ];
    for (i, a) in catalogue.iter().enumerate() {
        for (j, b) in catalogue.iter().enumerate() {
            let sa = DirectionalStrings::of(&window(), a);
            let sb = DirectionalStrings::of(&window(), b);
            assert_eq!(
                sa.same_topology(&sb),
                i == j,
                "catalogue entries {i} and {j}"
            );
        }
    }
}

/// Theorem 2 (if direction): matching must hold for every orientation of
/// the same pattern, including positional translations of the geometry
/// within the window that preserve the slice structure.
#[test]
fn theorem2_orientations_and_dimension_changes_match() {
    let base = vec![
        Rect::from_extents(10, 10, 50, 40),
        Rect::from_extents(70, 10, 110, 40),
        Rect::from_extents(10, 70, 110, 100),
    ];
    let squeezed = vec![
        Rect::from_extents(5, 20, 55, 45),
        Rect::from_extents(60, 20, 115, 45),
        Rect::from_extents(5, 60, 115, 110),
    ];
    let sa = DirectionalStrings::of(&window(), &base);
    for o in D8 {
        let sb = DirectionalStrings::of(&window(), &o.apply_rects(&squeezed, W, W));
        assert!(sa.same_topology(&sb), "orientation {o}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Matching is an equivalence relation on random patterns: reflexive,
    /// symmetric, and consistent with the canonical signature (whose
    /// equality is transitive by construction).
    #[test]
    fn matching_is_an_equivalence(
        a in arb_pattern(), b in arb_pattern(), c in arb_pattern()
    ) {
        let (sa, sb, sc) = (
            DirectionalStrings::of(&window(), &a),
            DirectionalStrings::of(&window(), &b),
            DirectionalStrings::of(&window(), &c),
        );
        prop_assert!(sa.same_topology(&sa));
        prop_assert_eq!(sa.same_topology(&sb), sb.same_topology(&sa));
        // Transitivity via the signature bridge.
        let (ka, kb, kc) = (
            TopoSignature::of(&window(), &a),
            TopoSignature::of(&window(), &b),
            TopoSignature::of(&window(), &c),
        );
        if ka == kb && kb == kc {
            prop_assert!(sa.same_topology(&sc));
        }
    }

    /// The canonical orientation reported by the signature maps the pattern
    /// onto a representative whose signature is unchanged.
    #[test]
    fn canonical_orientation_is_self_consistent(a in arb_pattern()) {
        let (sig, orientation) = TopoSignature::with_orientation(&window(), &a);
        let rotated = orientation.apply_rects(&a, W, W);
        let (tw, th) = orientation.window(W, W);
        let twin = Rect::from_extents(0, 0, tw, th);
        prop_assert_eq!(sig, TopoSignature::of(&twin, &rotated));
    }
}

fn arb_pattern() -> impl Strategy<Value = Vec<Rect>> {
    proptest::collection::vec((0i64..(W - 10), 0i64..(W - 10), 5i64..50, 5i64..50), 1..5).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(x, y, w, h)| {
                    Rect::from_origin_size(Point::new(x, y), w.min(W - x), h.min(W - y))
                })
                .collect()
        },
    )
}

#[test]
fn orientation_sanity() {
    // Guard: D8 has eight distinct elements (the theorem quantifies over
    // them).
    let set: std::collections::HashSet<Orientation> = D8.into_iter().collect();
    assert_eq!(set.len(), 8);
}
