//! Property tests pinning the compiled admission router to the naive
//! 8-orientation search: admitted kernel sets and best orientations must be
//! identical, distances within 1e-9 (they are in fact bit-identical — the
//! exact pass reuses `l1_distance`'s summation order — but the property
//! asserts the contract from the issue).

use hotspot_geom::{DensityGrid, Orientation};
use hotspot_topo::route::CentroidRouter;
use proptest::prelude::*;

/// Random density grid with cells in the unit interval, n × n.
fn grid(n: usize) -> impl Strategy<Value = DensityGrid> {
    proptest::collection::vec(0.0f64..1.0, n * n)
        .prop_map(move |cells| DensityGrid::from_cells(n, n, cells))
}

/// A kernel: a centroid grid plus an admission threshold. Thresholds are
/// drawn around the typical distance scale so both admissions and
/// rejections occur, with occasional near-zero and huge (single-cluster
/// ablation) values.
fn kernel(n: usize) -> impl Strategy<Value = (DensityGrid, f64)> {
    (grid(n), 0.0f64..1.0, 0u8..7).prop_map(|(g, t, sel)| {
        let threshold = match sel {
            0..=4 => t * 25.0,
            5 => t * 1e-3,
            _ => f64::MAX / 4.0 * 1.5,
        };
        (g, threshold)
    })
}

/// The naive oracle: per-kernel dimension guard + `DensityGrid::distance`
/// (exhaustive D8 search) + inclusive threshold compare — exactly the
/// reference admission loop in `hotspot-core`.
fn naive_admissions(
    query: &DensityGrid,
    kernels: &[(DensityGrid, f64)],
) -> Vec<(usize, f64, Orientation)> {
    kernels
        .iter()
        .enumerate()
        .filter(|(_, (c, _))| (c.nx(), c.ny()) == (query.nx(), query.ny()))
        .filter_map(|(i, (c, threshold))| {
            let d = query.distance(c);
            (d.distance <= *threshold).then_some((i, d.distance, d.orientation))
        })
        .collect()
}

fn assert_router_matches(query: &DensityGrid, kernels: &[(DensityGrid, f64)]) {
    let router =
        CentroidRouter::compile(kernels.iter().map(|(c, t)| (c, *t)), query.nx(), query.ny());
    let (admissions, stats) = router.route(query);
    let expected = naive_admissions(query, kernels);
    assert_eq!(
        admissions.len(),
        expected.len(),
        "admitted kernel count diverged from the naive search"
    );
    for (a, (kernel, distance, orientation)) in admissions.iter().zip(&expected) {
        assert_eq!(a.kernel, *kernel, "admitted kernel set diverged");
        assert_eq!(
            a.orientation, *orientation,
            "best orientation diverged on kernel {kernel}"
        );
        assert!(
            (a.distance - distance).abs() <= 1e-9,
            "distance diverged on kernel {kernel}: {} vs {}",
            a.distance,
            distance
        );
    }
    assert_eq!(stats.admitted, expected.len());
    // Every considered row is accounted for by exactly one outcome.
    assert_eq!(
        stats.mass_skips + stats.screen_skips + stats.early_exits + stats.exact_passes,
        stats.rows_considered
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random 8×8 clips against a bank of random kernels: the production
    /// grid shape (`ClusterParams::grid = 8`).
    #[test]
    fn router_matches_naive_on_production_grids(
        query in grid(8),
        kernels in proptest::collection::vec(kernel(8), 0..12),
    ) {
        assert_router_matches(&query, &kernels);
    }

    /// Small odd-sized grids exercise the dot-product tail lanes and the
    /// early-exit checkpoint remainder.
    #[test]
    fn router_matches_naive_on_small_grids(
        query in grid(3),
        kernels in proptest::collection::vec(kernel(3), 0..10),
    ) {
        assert_router_matches(&query, &kernels);
    }

    /// Near-duplicate centroids (query plus a sparse perturbation) stress
    /// the tie-break and tight-threshold paths where distances cluster
    /// around the admission boundary.
    #[test]
    fn router_matches_naive_on_near_duplicates(
        query in grid(4),
        deltas in proptest::collection::vec((0usize..16, 0.0f64..0.1), 1..8),
        threshold in 0.0f64..1.0,
    ) {
        let mut cells = query.cells().to_vec();
        for (idx, delta) in deltas {
            cells[idx] = (cells[idx] + delta - 0.05).clamp(0.0, 1.0);
        }
        let near = DensityGrid::from_cells(4, 4, cells);
        let kernels = vec![
            (near.clone(), threshold),
            (near.transform(hotspot_geom::D8[3]), threshold),
            (query.clone(), threshold),
        ];
        assert_router_matches(&query, &kernels);
    }

    /// Mixed-dimension kernel banks: mismatched centroids must be ignored
    /// by both searches.
    #[test]
    fn router_matches_naive_with_mismatched_dimensions(
        query in grid(5),
        matching in proptest::collection::vec(kernel(5), 0..5),
        mismatched in proptest::collection::vec(kernel(3), 0..5),
    ) {
        let mut kernels = Vec::new();
        for (i, k) in matching.into_iter().enumerate() {
            kernels.push(k);
            if i < mismatched.len() {
                kernels.push(mismatched[i].clone());
            }
        }
        assert_router_matches(&query, &kernels);
    }
}
