//! Property-based tests of the tile content fingerprint backing the
//! incremental re-scan cache: invariance under rect insertion order and
//! global translation, and sensitivity to single-rect edits anywhere in
//! a tile's core + ambit window.

use hotspot_geom::{Point, Rect};
use hotspot_layout::scan::{TileScanner, TileSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The fixed world the sensitivity test anchors: two corner rects pin the
/// layout bounding box so a perturbation in the interior never moves the
/// tile grid origin.
const WORLD: i64 = 30_000;

fn anchored(mut rects: Vec<Rect>) -> Vec<Rect> {
    rects.push(Rect::from_extents(0, 0, 10, 10));
    rects.push(Rect::from_extents(WORLD - 10, WORLD - 10, WORLD, WORLD));
    rects
}

fn arb_interior_rects() -> impl Strategy<Value = Vec<Rect>> {
    proptest::collection::vec(
        (
            1_000i64..25_000,
            1_000i64..25_000,
            100i64..2_000,
            100i64..2_000,
        ),
        1..20,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(x, y, w, h)| Rect::from_origin_size(Point::new(x, y), w, h))
            .collect()
    })
}

fn spec() -> TileSpec {
    TileSpec::new(3_600, 600).expect("valid tile spec")
}

/// Fingerprints of every non-empty tile, keyed by stable grid coordinate.
fn fingerprints(rects: Vec<Rect>) -> BTreeMap<(i64, i64), u64> {
    TileScanner::from_rects(rects, spec())
        .map(|t| ((t.ix, t.iy), t.content_fingerprint()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fingerprint_ignores_rect_insertion_order(rects in arb_interior_rects()) {
        let forward = fingerprints(rects.clone());
        let mut reversed = rects.clone();
        reversed.reverse();
        prop_assert_eq!(&forward, &fingerprints(reversed));
        let mut sorted = rects;
        sorted.sort_by_key(|r| (r.max().y, r.max().x));
        prop_assert_eq!(&forward, &fingerprints(sorted));
    }

    #[test]
    fn fingerprint_ignores_global_translation(
        rects in arb_interior_rects(),
        dx in -1_000_000i64..1_000_000,
        dy in -1_000_000i64..1_000_000,
    ) {
        // The tile grid origin is the layout bbox corner, which translates
        // with the content: every tile keeps its (ix, iy) and fingerprint.
        let base = fingerprints(rects.clone());
        let moved: Vec<Rect> = rects
            .iter()
            .map(|r| r.translate(Point::new(dx, dy)))
            .collect();
        prop_assert_eq!(base, fingerprints(moved));
    }

    #[test]
    fn fingerprint_sees_single_rect_perturbation_in_halo(
        rects in arb_interior_rects(),
        pick in 0usize..4096,
        grow in 10i64..90,
    ) {
        // Editing one rect must change the fingerprint of exactly the
        // tiles whose core+ambit window sees it (before or after the
        // edit) and no others. Corner anchors pin the bbox so the grid
        // does not move.
        let idx = pick % rects.len();
        let old_rect = rects[idx];
        let mut edited = rects.clone();
        edited[idx] = Rect::from_extents(
            old_rect.min().x,
            old_rect.min().y,
            old_rect.max().x + grow,
            old_rect.max().y,
        );
        let new_rect = edited[idx];

        let before = fingerprints(anchored(rects.clone()));
        let after = fingerprints(anchored(edited.clone()));
        // Same anchored bbox on both sides: one grid serves both scans.
        let scanner = TileScanner::from_rects(anchored(rects), spec());
        let grid = scanner.grid();
        let mut keys: std::collections::BTreeSet<(i64, i64)> = before.keys().copied().collect();
        keys.extend(after.keys().copied());
        for key in keys {
            let window = grid.window(key.0, key.1);
            let touched = window.overlaps(&old_rect) || window.overlaps(&new_rect);
            match (before.get(&key), after.get(&key)) {
                (Some(fp_before), Some(fp_after)) if touched => prop_assert_ne!(
                    fp_before, fp_after,
                    "tile {:?} sees the edited rect but kept its fingerprint", key
                ),
                (Some(fp_before), Some(fp_after)) => prop_assert_eq!(
                    fp_before, fp_after,
                    "tile {:?} does not see the edit but changed fingerprint", key
                ),
                // A tile present on only one side gained or lost its only
                // geometry — legal only when the edit touches its window.
                _ => prop_assert!(
                    touched,
                    "tile {:?} appeared/vanished without the edit touching it", key
                ),
            }
        }
    }
}
