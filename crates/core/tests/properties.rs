//! Property-based tests of the evaluation-phase machinery: clip
//! extraction coverage, redundant-clip-removal invariants, and scoring
//! identities.

use hotspot_core::{extract_clips, removal, score, DetectorConfig, DistributionFilter, RectIndex};
use hotspot_geom::{Point, Rect};
use hotspot_layout::{ClipShape, ClipWindow, LayerId, Layout};
use proptest::prelude::*;
use std::time::Duration;

fn arb_layout_rects() -> impl Strategy<Value = Vec<Rect>> {
    proptest::collection::vec(
        (0i64..40_000, 0i64..40_000, 100i64..2_000, 100i64..2_000),
        1..15,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(x, y, w, h)| Rect::from_origin_size(Point::new(x, y), w, h))
            .collect()
    })
}

fn permissive_config() -> DetectorConfig {
    DetectorConfig {
        distribution: DistributionFilter {
            min_core_density: 0.0,
            min_polygon_count: 1,
            max_boundary_bbox_distance: 4800,
        },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn extraction_covers_every_polygon(rects in arb_layout_rects()) {
        // Section III-E's guarantee: when the distribution requirements are
        // permissive, every polygon is included by at least one clip.
        let mut layout = Layout::new("prop");
        for r in &rects {
            layout.add_rect(LayerId::METAL1, *r);
        }
        let clips = extract_clips(&layout, LayerId::METAL1, &permissive_config());
        for r in layout.dissected_rects(LayerId::METAL1) {
            prop_assert!(
                clips.iter().any(|c| c.window.clip.contains_rect(&r)),
                "rect {:?} not covered by any of {} clips", r, clips.len()
            );
        }
    }

    #[test]
    fn extraction_clips_pass_their_own_filter(rects in arb_layout_rects()) {
        let mut layout = Layout::new("prop");
        for r in &rects {
            layout.add_rect(LayerId::METAL1, *r);
        }
        let config = permissive_config();
        for clip in extract_clips(&layout, LayerId::METAL1, &config) {
            prop_assert!(hotspot_core::extraction::passes_filter(&clip, &config.distribution));
        }
    }

    #[test]
    fn removal_preserves_core_coverage(
        anchors in proptest::collection::vec((0i64..8_000, 0i64..8_000), 1..25)
    ) {
        // Every input core must overlap some output core: removal may
        // compress reports but never abandon a reported area.
        let shape = ClipShape::ICCAD2012;
        let cores: Vec<Rect> = anchors
            .iter()
            .map(|&(x, y)| Rect::from_origin_size(Point::new(x, y), 1200, 1200))
            .collect();
        let index = RectIndex::build(Vec::new(), 4800);
        let out = removal::remove_redundant_clips(
            cores.clone(),
            shape,
            &index,
            &DetectorConfig::default(),
        );
        prop_assert!(!out.is_empty());
        for c in &cores {
            prop_assert!(
                out.iter().any(|w| w.core.overlaps(c)),
                "core {:?} lost by removal", c
            );
        }
    }

    #[test]
    fn removal_never_expands_the_report(
        anchors in proptest::collection::vec((0i64..6_000, 0i64..6_000), 1..20)
    ) {
        let shape = ClipShape::ICCAD2012;
        let mut cores: Vec<Rect> = anchors
            .iter()
            .map(|&(x, y)| Rect::from_origin_size(Point::new(x, y), 1200, 1200))
            .collect();
        cores.sort_by_key(|r| (r.min().x, r.min().y));
        cores.dedup();
        let index = RectIndex::build(Vec::new(), 4800);
        let out = removal::remove_redundant_clips(
            cores.clone(),
            shape,
            &index,
            &DetectorConfig::default(),
        );
        prop_assert!(
            out.len() <= cores.len(),
            "removal grew {} cores into {} clips", cores.len(), out.len()
        );
    }

    #[test]
    fn scoring_identities(
        reported in proptest::collection::vec((0i64..60_000, 0i64..60_000), 0..12),
        actual in proptest::collection::vec((0i64..60_000, 0i64..60_000), 0..8),
    ) {
        let shape = ClipShape::ICCAD2012;
        let reported: Vec<ClipWindow> = reported
            .iter()
            .map(|&(x, y)| shape.window_centered(Point::new(x, y)))
            .collect();
        let actual: Vec<ClipWindow> = actual
            .iter()
            .map(|&(x, y)| shape.window_centered(Point::new(x, y)))
            .collect();
        let eval = score(&reported, &actual, 0.2, 1000.0, Duration::ZERO);
        prop_assert_eq!(eval.hits + eval.misses, eval.actual);
        prop_assert!(eval.extras <= eval.reported);
        prop_assert!(eval.accuracy() >= 0.0 && eval.accuracy() <= 1.0);
        // More reports can only help accuracy: adding the actual windows as
        // reports yields 100%.
        let mut boosted = reported.clone();
        boosted.extend(actual.iter().copied());
        let perfect = score(&boosted, &actual, 0.2, 1000.0, Duration::ZERO);
        prop_assert_eq!(perfect.hits, actual.len());
    }

    #[test]
    fn rect_index_matches_linear_scan(
        rects in arb_layout_rects(),
        probe in (0i64..40_000, 0i64..40_000, 500i64..6_000, 500i64..6_000),
    ) {
        let (x, y, w, h) = probe;
        let window = Rect::from_origin_size(Point::new(x, y), w, h);
        let index = RectIndex::build(rects.clone(), 4800);
        let mut from_index = index.query(&window);
        let mut linear: Vec<Rect> = rects.iter().filter(|r| r.overlaps(&window)).copied().collect();
        let key = |r: &Rect| (r.min().x, r.min().y, r.max().x, r.max().y);
        from_index.sort_by_key(key);
        from_index.dedup();
        linear.sort_by_key(key);
        linear.dedup();
        prop_assert_eq!(from_index, linear);
    }
}
