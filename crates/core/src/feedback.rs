//! Feedback-kernel learning and evaluation (Section III-D4, Figs. 9–10).
//!
//! After multiple-kernel training, the nonhotspot medoids are self-evaluated
//! through the kernels. Medoids still flagged as hotspots ("extras") reveal
//! clusters whose *core* looks like a hotspot but whose *ambit* says
//! otherwise (Fig. 10). Those clusters are re-classified with the ambit
//! included, and a dedicated kernel is trained on the resulting sub-cluster
//! medoids (nonhotspot side) against the hotspots of the offending kernels
//! (hotspot side). At evaluation time the feedback kernel reclaims flagged
//! clips back to nonhotspot, cutting the false alarm without touching the
//! hit count of true hotspots.

use crate::config::DetectorConfig;
use crate::pattern::Pattern;
use crate::training::{
    classify_patterns, density_grid, feature_vector_padded, train_iterative, ClusterKernel,
    FeatureMemo, PatternCluster, Region,
};
use hotspot_geom::{AreaTableGrid, DensityGrid};
use hotspot_svm::{BatchEvaluator, CompiledModel, SvmModel, TrainError};
use hotspot_topo::route::{Admission, CentroidRouter, RouteStats};
use hotspot_topo::TopoSignature;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Reusable per-worker scratch for [`EvalEngine`] calls: the batched SVM
/// evaluator's buffers, the router's admission list, and the admission
/// telemetry counters. Create one per worker (or per batch) and reuse it
/// across clips — queries are allocation-free once the buffers have grown
/// to their high-water marks.
#[derive(Debug, Default)]
pub struct EvalScratch {
    eval: BatchEvaluator,
    admissions: Vec<Admission>,
    route_stats: RouteStats,
    admitted: usize,
    /// Padded subtile summed-area tables over the current scan tile's
    /// dissected rects, rebuilt in place by the tile loop under
    /// [`hotspot_geom::RasterMode::Sat`] (allocations persist across
    /// tiles). When live, every clip of the tile rasterises its core
    /// density grid from its subtile's shared table instead of sweeping
    /// its rects.
    raster: AreaTableGrid,
    /// Whether `raster` holds the *current* tile's tables. Cleared at the
    /// start of every tile so stale tables never leak across tiles.
    raster_live: bool,
    /// Reused clip-grid buffer for the in-place table rasterisation, so the
    /// per-clip grid costs no allocation once grown.
    grid: DensityGrid,
}

impl EvalScratch {
    /// Fresh scratch with empty buffers and zeroed counters.
    pub fn new() -> Self {
        EvalScratch::default()
    }

    /// Clip-kernel pairs admitted to SVM evaluation (topology or density)
    /// since construction or the last [`reset_counters`](Self::reset_counters).
    pub fn admissions(&self) -> u64 {
        self.admitted as u64
    }

    /// Centroid-orientation rows the compiled router pruned without
    /// computing their full exact distance (mass gate + norm screen +
    /// early exit); always 0 under [`crate::EvalMode::Reference`].
    pub fn admission_skips(&self) -> u64 {
        self.route_stats.rows_pruned() as u64
    }

    /// The accumulated router counters.
    pub fn route_stats(&self) -> &RouteStats {
        &self.route_stats
    }

    /// Zeroes the telemetry counters, keeping the grown buffers.
    pub fn reset_counters(&mut self) {
        self.route_stats = RouteStats::default();
        self.admitted = 0;
    }

    /// Marks the shared per-tile summed-area tables stale. The scan loop
    /// calls this unconditionally at the start of every tile, so tables
    /// never leak across tiles; the storage itself is retained for the
    /// next rebuild.
    pub(crate) fn clear_raster_tables(&mut self) {
        self.raster_live = false;
    }

    /// Rebuilds the shared per-tile summed-area tables in place (see
    /// [`AreaTableGrid::rebuild_for`]) and marks them live for the
    /// current tile.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rebuild_raster_tables(
        &mut self,
        region: &hotspot_geom::Rect,
        stride: i64,
        pad: i64,
        rects: &[hotspot_geom::Rect],
        max_cells_per_table: usize,
        windows: &[hotspot_geom::Rect],
    ) {
        self.raster
            .rebuild_for(region, stride, pad, rects, max_cells_per_table, windows);
        self.raster_live = true;
    }
}

/// A borrowing evaluation handle: kernels, admission parameters, and the
/// decision threshold bound together so callers cannot mix mismatched
/// config + threshold pairs (the failure mode of the old free-function
/// `flagging_kernels(kernels, pattern, config, threshold)` signature).
///
/// Obtain one from [`crate::HotspotDetector::eval_engine`] (which attaches
/// the compiled router and flattened SVM models under
/// [`crate::EvalMode::Compiled`]) or from [`EvalEngine::reference`] for the
/// naive oracle over bare kernels. Both produce identical flag sets; the
/// equivalence is pinned by the `eval_engine` integration tests.
#[derive(Debug, Clone, Copy)]
pub struct EvalEngine<'d> {
    pub(crate) kernels: &'d [ClusterKernel],
    pub(crate) feedback: Option<&'d FeedbackKernel>,
    pub(crate) config: &'d DetectorConfig,
    pub(crate) threshold: f64,
    pub(crate) compiled_kernels: Option<&'d [CompiledModel]>,
    pub(crate) compiled_feedback: Option<&'d CompiledModel>,
    pub(crate) router: Option<&'d CentroidRouter>,
    pub(crate) obs: Option<&'d crate::obs::ObsHub>,
}

impl<'d> EvalEngine<'d> {
    /// The reference engine: naive 8-orientation admission search and
    /// per-sample SVM decision values, no feedback kernel. This is the
    /// oracle the compiled path is validated against.
    pub fn reference(
        kernels: &'d [ClusterKernel],
        config: &'d DetectorConfig,
        threshold: f64,
    ) -> Self {
        EvalEngine {
            kernels,
            feedback: None,
            config,
            threshold,
            compiled_kernels: None,
            compiled_feedback: None,
            router: None,
            obs: None,
        }
    }

    /// The SVM decision threshold this engine flags above.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The kernels of the multiple-kernel stage that flag `pattern` as a
    /// hotspot (empty = classified nonhotspot everywhere).
    ///
    /// A kernel participates when the pattern's core topology matches its
    /// cluster signature exactly, or the core density grid lies within the
    /// kernel's admission threshold
    /// ([`crate::AdmissionParams::threshold`]) of the cluster centroid
    /// under the eq. (1) distance. Features are extracted once per clip
    /// and padded vectors are shared across kernels of the same feature
    /// length ([`FeatureMemo`]).
    ///
    /// ```
    /// use hotspot_core::{EvalScratch, HotspotDetector, Label, Pattern, TrainingSet};
    /// use hotspot_geom::{Point, Rect};
    /// use hotspot_layout::ClipShape;
    ///
    /// // A toy training set: narrow-gap bar pairs are hotspots.
    /// let clip = |gap: i64| {
    ///     let window = ClipShape::ICCAD2012.window_from_core_corner(Point::new(0, 0));
    ///     let rects = [
    ///         Rect::from_extents(0, 0, 300, 300),
    ///         Rect::from_extents(300 + gap, 0, 600 + gap, 300),
    ///     ];
    ///     Pattern::new(window, &rects)
    /// };
    /// let mut training = TrainingSet::new();
    /// for i in 0..4 {
    ///     training.push(clip(60 + 10 * i), Label::Hotspot);
    /// }
    /// for i in 0..8 {
    ///     training.push(clip(480 + 10 * i), Label::NonHotspot);
    /// }
    /// let config = HotspotDetector::builder().max_learning_rounds(2).build()?;
    /// let detector = HotspotDetector::train(&training, config)?;
    ///
    /// // Reuse one scratch across clips: queries are allocation-free once
    /// // its buffers have grown to their high-water marks.
    /// let engine = detector.eval_engine();
    /// let mut scratch = EvalScratch::new();
    /// let flagged_by = engine.flagging_kernels(&clip(65), &mut scratch);
    /// assert!(!flagged_by.is_empty(), "a narrow-gap clip should be flagged");
    /// assert!(engine.flagging_kernels(&clip(500), &mut scratch).is_empty());
    /// # Ok::<(), hotspot_core::DetectError>(())
    /// ```
    pub fn flagging_kernels(&self, pattern: &Pattern, scratch: &mut EvalScratch) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_admitted(pattern, scratch, |idx, decision| {
            if decision > self.threshold {
                out.push(idx);
            }
        });
        out
    }

    /// Runs the admission search for `pattern` and invokes `visit` with
    /// `(kernel index, decision value)` for every admitted kernel, in
    /// kernel order.
    pub(crate) fn for_each_admitted(
        &self,
        pattern: &Pattern,
        scratch: &mut EvalScratch,
        mut visit: impl FnMut(usize, f64),
    ) {
        // One branch + one relaxed add per clip when a hub is attached;
        // one branch when not.
        if let Some(hub) = self.obs {
            hub.counters().add(crate::obs::Counter::ClipsEvaluated, 1);
        }
        let window = pattern.window.core;
        let rects: Vec<_> = pattern
            .rects
            .iter()
            .filter_map(|r| r.intersection(&window))
            .map(|r| r.translate(-window.min()))
            .collect();
        let local = hotspot_geom::Rect::from_extents(0, 0, window.width(), window.height());
        let signature = TopoSignature::of(&local, &rects);
        // With per-tile summed-area tables installed, the clip's core grid
        // is four table lookups per cell against its subtile's table (in
        // absolute coordinates — the integer pixel boundaries shift with
        // the window origin, so the result is bit-identical to the
        // per-pattern rasterisation). Windows no subtile covers (cell-cap
        // overflow) fall back to the reference sweep.
        let g = self.config.cluster.grid;
        let EvalScratch {
            eval,
            admissions,
            route_stats,
            admitted,
            raster,
            raster_live,
            grid: scratch_grid,
        } = scratch;
        let filled = *raster_live && raster.rasterize_into(&window, g, g, scratch_grid);
        if !filled {
            *scratch_grid = density_grid(pattern, Region::Core, self.config);
        }
        let grid: &DensityGrid = scratch_grid;
        let mut memo = FeatureMemo::new(pattern, Region::Core, self.config);

        // The compiled router answers the density side of admission for
        // every kernel in one fused pass; the admissions come back sorted
        // by kernel index, so the union with topology matches is a linear
        // merge. Falls back to the naive search if the query shape differs
        // from the compiled one (only possible with a hand-built config).
        let router = self
            .router
            .filter(|r| (grid.nx(), grid.ny()) == (r.nx(), r.ny()));
        if let Some(router) = router {
            router.route_into(grid, admissions, route_stats);
            let mut next = 0usize;
            for (idx, k) in self.kernels.iter().enumerate() {
                let density_match = admissions.get(next).is_some_and(|a| a.kernel == idx);
                if density_match {
                    next += 1;
                }
                if !density_match && signature != k.signature {
                    continue;
                }
                *admitted += 1;
                let features = memo.padded(k.feature_len);
                let decision = match self.compiled_kernels {
                    Some(models) => eval.decision_value(&models[idx], features),
                    None => k.model.decision_value(features),
                };
                visit(idx, decision);
            }
        } else {
            for (idx, k) in self.kernels.iter().enumerate() {
                let topo_match = signature == k.signature;
                let density_match = if grid.nx() == k.centroid.nx() && grid.ny() == k.centroid.ny()
                {
                    grid.distance(&k.centroid).distance <= self.config.admission.threshold(k.radius)
                } else {
                    false
                };
                if !topo_match && !density_match {
                    continue;
                }
                *admitted += 1;
                let features = memo.padded(k.feature_len);
                let decision = match self.compiled_kernels {
                    Some(models) => eval.decision_value(&models[idx], features),
                    None => k.model.decision_value(features),
                };
                visit(idx, decision);
            }
        }
    }

    /// Whether the feedback kernel confirms a flagged clip; `None` when no
    /// feedback kernel is attached (not trained, or disabled by ablation),
    /// which callers treat as confirmed.
    pub(crate) fn feedback_confirms(
        &self,
        pattern: &Pattern,
        scratch: &mut EvalScratch,
    ) -> Option<bool> {
        let fb = self.feedback?;
        Some(match self.compiled_feedback {
            Some(compiled) => fb.confirms_with(pattern, self.config, compiled, &mut scratch.eval),
            None => fb.confirms(pattern, self.config),
        })
    }
}

/// Former free-function admission + flagging entry point.
///
/// The `config` + `threshold` pair travels together on the engine handle
/// now; this wrapper evaluates through the reference engine.
#[deprecated(
    since = "0.3.0",
    note = "use `HotspotDetector::eval_engine()` or `EvalEngine::reference(kernels, config, threshold).flagging_kernels(pattern, &mut EvalScratch::new())`"
)]
pub fn flagging_kernels(
    kernels: &[ClusterKernel],
    pattern: &Pattern,
    config: &DetectorConfig,
    threshold: f64,
) -> Vec<usize> {
    EvalEngine::reference(kernels, config, threshold)
        .flagging_kernels(pattern, &mut EvalScratch::new())
}

/// The trained feedback kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackKernel {
    /// The SVM trained on clip-region (core + ambit) features.
    pub model: SvmModel,
    /// Feature-vector length the kernel expects.
    pub feature_len: usize,
    /// How many extras the self-evaluation produced.
    pub extras_seen: usize,
}

impl FeedbackKernel {
    /// `true` when the feedback kernel *confirms* the hotspot flag;
    /// `false` reclaims the clip as a nonhotspot.
    pub fn confirms(&self, pattern: &Pattern, config: &DetectorConfig) -> bool {
        let features = feature_vector_padded(pattern, Region::Clip, config, self.feature_len);
        self.model.decision_value(&features) > 0.0
    }

    /// [`confirms`](Self::confirms) through the compiled inference engine.
    pub(crate) fn confirms_with(
        &self,
        pattern: &Pattern,
        config: &DetectorConfig,
        compiled: &CompiledModel,
        eval: &mut BatchEvaluator,
    ) -> bool {
        let features = feature_vector_padded(pattern, Region::Clip, config, self.feature_len);
        eval.decision_value(compiled, &features) > 0.0
    }
}

/// Trains the feedback kernel (Fig. 9(b)–(c)).
///
/// Returns `Ok(None)` when self-evaluation produces no extras — every
/// nonhotspot medoid is already classified correctly, so no feedback kernel
/// is needed.
///
/// # Errors
///
/// Propagates SVM training failures.
pub fn train_feedback(
    hotspots: &[Pattern],
    hotspot_clusters: &[PatternCluster],
    kernels: &[ClusterKernel],
    nonhotspots: &[Pattern],
    nonhotspot_clusters: &[PatternCluster],
    config: &DetectorConfig,
) -> Result<Option<FeedbackKernel>, TrainError> {
    // Self-evaluation: push every nonhotspot medoid through the kernels
    // (reference engine — training does not depend on the compiled path).
    let engine = EvalEngine::reference(kernels, config, config.decision_threshold);
    let mut scratch = EvalScratch::new();
    let mut offending_kernels: BTreeSet<usize> = BTreeSet::new();
    let mut extra_cluster_ids: BTreeSet<usize> = BTreeSet::new();
    for (cid, cluster) in nonhotspot_clusters.iter().enumerate() {
        let medoid = &nonhotspots[cluster.medoid];
        let flags = engine.flagging_kernels(medoid, &mut scratch);
        if !flags.is_empty() {
            extra_cluster_ids.insert(cid);
            offending_kernels.extend(flags);
        }
    }
    if extra_cluster_ids.is_empty() {
        return Ok(None);
    }

    // Nonhotspot side: re-classify the offending clusters' members with the
    // ambit region included, then keep the sub-cluster medoids.
    let mut member_patterns: Vec<Pattern> = Vec::new();
    for &cid in &extra_cluster_ids {
        for &m in &nonhotspot_clusters[cid].members {
            member_patterns.push(nonhotspots[m].clone());
        }
    }
    let sub_clusters = classify_patterns(&member_patterns, Region::Clip, &config.cluster);
    let nonhotspot_training: Vec<&Pattern> = sub_clusters
        .iter()
        .map(|c| &member_patterns[c.medoid])
        .collect();

    // Hotspot side: the hotspots of every kernel that produced extras
    // (kernels map 1:1 to hotspot clusters).
    let mut hotspot_training: Vec<&Pattern> = Vec::new();
    for &kid in &offending_kernels {
        if let Some(cluster) = hotspot_clusters.get(kid) {
            for &m in &cluster.members {
                hotspot_training.push(&hotspots[m]);
            }
        }
    }
    if hotspot_training.is_empty() {
        return Ok(None);
    }

    // Clip-region features; pad everything to the longest vector.
    let raw: Vec<(Vec<f64>, f64)> = hotspot_training
        .iter()
        .map(|p| {
            (
                crate::training::feature_vector(p, Region::Clip, config),
                1.0,
            )
        })
        .chain(nonhotspot_training.iter().map(|p| {
            (
                crate::training::feature_vector(p, Region::Clip, config),
                -1.0,
            )
        }))
        .collect();
    let feature_len = raw.iter().map(|(v, _)| v.len()).max().unwrap_or(5).max(5);
    let mut x = Vec::with_capacity(raw.len());
    let mut y = Vec::with_capacity(raw.len());
    for (v, label) in raw {
        x.push(pad_tail(v, feature_len));
        y.push(label);
    }

    let fit = train_iterative(&x, &y, config)?;
    Ok(Some(FeedbackKernel {
        model: fit.model,
        feature_len,
        extras_seen: extra_cluster_ids.len(),
    }))
}

/// Pads/truncates preserving the 5-value nontopological tail.
fn pad_tail(mut v: Vec<f64>, len: usize) -> Vec<f64> {
    if v.len() == len {
        return v;
    }
    let tail: Vec<f64> = v.split_off(v.len().saturating_sub(5));
    v.resize(len.saturating_sub(5), 0.0);
    v.extend(tail);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::train_cluster_kernels;
    use hotspot_geom::{Point, Rect};
    use hotspot_layout::ClipShape;

    fn shape() -> ClipShape {
        ClipShape::new(1200, 4800).unwrap()
    }

    fn pattern(rects: &[Rect]) -> Pattern {
        Pattern::new(shape().window_centered(Point::new(0, 0)), rects)
    }

    /// Hotspot motif: two bars with a dangerously small gap in the core.
    fn hotspot_core(gap: i64) -> Vec<Rect> {
        vec![
            Rect::from_extents(-500, -200, -gap / 2, 200),
            Rect::from_extents(gap / 2, -200, 500, 200),
        ]
    }

    /// Nonhotspot: same two-bar topology but a comfortable gap.
    fn safe_core(gap: i64) -> Vec<Rect> {
        hotspot_core(gap)
    }

    fn config() -> DetectorConfig {
        DetectorConfig {
            max_learning_rounds: 4,
            ..Default::default()
        }
    }

    type TrainedWorld = (
        Vec<Pattern>,
        Vec<PatternCluster>,
        Vec<ClusterKernel>,
        Vec<Pattern>,
        Vec<PatternCluster>,
    );

    fn trained_world() -> TrainedWorld {
        let hotspots: Vec<Pattern> = (0..4)
            .map(|i| pattern(&hotspot_core(60 + i * 10)))
            .collect();
        let nonhotspots: Vec<Pattern> = (0..4).map(|i| pattern(&safe_core(700 + i * 40))).collect();
        let cfg = config();
        let h_clusters = classify_patterns(&hotspots, Region::Core, &cfg.cluster);
        let n_clusters = classify_patterns(&nonhotspots, Region::Core, &cfg.cluster);
        let medoids: Vec<Pattern> = n_clusters
            .iter()
            .map(|c| nonhotspots[c.medoid].clone())
            .collect();
        let kernels = train_cluster_kernels(&hotspots, &h_clusters, &medoids, &cfg).unwrap();
        (hotspots, h_clusters, kernels, nonhotspots, n_clusters)
    }

    #[test]
    fn flagging_kernels_fire_on_hotspots() {
        let (_, _, kernels, _, _) = trained_world();
        let hs = pattern(&hotspot_core(70));
        let cfg = config();
        let mut scratch = EvalScratch::new();
        let flags = EvalEngine::reference(&kernels, &cfg, 0.0).flagging_kernels(&hs, &mut scratch);
        assert!(!flags.is_empty(), "hotspot-like clip should be flagged");
        assert!(scratch.admissions() >= flags.len() as u64);
        assert_eq!(
            scratch.admission_skips(),
            0,
            "reference engine never prunes"
        );
    }

    #[test]
    fn flagging_kernels_pass_safe_patterns() {
        let (_, _, kernels, _, _) = trained_world();
        let safe = pattern(&safe_core(720));
        let cfg = config();
        let flags = EvalEngine::reference(&kernels, &cfg, 0.0)
            .flagging_kernels(&safe, &mut EvalScratch::new());
        assert!(flags.is_empty(), "safe clip should pass, got {flags:?}");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_flagging_kernels_shim_forwards() {
        let (_, _, kernels, _, _) = trained_world();
        let hs = pattern(&hotspot_core(70));
        let cfg = config();
        let via_shim = flagging_kernels(&kernels, &hs, &cfg, 0.0);
        let via_engine = EvalEngine::reference(&kernels, &cfg, 0.0)
            .flagging_kernels(&hs, &mut EvalScratch::new());
        assert_eq!(via_shim, via_engine);
    }

    #[test]
    fn no_extras_no_feedback_kernel() {
        let (hotspots, h_clusters, kernels, nonhotspots, n_clusters) = trained_world();
        // With a well-separated training world, self-evaluation should be
        // clean and feedback unnecessary.
        let fb = train_feedback(
            &hotspots,
            &h_clusters,
            &kernels,
            &nonhotspots,
            &n_clusters,
            &config(),
        )
        .unwrap();
        assert!(fb.is_none());
    }

    #[test]
    fn ambiguous_core_triggers_feedback_training() {
        // Build the Fig. 10 situation: hotspots and nonhotspots share an
        // almost identical core; only the ambit distinguishes them.
        let core = hotspot_core(100);
        let hotspots: Vec<Pattern> = (0..3).map(|_| pattern(&core)).collect();
        let mut with_ambit = core.clone();
        with_ambit.push(Rect::from_extents(1400, 1400, 2300, 2300));
        let nonhotspots: Vec<Pattern> = (0..3).map(|_| pattern(&with_ambit)).collect();

        let cfg = config();
        let h_clusters = classify_patterns(&hotspots, Region::Core, &cfg.cluster);
        let n_clusters = classify_patterns(&nonhotspots, Region::Core, &cfg.cluster);
        let medoids: Vec<Pattern> = n_clusters
            .iter()
            .map(|c| nonhotspots[c.medoid].clone())
            .collect();
        let kernels = train_cluster_kernels(&hotspots, &h_clusters, &medoids, &cfg).unwrap();

        // The medoid's core equals the hotspot core, so self-evaluation must
        // produce an extra and feedback training must engage.
        let fb = train_feedback(
            &hotspots,
            &h_clusters,
            &kernels,
            &nonhotspots,
            &n_clusters,
            &cfg,
        )
        .unwrap();
        let fb = fb.expect("ambiguous cores must trigger feedback learning");
        assert!(fb.extras_seen >= 1);

        // The feedback kernel separates by ambit: it confirms the bare-core
        // hotspot and reclaims the ambit-decorated nonhotspot.
        assert!(fb.confirms(&pattern(&core), &cfg));
        assert!(!fb.confirms(&pattern(&with_ambit), &cfg));
    }

    #[test]
    fn pad_tail_roundtrip() {
        let v = vec![9.0, 8.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let p = pad_tail(v.clone(), 12);
        assert_eq!(p.len(), 12);
        assert_eq!(&p[7..], &v[2..]);
    }
}
