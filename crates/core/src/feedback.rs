//! Feedback-kernel learning and evaluation (Section III-D4, Figs. 9–10).
//!
//! After multiple-kernel training, the nonhotspot medoids are self-evaluated
//! through the kernels. Medoids still flagged as hotspots ("extras") reveal
//! clusters whose *core* looks like a hotspot but whose *ambit* says
//! otherwise (Fig. 10). Those clusters are re-classified with the ambit
//! included, and a dedicated kernel is trained on the resulting sub-cluster
//! medoids (nonhotspot side) against the hotspots of the offending kernels
//! (hotspot side). At evaluation time the feedback kernel reclaims flagged
//! clips back to nonhotspot, cutting the false alarm without touching the
//! hit count of true hotspots.

use crate::config::DetectorConfig;
use crate::pattern::Pattern;
use crate::training::{
    classify_patterns, density_grid, feature_vector_padded, train_iterative, ClusterKernel,
    FeatureMemo, PatternCluster, Region,
};
use hotspot_svm::{BatchEvaluator, CompiledModel, SvmModel, TrainError};
use hotspot_topo::TopoSignature;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The kernels of the multiple-kernel stage that flag `pattern` as a
/// hotspot (empty = classified nonhotspot everywhere).
///
/// A kernel participates when the pattern's core topology matches its
/// cluster signature exactly, or the core density grid lies within
/// `radius × fuzziness` of the cluster centroid. Features are extracted
/// once per clip and padded vectors are shared across kernels of the same
/// feature length ([`FeatureMemo`]).
pub fn flagging_kernels(
    kernels: &[ClusterKernel],
    pattern: &Pattern,
    config: &DetectorConfig,
    threshold: f64,
) -> Vec<usize> {
    flagging_kernels_with(kernels, None, pattern, config, threshold)
}

/// [`flagging_kernels`] with the decision-value engine selectable: `None`
/// evaluates through the reference [`SvmModel::decision_value`]; `Some`
/// routes every admitted kernel through its [`CompiledModel`] (indexed
/// 1:1 with `kernels`) on the given [`BatchEvaluator`]'s scratch.
pub(crate) fn flagging_kernels_with(
    kernels: &[ClusterKernel],
    mut compiled: Option<(&[CompiledModel], &mut BatchEvaluator)>,
    pattern: &Pattern,
    config: &DetectorConfig,
    threshold: f64,
) -> Vec<usize> {
    let window = pattern.window.core;
    let rects: Vec<_> = pattern
        .rects
        .iter()
        .filter_map(|r| r.intersection(&window))
        .map(|r| r.translate(-window.min()))
        .collect();
    let local = hotspot_geom::Rect::from_extents(0, 0, window.width(), window.height());
    let signature = TopoSignature::of(&local, &rects);
    let grid = density_grid(pattern, Region::Core, config);

    let mut memo = FeatureMemo::new(pattern, Region::Core, config);
    let mut out = Vec::new();
    for (idx, k) in kernels.iter().enumerate() {
        let topo_match = signature == k.signature;
        let density_match = if grid.nx() == k.centroid.nx() && grid.ny() == k.centroid.ny() {
            grid.distance(&k.centroid).distance <= k.radius.max(1e-9) * config.fuzziness
        } else {
            false
        };
        if !topo_match && !density_match {
            continue;
        }
        let features = memo.padded(k.feature_len);
        let decision = match compiled.as_mut() {
            Some((models, eval)) => eval.decision_value(&models[idx], features),
            None => k.model.decision_value(features),
        };
        if decision > threshold {
            out.push(idx);
        }
    }
    out
}

/// The trained feedback kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackKernel {
    /// The SVM trained on clip-region (core + ambit) features.
    pub model: SvmModel,
    /// Feature-vector length the kernel expects.
    pub feature_len: usize,
    /// How many extras the self-evaluation produced.
    pub extras_seen: usize,
}

impl FeedbackKernel {
    /// `true` when the feedback kernel *confirms* the hotspot flag;
    /// `false` reclaims the clip as a nonhotspot.
    pub fn confirms(&self, pattern: &Pattern, config: &DetectorConfig) -> bool {
        let features = feature_vector_padded(pattern, Region::Clip, config, self.feature_len);
        self.model.decision_value(&features) > 0.0
    }

    /// [`confirms`](Self::confirms) through the compiled inference engine.
    pub(crate) fn confirms_with(
        &self,
        pattern: &Pattern,
        config: &DetectorConfig,
        compiled: &CompiledModel,
        eval: &mut BatchEvaluator,
    ) -> bool {
        let features = feature_vector_padded(pattern, Region::Clip, config, self.feature_len);
        eval.decision_value(compiled, &features) > 0.0
    }
}

/// Trains the feedback kernel (Fig. 9(b)–(c)).
///
/// Returns `Ok(None)` when self-evaluation produces no extras — every
/// nonhotspot medoid is already classified correctly, so no feedback kernel
/// is needed.
///
/// # Errors
///
/// Propagates SVM training failures.
pub fn train_feedback(
    hotspots: &[Pattern],
    hotspot_clusters: &[PatternCluster],
    kernels: &[ClusterKernel],
    nonhotspots: &[Pattern],
    nonhotspot_clusters: &[PatternCluster],
    config: &DetectorConfig,
) -> Result<Option<FeedbackKernel>, TrainError> {
    // Self-evaluation: push every nonhotspot medoid through the kernels.
    let mut offending_kernels: BTreeSet<usize> = BTreeSet::new();
    let mut extra_cluster_ids: BTreeSet<usize> = BTreeSet::new();
    for (cid, cluster) in nonhotspot_clusters.iter().enumerate() {
        let medoid = &nonhotspots[cluster.medoid];
        let flags = flagging_kernels(kernels, medoid, config, config.decision_threshold);
        if !flags.is_empty() {
            extra_cluster_ids.insert(cid);
            offending_kernels.extend(flags);
        }
    }
    if extra_cluster_ids.is_empty() {
        return Ok(None);
    }

    // Nonhotspot side: re-classify the offending clusters' members with the
    // ambit region included, then keep the sub-cluster medoids.
    let mut member_patterns: Vec<Pattern> = Vec::new();
    for &cid in &extra_cluster_ids {
        for &m in &nonhotspot_clusters[cid].members {
            member_patterns.push(nonhotspots[m].clone());
        }
    }
    let sub_clusters = classify_patterns(&member_patterns, Region::Clip, &config.cluster);
    let nonhotspot_training: Vec<&Pattern> = sub_clusters
        .iter()
        .map(|c| &member_patterns[c.medoid])
        .collect();

    // Hotspot side: the hotspots of every kernel that produced extras
    // (kernels map 1:1 to hotspot clusters).
    let mut hotspot_training: Vec<&Pattern> = Vec::new();
    for &kid in &offending_kernels {
        if let Some(cluster) = hotspot_clusters.get(kid) {
            for &m in &cluster.members {
                hotspot_training.push(&hotspots[m]);
            }
        }
    }
    if hotspot_training.is_empty() {
        return Ok(None);
    }

    // Clip-region features; pad everything to the longest vector.
    let raw: Vec<(Vec<f64>, f64)> = hotspot_training
        .iter()
        .map(|p| {
            (
                crate::training::feature_vector(p, Region::Clip, config),
                1.0,
            )
        })
        .chain(nonhotspot_training.iter().map(|p| {
            (
                crate::training::feature_vector(p, Region::Clip, config),
                -1.0,
            )
        }))
        .collect();
    let feature_len = raw.iter().map(|(v, _)| v.len()).max().unwrap_or(5).max(5);
    let mut x = Vec::with_capacity(raw.len());
    let mut y = Vec::with_capacity(raw.len());
    for (v, label) in raw {
        x.push(pad_tail(v, feature_len));
        y.push(label);
    }

    let fit = train_iterative(&x, &y, config)?;
    Ok(Some(FeedbackKernel {
        model: fit.model,
        feature_len,
        extras_seen: extra_cluster_ids.len(),
    }))
}

/// Pads/truncates preserving the 5-value nontopological tail.
fn pad_tail(mut v: Vec<f64>, len: usize) -> Vec<f64> {
    if v.len() == len {
        return v;
    }
    let tail: Vec<f64> = v.split_off(v.len().saturating_sub(5));
    v.resize(len.saturating_sub(5), 0.0);
    v.extend(tail);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::train_cluster_kernels;
    use hotspot_geom::{Point, Rect};
    use hotspot_layout::ClipShape;

    fn shape() -> ClipShape {
        ClipShape::new(1200, 4800).unwrap()
    }

    fn pattern(rects: &[Rect]) -> Pattern {
        Pattern::new(shape().window_centered(Point::new(0, 0)), rects)
    }

    /// Hotspot motif: two bars with a dangerously small gap in the core.
    fn hotspot_core(gap: i64) -> Vec<Rect> {
        vec![
            Rect::from_extents(-500, -200, -gap / 2, 200),
            Rect::from_extents(gap / 2, -200, 500, 200),
        ]
    }

    /// Nonhotspot: same two-bar topology but a comfortable gap.
    fn safe_core(gap: i64) -> Vec<Rect> {
        hotspot_core(gap)
    }

    fn config() -> DetectorConfig {
        DetectorConfig {
            max_learning_rounds: 4,
            ..Default::default()
        }
    }

    type TrainedWorld = (
        Vec<Pattern>,
        Vec<PatternCluster>,
        Vec<ClusterKernel>,
        Vec<Pattern>,
        Vec<PatternCluster>,
    );

    fn trained_world() -> TrainedWorld {
        let hotspots: Vec<Pattern> = (0..4)
            .map(|i| pattern(&hotspot_core(60 + i * 10)))
            .collect();
        let nonhotspots: Vec<Pattern> = (0..4).map(|i| pattern(&safe_core(700 + i * 40))).collect();
        let cfg = config();
        let h_clusters = classify_patterns(&hotspots, Region::Core, &cfg.cluster);
        let n_clusters = classify_patterns(&nonhotspots, Region::Core, &cfg.cluster);
        let medoids: Vec<Pattern> = n_clusters
            .iter()
            .map(|c| nonhotspots[c.medoid].clone())
            .collect();
        let kernels = train_cluster_kernels(&hotspots, &h_clusters, &medoids, &cfg).unwrap();
        (hotspots, h_clusters, kernels, nonhotspots, n_clusters)
    }

    #[test]
    fn flagging_kernels_fire_on_hotspots() {
        let (_, _, kernels, _, _) = trained_world();
        let hs = pattern(&hotspot_core(70));
        let flags = flagging_kernels(&kernels, &hs, &config(), 0.0);
        assert!(!flags.is_empty(), "hotspot-like clip should be flagged");
    }

    #[test]
    fn flagging_kernels_pass_safe_patterns() {
        let (_, _, kernels, _, _) = trained_world();
        let safe = pattern(&safe_core(720));
        let flags = flagging_kernels(&kernels, &safe, &config(), 0.0);
        assert!(flags.is_empty(), "safe clip should pass, got {flags:?}");
    }

    #[test]
    fn no_extras_no_feedback_kernel() {
        let (hotspots, h_clusters, kernels, nonhotspots, n_clusters) = trained_world();
        // With a well-separated training world, self-evaluation should be
        // clean and feedback unnecessary.
        let fb = train_feedback(
            &hotspots,
            &h_clusters,
            &kernels,
            &nonhotspots,
            &n_clusters,
            &config(),
        )
        .unwrap();
        assert!(fb.is_none());
    }

    #[test]
    fn ambiguous_core_triggers_feedback_training() {
        // Build the Fig. 10 situation: hotspots and nonhotspots share an
        // almost identical core; only the ambit distinguishes them.
        let core = hotspot_core(100);
        let hotspots: Vec<Pattern> = (0..3).map(|_| pattern(&core)).collect();
        let mut with_ambit = core.clone();
        with_ambit.push(Rect::from_extents(1400, 1400, 2300, 2300));
        let nonhotspots: Vec<Pattern> = (0..3).map(|_| pattern(&with_ambit)).collect();

        let cfg = config();
        let h_clusters = classify_patterns(&hotspots, Region::Core, &cfg.cluster);
        let n_clusters = classify_patterns(&nonhotspots, Region::Core, &cfg.cluster);
        let medoids: Vec<Pattern> = n_clusters
            .iter()
            .map(|c| nonhotspots[c.medoid].clone())
            .collect();
        let kernels = train_cluster_kernels(&hotspots, &h_clusters, &medoids, &cfg).unwrap();

        // The medoid's core equals the hotspot core, so self-evaluation must
        // produce an extra and feedback training must engage.
        let fb = train_feedback(
            &hotspots,
            &h_clusters,
            &kernels,
            &nonhotspots,
            &n_clusters,
            &cfg,
        )
        .unwrap();
        let fb = fb.expect("ambiguous cores must trigger feedback learning");
        assert!(fb.extras_seen >= 1);

        // The feedback kernel separates by ambit: it confirms the bare-core
        // hotspot and reclaims the ambit-decorated nonhotspot.
        assert!(fb.confirms(&pattern(&core), &cfg));
        assert!(!fb.confirms(&pattern(&with_ambit), &cfg));
    }

    #[test]
    fn pad_tail_roundtrip() {
        let v = vec![9.0, 8.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let p = pad_tail(v.clone(), 12);
        assert_eq!(p.len(), 12);
        assert_eq!(&p[7..], &v[2..]);
    }
}
