//! Machine-learning-based lithography hotspot detection — the framework of
//! Yu, Lin, Jiang & Chiang (DAC 2013 / TCAD 2015), reimplemented in Rust.
//!
//! The pipeline (Fig. 3 of the paper):
//!
//! **Training** — hotspot patterns are upsampled by data shifting
//! ([`balance`]), all patterns are classified by topology (string-based,
//! then density-based — [`training`]), nonhotspots are downsampled to
//! cluster medoids, one C-SVM kernel is trained per hotspot cluster with
//! iterative `(C, γ)` adaptation, and a **feedback kernel** ([`feedback`])
//! is trained on the ambit features of self-evaluation false alarms.
//!
//! **Evaluation** — layout clips are extracted by polygon dissection with
//! density filtering ([`extraction`]), each clip is classified by the
//! multiple kernels and the feedback kernel, and reported hotspots pass
//! **redundant clip removal** ([`removal`]): merging, reframing, discarding
//! and shifting. [`metrics`] implements the contest's hit/extra scoring.
//!
//! The [`engine`] module houses the instrumented pipeline machinery: the
//! eight canonical stages, the work-stealing executor both phases schedule
//! on, and the serialisable [`PipelineTelemetry`] they produce. For
//! production-scale layouts, [`scan`] streams tiles through the evaluation
//! pipeline with a density prefilter and bounded memory
//! ([`HotspotDetector::scan_layout`](detector::HotspotDetector::scan_layout)),
//! and [`obs`] watches long runs live — lock-free progress counters, a
//! Prometheus `/metrics` endpoint and an NDJSON event log — without
//! changing a single output bit.
//!
//! The one-stop API is [`HotspotDetector`], configured through its builder:
//!
//! ```no_run
//! use hotspot_core::{HotspotDetector, TrainingSet};
//! use hotspot_layout::{LayerId, Layout};
//!
//! # fn get_training_set() -> TrainingSet { unimplemented!() }
//! # fn get_layout() -> Layout { unimplemented!() }
//! let training: TrainingSet = get_training_set();
//! let layout: Layout = get_layout();
//! let detector = HotspotDetector::builder()
//!     .threads(4)
//!     .train(&training)?;
//! let report = detector.detect(&layout, LayerId::METAL1)?;
//! println!("{} hotspots reported", report.reported.len());
//! # Ok::<(), hotspot_core::DetectError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod balance;
pub mod cancel;
pub mod config;
pub mod detector;
pub mod engine;
pub mod extraction;
pub mod feedback;
pub mod journal;
pub mod metrics;
pub mod multilayer;
pub mod obs;
pub mod pattern;
pub mod patterning;
pub mod removal;
pub mod scan;
pub mod tile_cache;
pub mod training;

pub use cancel::{AbortReason, CancelToken};
pub use config::{AblationSwitches, AdmissionParams, DetectorConfig, DistributionFilter, EvalMode};
#[allow(deprecated)]
pub use detector::TrainPipelineError;
pub use detector::{DetectError, DetectionReport, DetectorBuilder, HotspotDetector};
pub use engine::{
    FaultPlan, FaultSite, PipelineTelemetry, StageTelemetry, TaskFailure, TELEMETRY_SCHEMA_VERSION,
};
pub use extraction::{extract_clips, RectIndex};
pub use feedback::{EvalEngine, EvalScratch};
pub use hotspot_geom::RasterMode;
pub use metrics::{score, Evaluation};
pub use multilayer::{MultilayerDetector, MultilayerPattern, MultilayerTrainingSet};
pub use obs::{
    CounterSnapshot, MetricsServer, NdjsonSink, ObsEvent, ObsHub, ObsRecord, ObsSink, ProgressSink,
    Sampler, OBS_SCHEMA_VERSION,
};
pub use pattern::{Label, Pattern, TrainingSet};
pub use patterning::{DecomposedPattern, DoublePatterningDetector};
pub use scan::{FailureKind, FailurePolicy, QuarantinedTile, ScanConfig, ScanReport};
pub use tile_cache::{CacheEntry, CacheHeader, CacheLoadStats, TileCache};
pub use training::{ClusterKernel, PatternCluster};
