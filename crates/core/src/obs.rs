//! Live observability: span events, lock-free progress counters and
//! pluggable sinks (Prometheus `/metrics`, NDJSON event log, stderr
//! progress reporter).
//!
//! Everything in this module is *observation only*: installing an
//! [`ObsHub`] never changes what the pipeline computes. Reports, digests
//! and telemetry contents stay bit-identical with and without sinks — the
//! hub is how you *watch* a long scan, not how you steer it.
//!
//! # Architecture
//!
//! * [`ObsHub`] is a fan-out registry. Pipeline code holds an
//!   `Option<Arc<ObsHub>>`; when it is `None` every instrumentation point
//!   is a single branch and nothing else.
//! * Hot paths (per tile, per clip, per executor task) record into
//!   [`Counters`]: sharded, cache-line-aligned `AtomicU64` slots bumped
//!   with `Ordering::Relaxed` — no locks, no allocation. Each worker
//!   thread is assigned a shard round-robin on first use, so concurrent
//!   workers do not contend on the same cache line.
//! * Cooler paths (per stage, per batch, per journal sync) emit
//!   [`ObsEvent`]s through [`ObsHub::emit`], which builds the event only
//!   when at least one sink is registered.
//! * A [`Sampler`] thread snapshots the counters at a configurable
//!   interval into a [`CounterSnapshot`] and broadcasts it to every sink
//!   (and as an [`ObsEvent::Snapshot`] record), decoupling reporting
//!   frequency from pipeline work.
//!
//! # Shipped sinks
//!
//! * [`NdjsonSink`] — appends one schema-versioned JSON object per line
//!   ([`ObsRecord`], `v = `[`OBS_SCHEMA_VERSION`]); [`read_events`] is the
//!   matching reader.
//! * [`MetricsServer`] — a tiny blocking TCP listener answering HTTP
//!   `GET /metrics` with Prometheus text exposition format
//!   ([`render_prometheus`]).
//! * [`ProgressSink`] — renders tiles done / in flight / quarantined,
//!   clips/sec and an ETA to stderr.

use crate::engine::stage::StageId;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, IsTerminal, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Schema version stamped into every [`ObsRecord`]; [`read_events`]
/// rejects logs written by a different version.
///
/// * v1 — initial schema: externally tagged [`ObsEvent`] wrapped in
///   `{"v": 1, "seq": N, "event": {...}}`.
pub const OBS_SCHEMA_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Pipeline-global monotonic counters recorded on hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Tiles handed to a scan worker (prefilter + evaluation started).
    TilesStarted,
    /// Tiles fully processed (evaluated, prefiltered away or quarantined).
    TilesDone,
    /// Tiles skipped by the conservative density prefilter.
    TilesPrefiltered,
    /// Tiles quarantined after exhausting the retry budget.
    TilesQuarantined,
    /// Clips extracted from tile cores.
    ClipsExtracted,
    /// Clips flagged as hotspots (pre-removal).
    ClipsFlagged,
    /// Clips pushed through the multi-kernel evaluation engine.
    ClipsEvaluated,
    /// Flagged clips reclaimed by the feedback kernel.
    ClipsReclaimed,
    /// 64-clip SVM inference batches executed.
    EvalBatches,
    /// Failed tile tasks re-attempted once before quarantine.
    TaskRetries,
    /// Tasks completed by the work-stealing executor (any stage label).
    ExecutorTasks,
    /// Records appended to the scan resume journal.
    JournalAppends,
    /// `fsync` barriers issued by the scan resume journal.
    JournalSyncs,
    /// Tiles served from the content-addressed result cache.
    CacheHits,
    /// Tiles the cache could not serve (new, edited, or lost).
    CacheMisses,
    /// Cache entries invalidated: stale fingerprints, corrupt lines, or a
    /// wholesale header-mismatch discard.
    CacheInvalidated,
    /// Tiles quarantined because they exceeded the soft per-tile budget
    /// ([`crate::ScanConfig::tile_timeout`]) — a subset of
    /// [`Counter::TilesQuarantined`].
    TilesTimedOut,
}

/// Number of [`Counter`] variants (global slot count).
const GLOBAL_SLOTS: usize = 17;

/// Per-stage counter families recorded alongside the global counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageCounter {
    /// Executor tasks completed under this stage label.
    Tasks,
    /// Panicking task attempts attributed to this stage.
    Failures,
    /// Clip-kernel pairs admitted to SVM evaluation.
    Admissions,
    /// Centroid-orientation rows pruned by the compiled admission router.
    AdmissionSkips,
}

/// Number of [`StageCounter`] variants per stage.
const STAGE_SLOTS: usize = 4;

/// Total atomic slots per shard: globals then `8 × 4` per-stage slots.
const SLOT_COUNT: usize = GLOBAL_SLOTS + StageId::ALL.len() * STAGE_SLOTS;

/// Number of counter shards. Workers are assigned shards round-robin;
/// a power of two keeps the modulo cheap.
const SHARDS: usize = 8;

impl Counter {
    fn slot(self) -> usize {
        self as usize
    }
}

fn stage_slot(stage: StageId, counter: StageCounter) -> usize {
    GLOBAL_SLOTS + stage.index() * STAGE_SLOTS + counter as usize
}

/// One cache-line-aligned bank of counter slots owned by a worker group.
#[derive(Debug)]
#[repr(align(64))]
struct Shard {
    slots: [AtomicU64; SLOT_COUNT],
}

impl Shard {
    fn new() -> Shard {
        Shard {
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Round-robin assignment of worker threads to counter shards.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn my_shard() -> usize {
    MY_SHARD.with(|cell| {
        let mut shard = cell.get();
        if shard == usize::MAX {
            shard = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            cell.set(shard);
        }
        shard
    })
}

/// Sharded lock-free pipeline counters.
///
/// Recording is a single `fetch_add(Relaxed)` on the calling thread's
/// shard — zero allocation, no locking, no ordering constraints on the
/// pipeline's own memory accesses. Relaxed ordering is sufficient because
/// the counters carry no synchronisation duty: readers
/// ([`Counters::snapshot`]) only need eventually-consistent totals for
/// display,
/// never happens-before edges, and each `AtomicU64` is individually
/// coherent so no increment is ever lost.
#[derive(Debug)]
pub struct Counters {
    shards: Box<[Shard]>,
}

impl Counters {
    fn new() -> Counters {
        Counters {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Adds `n` to a global counter on the calling thread's shard.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        self.shards[my_shard()].slots[counter.slot()].fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` to a per-stage counter on the calling thread's shard.
    #[inline]
    pub fn add_stage(&self, stage: StageId, counter: StageCounter, n: u64) {
        self.shards[my_shard()].slots[stage_slot(stage, counter)].fetch_add(n, Ordering::Relaxed);
    }

    fn total(&self, slot: usize) -> u64 {
        self.shards
            .iter()
            .map(|s| s.slots[slot].load(Ordering::Relaxed))
            .sum()
    }

    /// Sums all shards into a serialisable snapshot. `uptime_ms` stamps
    /// how long the owning hub has been alive (used for rate estimates).
    pub fn snapshot(&self, uptime_ms: u64) -> CounterSnapshot {
        let g = |c: Counter| self.total(c.slot());
        CounterSnapshot {
            uptime_ms,
            tiles_started: g(Counter::TilesStarted),
            tiles_done: g(Counter::TilesDone),
            tiles_prefiltered: g(Counter::TilesPrefiltered),
            tiles_quarantined: g(Counter::TilesQuarantined),
            clips_extracted: g(Counter::ClipsExtracted),
            clips_flagged: g(Counter::ClipsFlagged),
            clips_evaluated: g(Counter::ClipsEvaluated),
            clips_reclaimed: g(Counter::ClipsReclaimed),
            eval_batches: g(Counter::EvalBatches),
            task_retries: g(Counter::TaskRetries),
            executor_tasks: g(Counter::ExecutorTasks),
            journal_appends: g(Counter::JournalAppends),
            journal_syncs: g(Counter::JournalSyncs),
            cache_hits: g(Counter::CacheHits),
            cache_misses: g(Counter::CacheMisses),
            cache_invalidated: g(Counter::CacheInvalidated),
            tiles_timed_out: g(Counter::TilesTimedOut),
            deadline_remaining_ms: None,
            stages: StageId::ALL
                .iter()
                .map(|&stage| StageCounterSnapshot {
                    stage: stage.name().to_string(),
                    tasks: self.total(stage_slot(stage, StageCounter::Tasks)),
                    failures: self.total(stage_slot(stage, StageCounter::Failures)),
                    admissions: self.total(stage_slot(stage, StageCounter::Admissions)),
                    admission_skips: self.total(stage_slot(stage, StageCounter::AdmissionSkips)),
                })
                .collect(),
        }
    }
}

/// Point-in-time totals of every counter, summed across shards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Milliseconds since the owning [`ObsHub`] was created.
    pub uptime_ms: u64,
    /// Tiles handed to a scan worker.
    pub tiles_started: u64,
    /// Tiles fully processed (evaluated, prefiltered or quarantined).
    pub tiles_done: u64,
    /// Tiles skipped by the density prefilter.
    pub tiles_prefiltered: u64,
    /// Tiles quarantined after exhausting the retry budget.
    pub tiles_quarantined: u64,
    /// Clips extracted from tile cores.
    pub clips_extracted: u64,
    /// Clips flagged as hotspots (pre-removal).
    pub clips_flagged: u64,
    /// Clips pushed through the evaluation engine.
    pub clips_evaluated: u64,
    /// Flagged clips reclaimed by the feedback kernel.
    pub clips_reclaimed: u64,
    /// 64-clip SVM inference batches executed.
    pub eval_batches: u64,
    /// Failed tile tasks re-attempted before quarantine.
    pub task_retries: u64,
    /// Tasks completed by the work-stealing executor.
    pub executor_tasks: u64,
    /// Records appended to the scan resume journal.
    pub journal_appends: u64,
    /// `fsync` barriers issued by the scan resume journal.
    pub journal_syncs: u64,
    /// Tiles served from the content-addressed result cache. Absent in
    /// pre-cache snapshots, which deserialise with 0.
    #[serde(default)]
    pub cache_hits: u64,
    /// Tiles the cache could not serve. Absent in pre-cache snapshots.
    #[serde(default)]
    pub cache_misses: u64,
    /// Cache entries invalidated (stale, corrupt, or discarded). Absent
    /// in pre-cache snapshots.
    #[serde(default)]
    pub cache_invalidated: u64,
    /// Tiles quarantined for blowing the soft per-tile budget. Absent in
    /// pre-deadline snapshots, which deserialise with 0.
    #[serde(default)]
    pub tiles_timed_out: u64,
    /// Wall-clock budget left before the scan's
    /// [`crate::ScanConfig::deadline`] expires, stamped by the owning
    /// [`ObsHub`] ([`ObsHub::set_deadline_remaining_ms`]). `None` when no
    /// deadline is armed (and in pre-deadline snapshots).
    #[serde(default)]
    pub deadline_remaining_ms: Option<u64>,
    /// Per-stage counter families in canonical stage order.
    pub stages: Vec<StageCounterSnapshot>,
}

impl CounterSnapshot {
    /// Tiles currently in flight (started but not yet done).
    pub fn tiles_in_flight(&self) -> u64 {
        self.tiles_started.saturating_sub(self.tiles_done)
    }
}

/// Per-stage slice of a [`CounterSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageCounterSnapshot {
    /// Stable snake_case stage name ([`StageId::name`]).
    pub stage: String,
    /// Executor tasks completed under this stage label.
    pub tasks: u64,
    /// Panicking task attempts attributed to this stage.
    pub failures: u64,
    /// Clip-kernel pairs admitted to SVM evaluation.
    pub admissions: u64,
    /// Centroid-orientation rows pruned by the admission router.
    pub admission_skips: u64,
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// A structured pipeline event, delivered to every registered sink.
///
/// Serialised externally tagged with the variant name as the key
/// (`{"StageBegin": {...}}`) — the NDJSON line format is stable under
/// [`OBS_SCHEMA_VERSION`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ObsEvent {
    /// A streaming layout scan started.
    ScanStarted {
        /// Total tiles the grid will visit.
        tiles_total: usize,
        /// Executor worker threads.
        threads: usize,
        /// Bounded in-flight tile window.
        window: usize,
    },
    /// An executor stage began (span open).
    StageBegin {
        /// Stage label (a canonical [`StageId::name`] or an ad-hoc label
        /// such as `scan_tile`).
        stage: String,
        /// Items scheduled into the stage.
        items: usize,
    },
    /// An executor stage finished (span close).
    StageEnd {
        /// Stage label, matching the paired [`ObsEvent::StageBegin`].
        stage: String,
        /// Items scheduled into the stage.
        items: usize,
        /// Tasks that panicked and were isolated.
        failures: usize,
    },
    /// A bounded scan window (batch) of tiles completed.
    BatchCompleted {
        /// Tiles processed in this batch.
        tiles: usize,
        /// Clips extracted in this batch.
        clips: usize,
        /// Clips flagged in this batch.
        flagged: usize,
        /// Clip-kernel pairs admitted to SVM evaluation in this batch.
        admissions: u64,
        /// Router-pruned centroid rows in this batch.
        admission_skips: u64,
    },
    /// A tile was quarantined after its retry failed.
    TileQuarantined {
        /// Stable row-major tile id.
        tile: u64,
        /// Stage label of the failing task.
        stage: String,
    },
    /// The resume journal flushed a batch to disk.
    JournalSynced {
        /// Records appended since the journal was opened or resumed.
        appended: usize,
    },
    /// A tile was served from the content-addressed result cache.
    CacheHit {
        /// Stable row-major tile id.
        tile: u64,
    },
    /// A tile could not be served from the cache and was recomputed.
    CacheMiss {
        /// Stable row-major tile id.
        tile: u64,
        /// `true` when a stored entry existed but its content fingerprint
        /// no longer matched (the tile was edited).
        invalidated: bool,
    },
    /// The cache store was (partly) invalidated at open time.
    CacheInvalidated {
        /// Entries that survived loading (0 on a wholesale discard).
        entries: usize,
        /// Corrupt entry lines rejected individually.
        rejected: usize,
        /// `true` when the whole store was discarded (header mismatch:
        /// different model, grid, layer, or threshold).
        discarded: bool,
    },
    /// A tile was quarantined for exceeding the soft per-tile budget
    /// ([`crate::ScanConfig::tile_timeout`]). Paired with a
    /// [`ObsEvent::TileQuarantined`] for the same tile.
    TileTimedOut {
        /// Stable row-major tile id.
        tile: u64,
        /// The exceeded soft budget, in milliseconds.
        budget_ms: u64,
    },
    /// Periodic heartbeat from the scan's watchdog thread.
    WatchdogTick {
        /// Tiles currently in flight on executor workers.
        in_flight: u64,
        /// Milliseconds left before the global deadline, when one is
        /// armed.
        deadline_remaining_ms: Option<u64>,
    },
    /// A streaming layout scan stopped early — deadline, watchdog, or a
    /// caller's cancel token — after draining its in-flight window and
    /// syncing the journal, leaving a resumable prefix.
    ScanAborted {
        /// Stable [`crate::AbortReason::name`] string.
        reason: String,
        /// Tiles fully processed before the abort.
        tiles_scanned: usize,
    },
    /// A streaming layout scan finished.
    ScanCompleted {
        /// Tiles fully evaluated.
        tiles_scanned: usize,
        /// Hotspots reported after redundant-clip removal.
        reported: usize,
        /// Tiles quarantined by the failure policy.
        quarantined: usize,
    },
    /// A periodic counter snapshot from the [`Sampler`].
    Snapshot {
        /// The counter totals at sampling time.
        counters: CounterSnapshot,
    },
}

/// A schema-versioned, sequence-numbered envelope around an [`ObsEvent`]
/// — exactly one NDJSON line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsRecord {
    /// Event-log schema version ([`OBS_SCHEMA_VERSION`]).
    pub v: u32,
    /// Monotonic per-hub sequence number.
    pub seq: u64,
    /// The event payload.
    pub event: ObsEvent,
}

// ---------------------------------------------------------------------------
// Sink trait + hub
// ---------------------------------------------------------------------------

/// A destination for pipeline events and counter snapshots.
///
/// Sinks must be infallible from the pipeline's point of view: I/O errors
/// are swallowed (observability must never fail a scan) and
/// implementations must be `Send + Sync` because events arrive from
/// worker and sampler threads.
///
/// ```
/// use hotspot_core::obs::{ObsEvent, ObsHub, ObsRecord, ObsSink};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// #[derive(Default)]
/// struct CountingSink(AtomicUsize);
///
/// impl ObsSink for CountingSink {
///     fn name(&self) -> &str {
///         "counting"
///     }
///     fn on_event(&self, _record: &ObsRecord) {
///         self.0.fetch_add(1, Ordering::Relaxed);
///     }
/// }
///
/// let hub = ObsHub::new();
/// hub.register(Box::new(CountingSink::default()));
/// hub.emit(|| ObsEvent::ScanStarted { tiles_total: 4, threads: 1, window: 2 });
/// assert_eq!(hub.sink_names(), vec!["counting".to_string()]);
/// ```
pub trait ObsSink: Send + Sync {
    /// Short stable sink name, recorded in telemetry (schema v6).
    fn name(&self) -> &str;

    /// Called for every emitted event (from pipeline and sampler threads).
    fn on_event(&self, record: &ObsRecord);

    /// Called by the [`Sampler`] with each periodic counter snapshot.
    /// Default: ignored.
    fn on_snapshot(&self, snapshot: &CounterSnapshot) {
        let _ = snapshot;
    }
}

/// Fan-out registry: owns the [`Counters`], assigns sequence numbers and
/// broadcasts events/snapshots to every registered [`ObsSink`].
pub struct ObsHub {
    seq: AtomicU64,
    counters: Counters,
    sinks: RwLock<Vec<Box<dyn ObsSink>>>,
    endpoint_names: Mutex<Vec<String>>,
    started: Instant,
    /// Milliseconds left on an armed scan deadline; negative = no
    /// deadline. Written by the scan watchdog, read into snapshots.
    deadline_remaining_ms: AtomicI64,
}

impl ObsHub {
    /// Creates a hub with no sinks. Until a sink is registered,
    /// [`emit`](Self::emit) is a read-lock plus an empty check and no
    /// event is constructed.
    pub fn new() -> Arc<ObsHub> {
        Arc::new(ObsHub {
            seq: AtomicU64::new(0),
            counters: Counters::new(),
            sinks: RwLock::new(Vec::new()),
            endpoint_names: Mutex::new(Vec::new()),
            started: Instant::now(),
            deadline_remaining_ms: AtomicI64::new(-1),
        })
    }

    /// Registers a sink; it receives every subsequent event and snapshot.
    pub fn register(&self, sink: Box<dyn ObsSink>) {
        self.sinks.write().push(sink);
    }

    /// Records a pull-based endpoint (e.g. the Prometheus
    /// [`MetricsServer`]) by name only, so it appears in
    /// [`sink_names`](Self::sink_names) and telemetry without receiving
    /// pushed events.
    pub fn register_endpoint(&self, name: &str) {
        self.endpoint_names.lock().push(name.to_string());
    }

    /// The hub's shared counters, for hot-path recording.
    #[inline]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Milliseconds since the hub was created.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Builds and delivers an event to all sinks. The closure runs only
    /// when at least one sink is registered, so event construction (and
    /// its allocations) is skipped entirely on unobserved runs.
    pub fn emit(&self, make: impl FnOnce() -> ObsEvent) {
        let sinks = self.sinks.read();
        if sinks.is_empty() {
            return;
        }
        let record = ObsRecord {
            v: OBS_SCHEMA_VERSION,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            event: make(),
        };
        for sink in sinks.iter() {
            sink.on_event(&record);
        }
    }

    /// Arms (or refreshes) the `hotspot_deadline_remaining_seconds`
    /// gauge. Called periodically by the scan's watchdog thread while a
    /// [`crate::ScanConfig::deadline`] is set.
    pub fn set_deadline_remaining_ms(&self, remaining_ms: u64) {
        self.deadline_remaining_ms
            .store(remaining_ms.min(i64::MAX as u64) as i64, Ordering::Relaxed);
    }

    /// Disarms the deadline gauge (no deadline, or the scan ended).
    pub fn clear_deadline_remaining(&self) {
        self.deadline_remaining_ms.store(-1, Ordering::Relaxed);
    }

    /// Sums the counters into a snapshot stamped with the hub uptime.
    pub fn snapshot(&self) -> CounterSnapshot {
        let mut snapshot = self.counters.snapshot(self.uptime_ms());
        let remaining = self.deadline_remaining_ms.load(Ordering::Relaxed);
        if remaining >= 0 {
            snapshot.deadline_remaining_ms = Some(remaining as u64);
        }
        snapshot
    }

    /// Takes a snapshot and delivers it to every sink — both as an
    /// [`ObsEvent::Snapshot`] record and via [`ObsSink::on_snapshot`].
    pub fn broadcast_snapshot(&self) {
        let sinks = self.sinks.read();
        if sinks.is_empty() {
            return;
        }
        let snapshot = self.snapshot();
        let record = ObsRecord {
            v: OBS_SCHEMA_VERSION,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            event: ObsEvent::Snapshot {
                counters: snapshot.clone(),
            },
        };
        for sink in sinks.iter() {
            sink.on_event(&record);
            sink.on_snapshot(&snapshot);
        }
    }

    /// Names of all registered sinks and endpoints, in registration
    /// order — recorded into `PipelineTelemetry::obs_sinks` (schema v6).
    pub fn sink_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .sinks
            .read()
            .iter()
            .map(|s| s.name().to_string())
            .collect();
        names.extend(self.endpoint_names.lock().iter().cloned());
        names
    }
}

impl fmt::Debug for ObsHub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsHub")
            .field("sinks", &self.sink_names())
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// NDJSON sink + reader
// ---------------------------------------------------------------------------

/// Appends every event as one JSON object per line (NDJSON).
///
/// The file is opened in append mode so an event log can sit alongside a
/// scan's resume journal across kill/resume cycles without clobbering
/// earlier records. Each line is flushed as written; write errors are
/// swallowed (observability never fails the pipeline).
pub struct NdjsonSink {
    out: Mutex<BufWriter<File>>,
}

impl NdjsonSink {
    /// Opens (or creates) `path` for appending.
    pub fn create(path: impl AsRef<Path>) -> io::Result<NdjsonSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(NdjsonSink {
            out: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl fmt::Debug for NdjsonSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NdjsonSink").finish_non_exhaustive()
    }
}

impl ObsSink for NdjsonSink {
    fn name(&self) -> &str {
        "ndjson"
    }

    fn on_event(&self, record: &ObsRecord) {
        if let Ok(line) = serde_json::to_string(record) {
            let mut out = self.out.lock();
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
    }
}

/// Reads an NDJSON event log back, validating the schema version of
/// every record. Blank lines are skipped; a malformed line or a record
/// from a different [`OBS_SCHEMA_VERSION`] yields `InvalidData` naming
/// the 1-based line number.
pub fn read_events(path: impl AsRef<Path>) -> io::Result<Vec<ObsRecord>> {
    let reader = BufReader::new(File::open(path)?);
    let mut records = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record: ObsRecord = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("events line {}: {e}", idx + 1),
            )
        })?;
        if record.v != OBS_SCHEMA_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "events line {}: schema v{} unsupported (reader expects v{})",
                    idx + 1,
                    record.v,
                    OBS_SCHEMA_VERSION
                ),
            ));
        }
        records.push(record);
    }
    Ok(records)
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

/// Renders a snapshot in Prometheus text exposition format (v0.0.4):
/// one `hotspot_*_total` counter family per global counter, a
/// `hotspot_tiles_in_flight` gauge, and `stage`-labelled families
/// `hotspot_stage_{tasks,failures,admissions,admission_skips}_total`.
pub fn render_prometheus(snapshot: &CounterSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(4096);
    let globals: [(&str, &str, u64); 17] = [
        (
            "hotspot_tiles_started_total",
            "Tiles handed to a scan worker.",
            snapshot.tiles_started,
        ),
        (
            "hotspot_tiles_done_total",
            "Tiles fully processed (evaluated, prefiltered or quarantined).",
            snapshot.tiles_done,
        ),
        (
            "hotspot_tiles_prefiltered_total",
            "Tiles skipped by the density prefilter.",
            snapshot.tiles_prefiltered,
        ),
        (
            "hotspot_tiles_quarantined_total",
            "Tiles quarantined after exhausting the retry budget.",
            snapshot.tiles_quarantined,
        ),
        (
            "hotspot_clips_extracted_total",
            "Clips extracted from tile cores.",
            snapshot.clips_extracted,
        ),
        (
            "hotspot_clips_flagged_total",
            "Clips flagged as hotspots before redundant-clip removal.",
            snapshot.clips_flagged,
        ),
        (
            "hotspot_clips_evaluated_total",
            "Clips pushed through the multi-kernel evaluation engine.",
            snapshot.clips_evaluated,
        ),
        (
            "hotspot_clips_reclaimed_total",
            "Flagged clips reclaimed by the feedback kernel.",
            snapshot.clips_reclaimed,
        ),
        (
            "hotspot_eval_batches_total",
            "64-clip SVM inference batches executed.",
            snapshot.eval_batches,
        ),
        (
            "hotspot_task_retries_total",
            "Failed tile tasks re-attempted before quarantine.",
            snapshot.task_retries,
        ),
        (
            "hotspot_executor_tasks_total",
            "Tasks completed by the work-stealing executor.",
            snapshot.executor_tasks,
        ),
        (
            "hotspot_journal_appends_total",
            "Records appended to the scan resume journal.",
            snapshot.journal_appends,
        ),
        (
            "hotspot_journal_syncs_total",
            "fsync barriers issued by the scan resume journal.",
            snapshot.journal_syncs,
        ),
        (
            "hotspot_cache_hits_total",
            "Tiles served from the content-addressed result cache.",
            snapshot.cache_hits,
        ),
        (
            "hotspot_cache_misses_total",
            "Tiles the result cache could not serve.",
            snapshot.cache_misses,
        ),
        (
            "hotspot_cache_invalidated_total",
            "Cache entries invalidated (stale, corrupt, or discarded).",
            snapshot.cache_invalidated,
        ),
        (
            "hotspot_tiles_timed_out_total",
            "Tiles quarantined for exceeding the soft per-tile budget.",
            snapshot.tiles_timed_out,
        ),
    ];
    for (name, help, value) in globals {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    let _ = writeln!(
        out,
        "# HELP hotspot_tiles_in_flight Tiles started but not yet done."
    );
    let _ = writeln!(out, "# TYPE hotspot_tiles_in_flight gauge");
    let _ = writeln!(
        out,
        "hotspot_tiles_in_flight {}",
        snapshot.tiles_in_flight()
    );
    let _ = writeln!(
        out,
        "# HELP hotspot_obs_uptime_seconds Seconds since the observability hub was created."
    );
    let _ = writeln!(out, "# TYPE hotspot_obs_uptime_seconds gauge");
    let _ = writeln!(
        out,
        "hotspot_obs_uptime_seconds {:.3}",
        snapshot.uptime_ms as f64 / 1e3
    );
    // Gauge present only while a scan deadline is armed, so dashboards
    // can alert on "remaining budget" without special-casing idle runs.
    if let Some(remaining_ms) = snapshot.deadline_remaining_ms {
        let _ = writeln!(
            out,
            "# HELP hotspot_deadline_remaining_seconds Wall-clock budget left before the scan deadline."
        );
        let _ = writeln!(out, "# TYPE hotspot_deadline_remaining_seconds gauge");
        let _ = writeln!(
            out,
            "hotspot_deadline_remaining_seconds {:.3}",
            remaining_ms as f64 / 1e3
        );
    }
    type Pick = fn(&StageCounterSnapshot) -> u64;
    let families: [(&str, &str, Pick); 4] = [
        (
            "hotspot_stage_tasks_total",
            "Executor tasks completed, by stage.",
            |s| s.tasks,
        ),
        (
            "hotspot_stage_failures_total",
            "Panicking task attempts, by stage.",
            |s| s.failures,
        ),
        (
            "hotspot_stage_admissions_total",
            "Clip-kernel pairs admitted to SVM evaluation, by stage.",
            |s| s.admissions,
        ),
        (
            "hotspot_stage_admission_skips_total",
            "Centroid rows pruned by the admission router, by stage.",
            |s| s.admission_skips,
        ),
    ];
    for (name, help, pick) in families {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        for stage in &snapshot.stages {
            let _ = writeln!(out, "{name}{{stage=\"{}\"}} {}", stage.stage, pick(stage));
        }
    }
    out
}

/// A minimal blocking HTTP/1.0 listener serving `GET /metrics` with the
/// Prometheus text rendering of the hub's live counters.
///
/// One request is served at a time (scrapes are cheap: one shard sum).
/// Binding registers a `"prometheus"` endpoint name on the hub so the
/// run's telemetry records that the exposition was active. The server
/// shuts down on [`shutdown`](Self::shutdown) or drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`, port `0` for ephemeral) and
    /// starts the accept loop on a background thread.
    pub fn bind(addr: impl ToSocketAddrs, hub: Arc<ObsHub>) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        hub.register_endpoint("prometheus");
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("hotspot-metrics".to_string())
            .spawn(move || serve(&listener, &hub, &thread_stop))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Idempotent;
    /// also performed on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn serve(listener: &TcpListener, hub: &Arc<ObsHub>, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        // Symmetric 500 ms bounds on both directions: a client that
        // neither sends a request nor drains the response cannot wedge
        // the single-threaded accept loop (or block shutdown) for longer
        // than one timeout.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
        let path = read_request_path(&mut stream);
        let response = match path.as_deref() {
            Some("/metrics") | Some("/") => http_response(
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &render_prometheus(&hub.snapshot()),
            ),
            _ => http_response("404 Not Found", "text/plain; charset=utf-8", "not found\n"),
        };
        let _ = stream.write_all(response.as_bytes());
        let _ = stream.flush();
    }
}

fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = [0u8; 1024];
    let mut data = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                data.extend_from_slice(&buf[..n]);
                if data.windows(4).any(|w| w == b"\r\n\r\n") || data.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&data);
    let mut parts = text.lines().next()?.split_whitespace();
    let _method = parts.next()?;
    parts.next().map(str::to_string)
}

fn http_response(status: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

// ---------------------------------------------------------------------------
// Progress reporter
// ---------------------------------------------------------------------------

/// Renders live scan progress to stderr from sampler snapshots: tiles
/// done / in flight / quarantined, clip throughput and an ETA.
///
/// On a terminal the line redraws in place (`\r`); otherwise each
/// snapshot prints a full line so logs stay readable.
pub struct ProgressSink {
    state: Mutex<ProgressState>,
}

struct ProgressState {
    tiles_total: Option<u64>,
    tty: bool,
    redrawing: bool,
}

impl ProgressSink {
    /// Creates a reporter writing to this process's stderr.
    pub fn new() -> ProgressSink {
        ProgressSink {
            state: Mutex::new(ProgressState {
                tiles_total: None,
                tty: io::stderr().is_terminal(),
                redrawing: false,
            }),
        }
    }
}

impl Default for ProgressSink {
    fn default() -> Self {
        ProgressSink::new()
    }
}

impl fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgressSink").finish_non_exhaustive()
    }
}

/// Formats `seconds` as a compact ETA (`42s`, `3m07s`, `2h05m`).
fn format_eta(seconds: f64) -> String {
    let s = seconds.round() as u64;
    if s < 60 {
        format!("{s}s")
    } else if s < 3600 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    }
}

/// Renders one progress line from a snapshot (exposed for testing).
pub fn render_progress(snapshot: &CounterSnapshot, tiles_total: Option<u64>) -> String {
    let done = snapshot.tiles_done;
    let secs = snapshot.uptime_ms as f64 / 1e3;
    let clip_rate = if secs > 0.0 {
        snapshot.clips_extracted as f64 / secs
    } else {
        0.0
    };
    let total = match tiles_total {
        Some(t) => format!("/{t}"),
        None => String::new(),
    };
    let eta = match tiles_total {
        Some(t) if done > 0 && secs > 0.0 && t > done => {
            let tile_rate = done as f64 / secs;
            format!(" · ETA {}", format_eta((t - done) as f64 / tile_rate))
        }
        _ => String::new(),
    };
    format!(
        "scan {done}{total} tiles · {} in flight · {} prefiltered · {} quarantined · {} clips ({clip_rate:.0}/s){eta}",
        snapshot.tiles_in_flight(),
        snapshot.tiles_prefiltered,
        snapshot.tiles_quarantined,
        snapshot.clips_extracted,
    )
}

impl ObsSink for ProgressSink {
    fn name(&self) -> &str {
        "progress"
    }

    fn on_event(&self, record: &ObsRecord) {
        match &record.event {
            ObsEvent::ScanStarted { tiles_total, .. } => {
                self.state.lock().tiles_total = Some(*tiles_total as u64);
            }
            ObsEvent::ScanCompleted {
                tiles_scanned,
                reported,
                quarantined,
            } => {
                let mut state = self.state.lock();
                let prefix = if state.redrawing { "\r\x1b[2K" } else { "" };
                state.redrawing = false;
                eprintln!(
                    "{prefix}scan complete: {tiles_scanned} tiles evaluated, {reported} hotspots reported, {quarantined} quarantined"
                );
            }
            _ => {}
        }
    }

    fn on_snapshot(&self, snapshot: &CounterSnapshot) {
        let mut state = self.state.lock();
        let line = render_progress(snapshot, state.tiles_total);
        if state.tty {
            state.redrawing = true;
            eprint!("\r\x1b[2K{line}");
            let _ = io::stderr().flush();
        } else {
            eprintln!("{line}");
        }
    }
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

/// Background thread that broadcasts counter snapshots at a fixed
/// interval, so sinks see progress even while the pipeline is deep in a
/// long stage. [`stop`](Self::stop) (or drop) joins the thread and
/// broadcasts one final snapshot so short runs still report totals.
pub struct Sampler {
    hub: Arc<ObsHub>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling `hub` every `interval` (clamped to ≥ 10 ms).
    pub fn start(hub: Arc<ObsHub>, interval: Duration) -> Sampler {
        let interval = interval.max(Duration::from_millis(10));
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread_hub = Arc::clone(&hub);
        let handle = thread::Builder::new()
            .name("hotspot-obs-sampler".to_string())
            .spawn(move || {
                let tick = interval.min(Duration::from_millis(25));
                let mut since_sample = Duration::ZERO;
                while !thread_stop.load(Ordering::Acquire) {
                    thread::sleep(tick);
                    since_sample += tick;
                    if since_sample >= interval {
                        since_sample = Duration::ZERO;
                        thread_hub.broadcast_snapshot();
                    }
                }
            })
            .expect("spawn obs sampler thread");
        Sampler {
            hub,
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the sampler, joins its thread and broadcasts a final
    /// snapshot. Idempotent; also performed on drop.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            let _ = handle.join();
            self.hub.broadcast_snapshot();
        }
    }
}

impl fmt::Debug for Sampler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sampler").finish_non_exhaustive()
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[derive(Default)]
    struct RecordingSink {
        events: Mutex<Vec<ObsRecord>>,
        snapshots: AtomicUsize,
    }

    impl ObsSink for RecordingSink {
        fn name(&self) -> &str {
            "recording"
        }
        fn on_event(&self, record: &ObsRecord) {
            self.events.lock().push(record.clone());
        }
        fn on_snapshot(&self, _snapshot: &CounterSnapshot) {
            self.snapshots.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn counters_sum_across_threads_and_shards() {
        let hub = ObsHub::new();
        let threads = 8;
        let per_thread = 1000u64;
        thread::scope(|scope| {
            for _ in 0..threads {
                let hub = &hub;
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        hub.counters().add(Counter::ClipsExtracted, 1);
                        hub.counters()
                            .add_stage(StageId::KernelEvaluation, StageCounter::Tasks, 2);
                    }
                });
            }
        });
        let snap = hub.snapshot();
        assert_eq!(snap.clips_extracted, threads * per_thread);
        let eval = snap
            .stages
            .iter()
            .find(|s| s.stage == "kernel_evaluation")
            .unwrap();
        assert_eq!(eval.tasks, threads * per_thread * 2);
        assert_eq!(snap.stages.len(), 8);
    }

    #[test]
    fn emit_skips_event_construction_without_sinks() {
        let hub = ObsHub::new();
        let mut built = false;
        hub.emit(|| {
            built = true;
            ObsEvent::JournalSynced { appended: 1 }
        });
        assert!(!built, "event closure must not run with no sinks");
        assert_eq!(hub.sink_names(), Vec::<String>::new());
    }

    #[test]
    fn hub_fans_out_events_with_increasing_seq() {
        let hub = ObsHub::new();
        let sink = Arc::new(RecordingSink::default());
        struct Forward(Arc<RecordingSink>);
        impl ObsSink for Forward {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn on_event(&self, record: &ObsRecord) {
                self.0.on_event(record);
            }
            fn on_snapshot(&self, snapshot: &CounterSnapshot) {
                self.0.on_snapshot(snapshot);
            }
        }
        hub.register(Box::new(Forward(Arc::clone(&sink))));
        hub.emit(|| ObsEvent::StageBegin {
            stage: "scan_tile".to_string(),
            items: 5,
        });
        hub.emit(|| ObsEvent::StageEnd {
            stage: "scan_tile".to_string(),
            items: 5,
            failures: 0,
        });
        hub.broadcast_snapshot();
        let events = sink.events.lock();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(matches!(events[2].event, ObsEvent::Snapshot { .. }));
        assert_eq!(sink.snapshots.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn ndjson_round_trips_through_reader() {
        let path = std::env::temp_dir().join(format!(
            "hotspot_obs_ndjson_{}_{:?}.ndjson",
            std::process::id(),
            thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let hub = ObsHub::new();
        hub.register(Box::new(NdjsonSink::create(&path).unwrap()));
        hub.counters().add(Counter::TilesDone, 3);
        hub.emit(|| ObsEvent::ScanStarted {
            tiles_total: 9,
            threads: 2,
            window: 4,
        });
        hub.broadcast_snapshot();
        hub.emit(|| ObsEvent::ScanCompleted {
            tiles_scanned: 9,
            reported: 1,
            quarantined: 0,
        });
        let records = read_events(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert!(records.iter().all(|r| r.v == OBS_SCHEMA_VERSION));
        assert_eq!(
            records[0].event,
            ObsEvent::ScanStarted {
                tiles_total: 9,
                threads: 2,
                window: 4
            }
        );
        match &records[1].event {
            ObsEvent::Snapshot { counters } => assert_eq!(counters.tiles_done, 3),
            other => panic!("expected snapshot, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reader_rejects_foreign_schema_and_garbage() {
        let path = std::env::temp_dir().join(format!(
            "hotspot_obs_badschema_{}_{:?}.ndjson",
            std::process::id(),
            thread::current().id()
        ));
        std::fs::write(
            &path,
            "{\"v\":999,\"seq\":0,\"event\":{\"JournalSynced\":{\"appended\":1}}}\n",
        )
        .unwrap();
        let err = read_events(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("schema v999"));
        std::fs::write(&path, "not json at all\n").unwrap();
        let err = read_events(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn prometheus_rendering_has_all_families() {
        let hub = ObsHub::new();
        hub.counters().add(Counter::ClipsExtracted, 42);
        hub.counters().add(Counter::TilesStarted, 7);
        hub.counters().add(Counter::TilesDone, 5);
        hub.counters()
            .add_stage(StageId::KernelEvaluation, StageCounter::Admissions, 11);
        let text = render_prometheus(&hub.snapshot());
        assert!(text.contains("# TYPE hotspot_clips_extracted_total counter"));
        assert!(text.contains("hotspot_clips_extracted_total 42"));
        assert!(text.contains("hotspot_tiles_in_flight 2"));
        assert!(text.contains("hotspot_stage_admissions_total{stage=\"kernel_evaluation\"} 11"));
        assert!(text.contains("hotspot_stage_tasks_total{stage=\"density_prefilter\"} 0"));
        assert!(text.contains("hotspot_stage_failures_total{stage=\"clip_removal\"} 0"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample line: {line}"
            );
            assert!(parts.next().is_some());
        }
    }

    #[test]
    fn metrics_server_serves_metrics_and_404() {
        let hub = ObsHub::new();
        hub.counters().add(Counter::EvalBatches, 6);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&hub)).unwrap();
        assert_eq!(hub.sink_names(), vec!["prometheus".to_string()]);
        let addr = server.local_addr();
        let body = http_get(addr, "/metrics");
        assert!(body.starts_with("HTTP/1.0 200 OK"));
        assert!(body.contains("hotspot_eval_batches_total 6"));
        let missing = http_get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"));
        server.shutdown();
        // The port is released after shutdown: a second bind succeeds.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok());
    }

    #[test]
    fn wedged_client_cannot_block_shutdown() {
        let hub = ObsHub::new();
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&hub)).unwrap();
        let addr = server.local_addr();
        // A client that connects, sends a request, then never reads the
        // response (nor closes): both the read path (no request bytes on
        // the second socket) and the write path (unread response) must
        // time out instead of wedging the accept loop.
        let mut wedged_writer = TcpStream::connect(addr).unwrap();
        write!(wedged_writer, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let _wedged_reader = TcpStream::connect(addr).unwrap();
        let begun = Instant::now();
        server.shutdown();
        assert!(
            begun.elapsed() < Duration::from_secs(5),
            "shutdown wedged for {:?}",
            begun.elapsed()
        );
    }

    #[test]
    fn deadline_gauge_appears_only_when_armed() {
        let hub = ObsHub::new();
        let idle = render_prometheus(&hub.snapshot());
        assert!(!idle.contains("hotspot_deadline_remaining_seconds"));
        assert!(hub.snapshot().deadline_remaining_ms.is_none());
        hub.set_deadline_remaining_ms(2500);
        let armed = render_prometheus(&hub.snapshot());
        assert!(armed.contains("hotspot_deadline_remaining_seconds 2.500"));
        assert_eq!(hub.snapshot().deadline_remaining_ms, Some(2500));
        hub.clear_deadline_remaining();
        assert!(hub.snapshot().deadline_remaining_ms.is_none());
    }

    #[test]
    fn timed_out_counter_reaches_snapshot_and_prometheus() {
        let hub = ObsHub::new();
        hub.counters().add(Counter::TilesTimedOut, 3);
        let snap = hub.snapshot();
        assert_eq!(snap.tiles_timed_out, 3);
        let text = render_prometheus(&snap);
        assert!(text.contains("hotspot_tiles_timed_out_total 3"));
        // Back-compat: a pre-deadline snapshot JSON (no tiles_timed_out,
        // no deadline_remaining_ms) deserialises with the defaults.
        let legacy = serde_json::to_string(&snap)
            .unwrap()
            .replace(",\"tiles_timed_out\":3", "")
            .replace(",\"deadline_remaining_ms\":null", "");
        assert!(!legacy.contains("tiles_timed_out"), "{legacy}");
        assert!(!legacy.contains("deadline_remaining_ms"), "{legacy}");
        let back: CounterSnapshot = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.tiles_timed_out, 0);
        assert!(back.deadline_remaining_ms.is_none());
    }

    #[test]
    fn abort_and_watchdog_events_round_trip() {
        for event in [
            ObsEvent::ScanAborted {
                reason: "deadline_exceeded".to_string(),
                tiles_scanned: 12,
            },
            ObsEvent::TileTimedOut {
                tile: 9,
                budget_ms: 150,
            },
            ObsEvent::WatchdogTick {
                in_flight: 4,
                deadline_remaining_ms: Some(900),
            },
            ObsEvent::WatchdogTick {
                in_flight: 0,
                deadline_remaining_ms: None,
            },
        ] {
            let record = ObsRecord {
                v: OBS_SCHEMA_VERSION,
                seq: 0,
                event,
            };
            let json = serde_json::to_string(&record).unwrap();
            let back: ObsRecord = serde_json::from_str(&json).unwrap();
            assert_eq!(back, record);
        }
    }

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        body
    }

    #[test]
    fn sampler_broadcasts_and_final_snapshot_on_stop() {
        let hub = ObsHub::new();
        let sink = Arc::new(RecordingSink::default());
        struct Forward(Arc<RecordingSink>);
        impl ObsSink for Forward {
            fn name(&self) -> &str {
                "forward"
            }
            fn on_event(&self, record: &ObsRecord) {
                self.0.on_event(record);
            }
            fn on_snapshot(&self, snapshot: &CounterSnapshot) {
                self.0.on_snapshot(snapshot);
            }
        }
        hub.register(Box::new(Forward(Arc::clone(&sink))));
        let sampler = Sampler::start(Arc::clone(&hub), Duration::from_millis(20));
        thread::sleep(Duration::from_millis(120));
        sampler.stop();
        let n = sink.snapshots.load(Ordering::Relaxed);
        assert!(n >= 2, "expected periodic + final snapshots, got {n}");
    }

    #[test]
    fn progress_rendering_includes_counts_and_eta() {
        let mut snap = ObsHub::new().snapshot();
        snap.uptime_ms = 2000;
        snap.tiles_started = 14;
        snap.tiles_done = 10;
        snap.tiles_prefiltered = 3;
        snap.tiles_quarantined = 1;
        snap.clips_extracted = 500;
        let line = render_progress(&snap, Some(30));
        assert!(line.contains("scan 10/30 tiles"), "line: {line}");
        assert!(line.contains("4 in flight"), "line: {line}");
        assert!(line.contains("3 prefiltered"), "line: {line}");
        assert!(line.contains("1 quarantined"), "line: {line}");
        assert!(line.contains("500 clips (250/s)"), "line: {line}");
        assert!(line.contains("ETA 4s"), "line: {line}");
        let open_ended = render_progress(&snap, None);
        assert!(open_ended.contains("scan 10 tiles"), "line: {open_ended}");
        assert!(!open_ended.contains("ETA"), "line: {open_ended}");
        assert_eq!(format_eta(59.0), "59s");
        assert_eq!(format_eta(187.0), "3m07s");
        assert_eq!(format_eta(7500.0), "2h05m");
    }

    #[test]
    fn event_serde_shape_is_stable() {
        let record = ObsRecord {
            v: OBS_SCHEMA_VERSION,
            seq: 3,
            event: ObsEvent::TileQuarantined {
                tile: 17,
                stage: "scan_tile".to_string(),
            },
        };
        let json = serde_json::to_string(&record).unwrap();
        assert_eq!(
            json,
            "{\"v\":1,\"seq\":3,\"event\":{\"TileQuarantined\":{\"tile\":17,\"stage\":\"scan_tile\"}}}"
        );
        let back: ObsRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
    }
}
