//! Content-addressed tile result cache for incremental re-scans.
//!
//! A cached scan ([`crate::ScanConfig::cache`]) persists one entry per
//! successfully processed tile: the tile's stable id, a **content
//! fingerprint** of the geometry visible to the tile
//! ([`hotspot_layout::scan::Tile::content_fingerprint`] — order- and
//! translation-invariant FNV-1a 64 over the canonicalised tile-local
//! rects of the core + halo window), and the canonical
//! [`TileOutcomeRecord`] with its flagged cores stored **tile-local**
//! (window-relative), so a cached result replays correctly even if the
//! whole layout translated between scans.
//!
//! On a re-scan, a tile whose id and fingerprint match a cache entry is a
//! **hit**: its stored outcome is folded into the report without running
//! prefilter, extraction, or evaluation. Everything else — new tiles,
//! edited tiles, entries lost to corruption — is recomputed and written
//! back. The store is rewritten atomically (temp file + rename) at the end
//! of every cached scan, so it always reflects exactly the last scan's
//! tiles.
//!
//! # Invalidation
//!
//! The header fingerprints everything that can change a tile's outcome
//! besides its geometry: a model fingerprint (kernels, feedback kernel,
//! full detector config minus the thread count), the tile grid's
//! `tile_cores`, the scanned layer, the decision-threshold bits, and the
//! tile-density override bits. A cache whose header disagrees with the
//! current scan is discarded wholesale; per-tile geometry changes are
//! caught by the content fingerprint. Thread count is deliberately
//! excluded everywhere — scans are thread-count-invariant.
//!
//! # On-disk format
//!
//! Line-oriented, reusing the scan journal's framing: every line is
//! `<fnv1a64 of payload, 16 hex digits> <payload JSON>\n`. The first
//! payload is a [`CacheHeader`], the rest are [`CacheEntry`] lines. Unlike
//! the journal (which stops at the first bad line, because its tail is a
//! torn append), the cache reader **skips corrupt entries individually**
//! and keeps going: a flipped bit costs exactly the damaged entries, which
//! are recomputed and rewritten. A corrupt, version-skewed, or mismatched
//! header discards the whole cache — never trusted, never an error.

use crate::journal::{fnv1a, frame, unframe, TileOutcomeRecord};
use hotspot_geom::Point;
use hotspot_layout::LayerId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// Magic string identifying a tile result cache.
pub const CACHE_MAGIC: &str = "hotspot-tile-cache";

/// Version of the cache record format.
pub const CACHE_VERSION: u32 = 1;

/// The header payload fingerprinting the detector + scan configuration a
/// cache's entries were computed under. Any mismatch invalidates the whole
/// store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheHeader {
    /// Always [`CACHE_MAGIC`].
    pub magic: String,
    /// Always [`CACHE_VERSION`].
    pub version: u32,
    /// Fingerprint of the trained model and its evaluation config (kernel
    /// set, feedback kernel, scaling, admission params, eval mode, grids —
    /// everything in [`crate::DetectorConfig`] except the thread count).
    pub model_fingerprint: u64,
    /// The scan's [`crate::ScanConfig::tile_cores`] (fixes the grid).
    pub tile_cores: usize,
    /// The scanned layer.
    pub layer: LayerId,
    /// Bit pattern of the decision threshold the scan evaluates at.
    pub threshold_bits: u64,
    /// Bit pattern of [`crate::ScanConfig::tile_density`], when set.
    pub tile_density_bits: Option<u64>,
}

impl CacheHeader {
    /// Builds the header for the given model/scan identity.
    pub fn new(
        model_fingerprint: u64,
        tile_cores: usize,
        layer: LayerId,
        threshold: f64,
        tile_density: Option<f64>,
    ) -> Self {
        CacheHeader {
            magic: CACHE_MAGIC.to_string(),
            version: CACHE_VERSION,
            model_fingerprint,
            tile_cores,
            layer,
            threshold_bits: threshold.to_bits(),
            tile_density_bits: tile_density.map(f64::to_bits),
        }
    }
}

/// One cache line: a tile id, its content fingerprint, and its canonical
/// outcome with flagged cores in tile-local (window-relative) coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// Stable tile id (`iy * grid_cols + ix`), thread-count-invariant.
    pub tile: usize,
    /// [`hotspot_layout::scan::Tile::content_fingerprint`] at compute time.
    pub fingerprint: u64,
    /// The tile's outcome, cores translated by `-window.min()`.
    pub outcome: TileOutcomeRecord,
}

/// Translates a record's flagged cores by `delta` — used to store cores
/// tile-locally (`delta = -window.min()`) and to rebase them onto the
/// current grid on a hit (`delta = window.min()`).
pub(crate) fn translate_record(record: &TileOutcomeRecord, delta: Point) -> TileOutcomeRecord {
    match record {
        TileOutcomeRecord::Prefiltered => TileOutcomeRecord::Prefiltered,
        TileOutcomeRecord::Evaluated {
            clips,
            flagged,
            reclaimed,
            flagged_cores,
        } => TileOutcomeRecord::Evaluated {
            clips: *clips,
            flagged: *flagged,
            reclaimed: *reclaimed,
            flagged_cores: flagged_cores.iter().map(|r| r.translate(delta)).collect(),
        },
    }
}

/// What [`TileCache::open`] found on disk, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheLoadStats {
    /// Entries loaded and usable.
    pub loaded: usize,
    /// Lines skipped for a bad checksum or malformed payload.
    pub rejected: usize,
    /// Whether the whole store was discarded (missing file counts as a
    /// clean empty store, not a discard).
    pub discarded: bool,
}

/// An open tile result cache: the entries read from disk plus the
/// write-back set accumulated during the current scan.
#[derive(Debug)]
pub struct TileCache {
    path: PathBuf,
    header: CacheHeader,
    loaded: HashMap<usize, (u64, TileOutcomeRecord)>,
    fresh: BTreeMap<usize, (u64, TileOutcomeRecord)>,
    stats: CacheLoadStats,
}

impl TileCache {
    /// Opens the cache at `path` against the current scan's `header`.
    ///
    /// Never fails: a missing file yields an empty cache, a corrupt or
    /// mismatched header discards every entry, and individually corrupt
    /// entry lines are skipped. The outcome is reported in
    /// [`load_stats`](Self::load_stats).
    pub fn open(path: &Path, header: CacheHeader) -> TileCache {
        let mut cache = TileCache {
            path: path.to_path_buf(),
            header,
            loaded: HashMap::new(),
            fresh: BTreeMap::new(),
            stats: CacheLoadStats::default(),
        };
        let mut bytes = Vec::new();
        let read = fs::File::open(path).and_then(|mut f| f.read_to_end(&mut bytes));
        if read.is_err() {
            return cache;
        }
        let text = String::from_utf8_lossy(&bytes);
        let mut lines = text.split_inclusive('\n');
        let header_ok = lines
            .next()
            .filter(|l| l.ends_with('\n'))
            .and_then(|l| unframe(l.trim_end_matches('\n')))
            .and_then(|p| serde_json::from_str::<CacheHeader>(p).ok())
            .is_some_and(|h| h == cache.header);
        if !header_ok {
            cache.stats.discarded = true;
            return cache;
        }
        for line in lines {
            if !line.ends_with('\n') {
                cache.stats.rejected += 1;
                continue;
            }
            let entry = unframe(line.trim_end_matches('\n'))
                .and_then(|p| serde_json::from_str::<CacheEntry>(p).ok());
            match entry {
                Some(e) => {
                    cache.loaded.insert(e.tile, (e.fingerprint, e.outcome));
                    cache.stats.loaded += 1;
                }
                None => cache.stats.rejected += 1,
            }
        }
        cache
    }

    /// What [`open`](Self::open) found on disk.
    pub fn load_stats(&self) -> CacheLoadStats {
        self.stats
    }

    /// The stored outcome for `tile` iff its fingerprint matches — a hit.
    /// Cores in the returned record are tile-local.
    pub fn lookup(&self, tile: usize, fingerprint: u64) -> Option<&TileOutcomeRecord> {
        match self.loaded.get(&tile) {
            Some((fp, outcome)) if *fp == fingerprint => Some(outcome),
            _ => None,
        }
    }

    /// Whether an entry for `tile` exists but its fingerprint disagrees —
    /// the tile's geometry (or its halo's) changed since it was cached.
    pub fn is_stale(&self, tile: usize, fingerprint: u64) -> bool {
        matches!(self.loaded.get(&tile), Some((fp, _)) if *fp != fingerprint)
    }

    /// Records a tile's outcome (cores already tile-local) for write-back.
    /// Only successfully processed tiles may be recorded — quarantined
    /// tiles must never reach the cache.
    pub fn record(&mut self, tile: usize, fingerprint: u64, outcome: TileOutcomeRecord) {
        self.fresh.insert(tile, (fingerprint, outcome));
    }

    /// Entries recorded for write-back so far.
    pub fn recorded(&self) -> usize {
        self.fresh.len()
    }

    /// Atomically rewrites the store with this scan's entries (header plus
    /// every [`record`](Self::record)ed tile, in tile-id order), via a
    /// sibling temp file and rename. Entries for tiles the current scan
    /// never produced are dropped — the store always mirrors the last scan.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn store(&self) -> io::Result<()> {
        let mut out = String::new();
        let header = serde_json::to_string(&self.header)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        out.push_str(&frame(&header));
        for (&tile, (fingerprint, outcome)) in &self.fresh {
            let entry = CacheEntry {
                tile,
                fingerprint: *fingerprint,
                outcome: outcome.clone(),
            };
            let payload = serde_json::to_string(&entry)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            out.push_str(&frame(&payload));
        }
        let tmp = self.path.with_file_name(format!(
            "{}.tmp",
            self.path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "tile-cache".to_string())
        ));
        let mut file = fs::File::create(&tmp)?;
        file.write_all(out.as_bytes())?;
        file.sync_data()?;
        drop(file);
        fs::rename(&tmp, &self.path)
    }
}

/// Fingerprints a trained model + evaluation identity: FNV-1a 64 over the
/// canonical JSON of the kernels, the feedback kernel, and the detector
/// config with its thread count zeroed (scans are thread-count-invariant,
/// so threads must not invalidate the cache).
pub(crate) fn model_fingerprint(kernels_json: &str, feedback_json: &str, config_json: &str) -> u64 {
    let mut h = fnv1a(kernels_json.as_bytes());
    h ^= fnv1a(feedback_json.as_bytes());
    h = h.wrapping_mul(0x0000_0100_0000_01B3);
    h ^= fnv1a(config_json.as_bytes());
    h.wrapping_mul(0x0000_0100_0000_01B3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::Rect;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hotspot-cache-test-{}-{name}", std::process::id()));
        p
    }

    fn sample_header() -> CacheHeader {
        CacheHeader::new(0xDEAD_BEEF, 8, LayerId::METAL1, 0.5, None)
    }

    fn sample_outcome() -> TileOutcomeRecord {
        TileOutcomeRecord::Evaluated {
            clips: 4,
            flagged: 2,
            reclaimed: 1,
            flagged_cores: vec![Rect::from_extents(10, 10, 60, 60)],
        }
    }

    #[test]
    fn round_trips_entries_by_fingerprint() {
        let path = temp_path("round-trip");
        let mut cache = TileCache::open(&path, sample_header());
        assert_eq!(cache.load_stats(), CacheLoadStats::default());
        cache.record(3, 111, sample_outcome());
        cache.record(7, 222, TileOutcomeRecord::Prefiltered);
        cache.store().unwrap();

        let reopened = TileCache::open(&path, sample_header());
        assert_eq!(reopened.load_stats().loaded, 2);
        assert_eq!(reopened.lookup(3, 111), Some(&sample_outcome()));
        assert_eq!(
            reopened.lookup(7, 222),
            Some(&TileOutcomeRecord::Prefiltered)
        );
        // Fingerprint mismatch is a miss, and stale.
        assert_eq!(reopened.lookup(3, 999), None);
        assert!(reopened.is_stale(3, 999));
        assert!(!reopened.is_stale(4, 999));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_mismatch_discards_the_whole_store() {
        let path = temp_path("mismatch");
        let mut cache = TileCache::open(&path, sample_header());
        cache.record(0, 1, TileOutcomeRecord::Prefiltered);
        cache.store().unwrap();

        let other = CacheHeader::new(0xBAD, 8, LayerId::METAL1, 0.5, None);
        let reopened = TileCache::open(&path, other);
        assert!(reopened.load_stats().discarded);
        assert_eq!(reopened.lookup(0, 1), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_entries_are_rejected_individually() {
        let path = temp_path("corrupt");
        let mut cache = TileCache::open(&path, sample_header());
        cache.record(0, 10, TileOutcomeRecord::Prefiltered);
        cache.record(1, 11, sample_outcome());
        cache.record(2, 12, TileOutcomeRecord::Prefiltered);
        cache.store().unwrap();

        // Flip a byte inside the *middle* entry's payload: unlike the
        // journal, only that entry is lost.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let mut damaged = lines.clone();
        let tampered = lines[2].replace("11", "13");
        damaged[2] = &tampered;
        std::fs::write(&path, damaged.join("\n") + "\n").unwrap();

        let reopened = TileCache::open(&path, sample_header());
        assert_eq!(reopened.load_stats().loaded, 2);
        assert_eq!(reopened.load_stats().rejected, 1);
        assert!(reopened.lookup(0, 10).is_some());
        assert!(reopened.lookup(1, 11).is_none(), "damaged entry dropped");
        assert!(reopened.lookup(2, 12).is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn store_drops_entries_not_recorded_this_scan() {
        let path = temp_path("prune");
        let mut cache = TileCache::open(&path, sample_header());
        cache.record(0, 1, TileOutcomeRecord::Prefiltered);
        cache.record(1, 2, TileOutcomeRecord::Prefiltered);
        cache.store().unwrap();

        let mut next = TileCache::open(&path, sample_header());
        assert_eq!(next.load_stats().loaded, 2);
        next.record(1, 2, TileOutcomeRecord::Prefiltered);
        next.store().unwrap();

        let last = TileCache::open(&path, sample_header());
        assert_eq!(last.load_stats().loaded, 1);
        assert!(last.lookup(0, 1).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn translate_record_round_trips() {
        let rec = sample_outcome();
        let local = translate_record(&rec, -Point::new(100, 200));
        assert_ne!(local, rec);
        assert_eq!(translate_record(&local, Point::new(100, 200)), rec);
        assert_eq!(
            translate_record(&TileOutcomeRecord::Prefiltered, Point::new(5, 5)),
            TileOutcomeRecord::Prefiltered
        );
    }
}
