//! Redundant clip removal (Section III-F, Fig. 12).
//!
//! Reported hotspot cores pile up in dense areas. Removal proceeds in the
//! paper's order: **merge** overlapping cores into merging regions,
//! **reframe** crowded regions onto a sparse grid of cores (spacing
//! `l_s < l_c`), **discard** cores whose polygons and corners are fully
//! covered by other cores, **shift** clips toward their polygons' centre of
//! gravity when the boundary gap exceeds the bound, then merge and reframe
//! once more.

use crate::config::DetectorConfig;
use crate::extraction::RectIndex;
use hotspot_geom::{Coord, Point, Rect};
use hotspot_layout::{ClipShape, ClipWindow};

/// A merging region: the bounding box of a set of overlapping cores.
#[derive(Debug, Clone, PartialEq)]
pub struct MergingRegion {
    /// Bounding box of the member cores.
    pub bbox: Rect,
    /// The member cores.
    pub cores: Vec<Rect>,
}

/// Groups reported cores into merging regions (Fig. 12(b)): a core joins a
/// region when it overlaps some member core by at least `min_overlap` of
/// the core area.
pub fn merge_cores(cores: &[Rect], min_overlap: f64) -> Vec<MergingRegion> {
    let n = cores.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let need = (cores[i].area().min(cores[j].area()) as f64 * min_overlap).ceil() as i64;
            if cores[i].overlap_area(&cores[j]) >= need.max(1) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(i);
    }
    groups
        .into_values()
        .map(|members| {
            let member_cores: Vec<Rect> = members.iter().map(|&i| cores[i]).collect();
            let bbox = Rect::bbox_of(member_cores.iter()).expect("cores are non-empty");
            MergingRegion {
                bbox,
                cores: member_cores,
            }
        })
        .collect()
}

/// Reframes a region onto a grid of cores spaced `separation < core_side`
/// (Fig. 12(c)), guaranteeing that any core-sized square overlapping the
/// region is overlapped by at least one reframed core.
pub fn reframe_region(region: &MergingRegion, core_side: Coord, separation: Coord) -> Vec<Rect> {
    debug_assert!(separation < core_side, "l_s must stay below l_c");
    let b = region.bbox;
    let positions = |lo: Coord, hi: Coord| -> Vec<Coord> {
        // Anchor cores from lo with stride `separation`; clamp the last one
        // so the grid never extends past the region.
        let span = (hi - lo - core_side).max(0);
        let steps = if span == 0 {
            0
        } else {
            (span + separation - 1) / separation
        };
        (0..=steps)
            .map(|k| (lo + k * separation).min(lo + span))
            .collect()
    };
    let mut out = Vec::new();
    for &x in &positions(b.min().x, b.max().x.max(b.min().x + core_side)) {
        for &y in &positions(b.min().y, b.max().y.max(b.min().y + core_side)) {
            out.push(Rect::from_origin_size(
                Point::new(x, y),
                core_side,
                core_side,
            ));
        }
    }
    out.dedup();
    out
}

/// Reframes when the grid actually shrinks the report; for sprawling chain
/// regions whose bounding box needs more grid cores than the region has
/// members, the original members are kept (the goal of reframing is to
/// *minimise* the reported count).
fn reframe_or_keep(region: &MergingRegion, core_side: Coord, separation: Coord) -> Vec<Rect> {
    let reframed = reframe_region(region, core_side, separation);
    if reframed.len() < region.cores.len() {
        reframed
    } else {
        region.cores.clone()
    }
}

/// Discard rule (Fig. 12(d)): a core is redundant when every polygon piece
/// inside it is fully covered by some other kept core *and* each of its
/// corners lies inside some other kept core.
pub fn discard_redundant(cores: Vec<Rect>, index: &RectIndex) -> Vec<Rect> {
    let mut kept: Vec<Rect> = cores;
    let mut i = 0;
    while i < kept.len() {
        let core = kept[i];
        let others: Vec<&Rect> = kept
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, r)| r)
            .collect();
        if is_redundant(&core, &others, index) {
            kept.remove(i);
        } else {
            i += 1;
        }
    }
    kept
}

fn is_redundant(core: &Rect, others: &[&Rect], index: &RectIndex) -> bool {
    if others.is_empty() {
        return false;
    }
    // Condition 2: each corner overlaps another core. Corners are sampled
    // just inside the core so closed-open containment behaves.
    let inner = core.inflate(-1);
    if inner.is_empty() {
        return false;
    }
    for corner in inner.corners() {
        if !others.iter().any(|o| o.contains_point(corner)) {
            return false;
        }
    }
    // Condition 1: every polygon piece inside the core is covered by the
    // *union* of the other cores (exact multi-cover via the boolean sweep).
    let cover: Vec<Rect> = others.iter().map(|o| **o).collect();
    for rect in index.query(core) {
        let Some(piece) = rect.intersection(core) else {
            continue;
        };
        if !hotspot_geom::boolean::covers(&cover, &piece) {
            return false;
        }
    }
    true
}

/// Shift rule (Fig. 12(e)): when the gap between the clip boundary and the
/// content bounding box exceeds `max_gap`, the clip centre moves to the
/// polygons' centre of gravity along the axis with the larger violation.
pub fn shift_core(core: Rect, shape: ClipShape, index: &RectIndex, max_gap: Coord) -> Rect {
    let window = window_for_core(core, shape);
    let content: Vec<Rect> = index.query(&window.clip);
    let Some(bbox) = Rect::bbox_of(
        content
            .iter()
            .filter_map(|r| r.intersection(&window.clip))
            .collect::<Vec<_>>()
            .iter(),
    ) else {
        return core;
    };
    let clip = window.clip;
    let gaps = [
        bbox.min().x - clip.min().x,
        clip.max().x - bbox.max().x,
        bbox.min().y - clip.min().y,
        clip.max().y - bbox.max().y,
    ];
    let worst = gaps.iter().copied().max().unwrap_or(0);
    if worst <= max_gap {
        return core;
    }
    // Centre of gravity of the content (area-weighted).
    let mut area_sum = 0i64;
    let (mut cx, mut cy) = (0i64, 0i64);
    for r in content.iter().filter_map(|r| r.intersection(&clip)) {
        let a = r.area();
        area_sum += a;
        cx += r.center().x * a;
        cy += r.center().y * a;
    }
    if area_sum == 0 {
        return core;
    }
    let cog = Point::new(cx / area_sum, cy / area_sum);
    let center = core.center();
    // Shift along the axis with the larger violation only.
    let x_violation = gaps[0].max(gaps[1]);
    let y_violation = gaps[2].max(gaps[3]);
    let new_center = if x_violation >= y_violation {
        Point::new(cog.x, center.y)
    } else {
        Point::new(center.x, cog.y)
    };
    Rect::centered_square(new_center, shape.core_side())
}

fn window_for_core(core: Rect, shape: ClipShape) -> ClipWindow {
    ClipWindow {
        core,
        clip: core.inflate(shape.ambit()),
    }
}

/// The full redundant-clip-removal pipeline of Fig. 12.
///
/// Takes the reported hotspot cores, the clip shape, and the layout's
/// rectangle index; returns the reduced clip windows. The input is
/// canonicalised (sorted, deduplicated) on entry, so the result depends
/// only on the *set* of reported cores — whole-layout detection and the
/// tiled streaming scan therefore produce identical reports.
pub fn remove_redundant_clips(
    mut reported_cores: Vec<Rect>,
    shape: ClipShape,
    index: &RectIndex,
    config: &DetectorConfig,
) -> Vec<ClipWindow> {
    reported_cores.sort_by_key(|r| (r.min().x, r.min().y, r.max().x, r.max().y));
    reported_cores.dedup();
    if reported_cores.is_empty() {
        return Vec::new();
    }
    let core_side = shape.core_side();
    let separation = config.reframe_separation.min(core_side - 1).max(1);

    // 1–2. Merge and reframe crowded regions.
    let regions = merge_cores(&reported_cores, config.min_merge_overlap);
    let mut cores: Vec<Rect> = Vec::new();
    for region in &regions {
        if region.cores.len() > config.reframe_core_limit {
            cores.extend(reframe_or_keep(region, core_side, separation));
        } else {
            cores.extend(region.cores.iter().copied());
        }
    }
    cores.sort_by_key(|r| (r.min().x, r.min().y));
    cores.dedup();

    // 3. Discard covered cores.
    let cores = discard_redundant(cores, index);

    // 4. Shift toward the centre of gravity where the boundary gap is large.
    let cores: Vec<Rect> = cores
        .into_iter()
        .map(|c| {
            shift_core(
                c,
                shape,
                index,
                config.distribution.max_boundary_bbox_distance,
            )
        })
        .collect();

    // 5. Merge and reframe once more.
    let regions = merge_cores(&cores, config.min_merge_overlap);
    let mut final_cores: Vec<Rect> = Vec::new();
    for region in &regions {
        if region.cores.len() > config.reframe_core_limit {
            final_cores.extend(reframe_or_keep(region, core_side, separation));
        } else {
            final_cores.extend(region.cores.iter().copied());
        }
    }
    final_cores.sort_by_key(|r| (r.min().x, r.min().y));
    final_cores.dedup();

    final_cores
        .into_iter()
        .map(|c| window_for_core(c, shape))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ClipShape {
        ClipShape::new(1200, 4800).unwrap()
    }

    fn core_at(x: Coord, y: Coord) -> Rect {
        Rect::from_origin_size(Point::new(x, y), 1200, 1200)
    }

    fn config() -> DetectorConfig {
        DetectorConfig::default()
    }

    fn empty_index() -> RectIndex {
        RectIndex::build(Vec::new(), 4800)
    }

    #[test]
    fn merge_groups_overlapping_cores() {
        let cores = vec![core_at(0, 0), core_at(300, 0), core_at(10_000, 0)];
        let regions = merge_cores(&cores, 0.2);
        assert_eq!(regions.len(), 2);
        let big = regions.iter().find(|r| r.cores.len() == 2).unwrap();
        assert_eq!(big.bbox, Rect::from_extents(0, 0, 1500, 1200));
    }

    #[test]
    fn merge_respects_min_overlap() {
        // 10% overlap only: below the 20% bound, the cores stay separate.
        let cores = vec![core_at(0, 0), core_at(1080, 0)];
        assert_eq!(merge_cores(&cores, 0.2).len(), 2);
        assert_eq!(merge_cores(&cores, 0.05).len(), 1);
    }

    #[test]
    fn merge_is_transitive() {
        // A chain a-b-c where a and c do not overlap directly.
        let cores = vec![core_at(0, 0), core_at(800, 0), core_at(1600, 0)];
        let regions = merge_cores(&cores, 0.2);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].cores.len(), 3);
    }

    #[test]
    fn reframe_covers_region() {
        // A region from many overlapping cores.
        let cores: Vec<Rect> = (0..8).map(|i| core_at(i * 300, 0)).collect();
        let regions = merge_cores(&cores, 0.2);
        assert_eq!(regions.len(), 1);
        let reframed = reframe_region(&regions[0], 1200, 1150);
        assert!(reframed.len() < cores.len(), "reframing must reduce cores");
        // Guarantee: every original core overlaps some reframed core.
        for c in &cores {
            assert!(
                reframed.iter().any(|r| r.overlaps(c)),
                "core {c:?} lost by reframing"
            );
        }
        // Spacing below the core side.
        let mut xs: Vec<Coord> = reframed.iter().map(|r| r.min().x).collect();
        xs.sort_unstable();
        xs.dedup();
        for w in xs.windows(2) {
            assert!(w[1] - w[0] <= 1150);
        }
    }

    #[test]
    fn reframe_single_core_region_is_identity_sized() {
        let region = MergingRegion {
            bbox: core_at(500, 500),
            cores: vec![core_at(500, 500)],
        };
        let reframed = reframe_region(&region, 1200, 1150);
        assert_eq!(reframed, vec![core_at(500, 500)]);
    }

    #[test]
    fn discard_requires_full_coverage() {
        // Middle core fully covered by left+right? Corners yes, but single-
        // cover check: the middle core's corners lie in others, and with no
        // polygons the content condition is vacuous.
        let index = empty_index();
        let cores = vec![core_at(0, 0), core_at(600, 0), core_at(1100, 0)];
        let kept = discard_redundant(cores.clone(), &index);
        // The middle core's four corners: (601,1)/(1799,1)... corner
        // (1799, *) lies in the right core, (601, *) in the left core.
        assert!(kept.len() < cores.len(), "middle core should be discarded");
        // A lone core is never discarded.
        let kept = discard_redundant(vec![core_at(0, 0)], &index);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn discard_keeps_core_with_uncovered_polygon() {
        // A polygon only the middle core covers.
        let index = RectIndex::build(vec![Rect::from_extents(900, 500, 1000, 600)], 4800);
        let cores = vec![core_at(0, 0), core_at(600, 0), core_at(1100, 0)];
        let kept = discard_redundant(cores, &index);
        // The polygon at (900..1000) is inside core_at(0,0) too (0..1200).
        // Build a clearer case: polygon covered only by the middle.
        let index2 = RectIndex::build(vec![Rect::from_extents(1250, 500, 1350, 600)], 4800);
        let cores2 = vec![core_at(0, 0), core_at(600, 0), core_at(1100, 0)];
        let kept2 = discard_redundant(cores2, &index2);
        // 1250..1350 lies in middle (600..1800) and right (1100..2300):
        // middle may be discarded, but at least one covering core remains.
        assert!(kept2
            .iter()
            .any(|c| c.contains_rect(&Rect::from_extents(1250, 500, 1350, 600))));
        assert!(!kept.is_empty());
    }

    #[test]
    fn shift_moves_clip_toward_content() {
        // Content far to the right of the clip: the boundary gap on the
        // left exceeds the bound, so the core shifts right.
        let content = Rect::from_extents(2000, 0, 2400, 1200);
        let index = RectIndex::build(vec![content], 4800);
        let core = core_at(0, 0);
        let shifted = shift_core(core, shape(), &index, 1440);
        assert!(shifted.center().x > core.center().x);
        assert_eq!(shifted.width(), 1200);
    }

    #[test]
    fn shift_noop_when_content_balanced() {
        let content = Rect::from_extents(-2000, -2000, 2000, 2000);
        let index = RectIndex::build(vec![content], 4800);
        let core = Rect::centered_square(Point::new(0, 0), 1200);
        assert_eq!(shift_core(core, shape(), &index, 1440), core);
    }

    #[test]
    fn full_pipeline_reduces_and_preserves_coverage() {
        let index = RectIndex::build(vec![Rect::from_extents(0, 0, 3000, 400)], 4800);
        let cores: Vec<Rect> = (0..10).map(|i| core_at(i * 250, 0)).collect();
        let out = remove_redundant_clips(cores.clone(), shape(), &index, &config());
        assert!(!out.is_empty());
        assert!(out.len() < cores.len(), "pipeline must reduce clip count");
        // Every original core still overlaps some final core.
        for c in &cores {
            assert!(
                out.iter().any(|w| w.core.overlaps(c)),
                "core {c:?} lost by removal"
            );
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out = remove_redundant_clips(Vec::new(), shape(), &empty_index(), &config());
        assert!(out.is_empty());
    }
}
