//! Layout clip extraction (Section III-E, Fig. 11).
//!
//! Instead of scanning the full layout with a sliding window, the layout's
//! polygons are dissected into rectangles, oversized rectangles are split at
//! the core side length, and one candidate clip is anchored at the
//! bottom-left corner of each piece. Candidates whose polygon distribution
//! fails the user requirements are discarded.

use crate::config::{DetectorConfig, DistributionFilter};
use crate::pattern::Pattern;
use hotspot_geom::{Coord, GridIndex, Point, Rect};
use hotspot_layout::{ClipShape, LayerId, Layout};

/// A uniform-grid spatial index over layout rectangles.
///
/// A thin wrapper around [`hotspot_geom::GridIndex`] that remembers how the
/// detector builds its index (dissected layer rectangles, clip-sized
/// cells). Used for fast window queries during clip extraction, redundant
/// clip removal, and the streaming layout scan.
#[derive(Debug, Clone)]
pub struct RectIndex(GridIndex);

impl RectIndex {
    /// Builds an index with the given cell size (typically the clip side).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not positive.
    pub fn build(rects: Vec<Rect>, cell: Coord) -> RectIndex {
        RectIndex(GridIndex::build(rects, cell))
    }

    /// Builds an index over a dissected layout layer.
    pub fn from_layout(layout: &Layout, layer: LayerId, cell: Coord) -> RectIndex {
        RectIndex::build(layout.dissected_rects(layer), cell)
    }

    /// All rectangles overlapping `window`, deduplicated, in deterministic
    /// first-encounter order.
    pub fn query(&self, window: &Rect) -> Vec<Rect> {
        self.0.query(window)
    }

    /// Number of indexed rectangles.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The indexed rectangles.
    pub fn rects(&self) -> &[Rect] {
        self.0.rects()
    }
}

/// Splits rectangles wider or taller than `side` into pieces of at most
/// `side` (Fig. 11(a)): a hotspot core must be anchorable on every piece.
pub fn split_oversized(rects: &[Rect], side: Coord) -> Vec<Rect> {
    let mut out = Vec::with_capacity(rects.len());
    split_oversized_into(rects, side, &mut out);
    out
}

/// [`split_oversized`] into a caller-owned buffer, clearing it first —
/// the allocation-reusing form the per-tile scan scratch threads through.
pub fn split_oversized_into(rects: &[Rect], side: Coord, out: &mut Vec<Rect>) {
    out.clear();
    for r in rects {
        let mut y = r.min().y;
        while y < r.max().y {
            let y1 = (y + side).min(r.max().y);
            let mut x = r.min().x;
            while x < r.max().x {
                let x1 = (x + side).min(r.max().x);
                out.push(Rect::from_extents(x, y, x1, y1));
                x = x1;
            }
            y = y1;
        }
    }
}

/// Extracts candidate clips from a layout layer per Section III-E.
///
/// Returns the surviving clip patterns (one per distinct core anchor whose
/// polygon distribution passes `config.distribution`).
pub fn extract_clips(layout: &Layout, layer: LayerId, config: &DetectorConfig) -> Vec<Pattern> {
    let index = RectIndex::from_layout(layout, layer, config.clip_shape.clip_side());
    extract_clips_indexed(&index, config.clip_shape, &config.distribution)
}

/// Clip extraction over a prebuilt index (reused by the evaluation phase).
pub fn extract_clips_indexed(
    index: &RectIndex,
    shape: ClipShape,
    filter: &DistributionFilter,
) -> Vec<Pattern> {
    let pieces = split_oversized(index.rects(), shape.core_side());
    let mut seen_anchors: std::collections::HashSet<Point> = std::collections::HashSet::new();
    let mut out = Vec::new();
    for piece in pieces {
        // Anchor the core at the piece's bottom-left corner (Fig. 11(b)).
        let anchor = piece.min();
        if !seen_anchors.insert(anchor) {
            continue;
        }
        let window = shape.window_from_core_corner(anchor);
        let pattern = Pattern::new(window, &index.query(&window.clip));
        if passes_filter(&pattern, filter) {
            out.push(pattern);
        }
    }
    out
}

/// The polygon-distribution requirements of Section III-E.
pub fn passes_filter(pattern: &Pattern, filter: &DistributionFilter) -> bool {
    if pattern.rects.len() < filter.min_polygon_count {
        return false;
    }
    if pattern.core_density() < filter.min_core_density {
        return false;
    }
    match pattern.max_boundary_bbox_distance() {
        Some(d) => d <= filter.max_boundary_bbox_distance,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_layout::ClipShape;

    #[test]
    fn index_query_finds_overlapping() {
        let rects = vec![
            Rect::from_extents(0, 0, 100, 100),
            Rect::from_extents(5000, 5000, 5100, 5100),
        ];
        let idx = RectIndex::build(rects, 1000);
        assert_eq!(idx.len(), 2);
        let q = idx.query(&Rect::from_extents(-50, -50, 50, 50));
        assert_eq!(q.len(), 1);
        let q2 = idx.query(&Rect::from_extents(0, 0, 6000, 6000));
        assert_eq!(q2.len(), 2);
        let q3 = idx.query(&Rect::from_extents(200, 200, 300, 300));
        assert!(q3.is_empty());
    }

    #[test]
    fn index_handles_cell_straddling_rects() {
        let rects = vec![Rect::from_extents(900, 900, 1100, 1100)];
        let idx = RectIndex::build(rects, 1000);
        // Query from within each straddled cell.
        for probe in [
            Rect::from_extents(950, 950, 960, 960),
            Rect::from_extents(1050, 1050, 1060, 1060),
        ] {
            assert_eq!(idx.query(&probe).len(), 1, "probe {probe:?}");
        }
        // No duplicates when the query spans several cells.
        let q = idx.query(&Rect::from_extents(800, 800, 1200, 1200));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn split_oversized_respects_side() {
        let rects = vec![Rect::from_extents(0, 0, 2500, 800)];
        let pieces = split_oversized(&rects, 1000);
        assert!(pieces
            .iter()
            .all(|p| p.width() <= 1000 && p.height() <= 1000));
        let total: i64 = pieces.iter().map(|p| p.area()).sum();
        assert_eq!(total, 2500 * 800);
        assert_eq!(pieces.len(), 3);
    }

    #[test]
    fn split_keeps_small_rects() {
        let rects = vec![Rect::from_extents(0, 0, 300, 200)];
        assert_eq!(split_oversized(&rects, 1000), rects);
    }

    #[test]
    fn extraction_covers_every_polygon() {
        // Each polygon must be included by at least one extracted clip
        // (guaranteed when the distribution requirements pass).
        let mut layout = Layout::new("t");
        let layer = LayerId::METAL1;
        for i in 0..5 {
            layout.add_rect(layer, Rect::from_extents(i * 3000, 0, i * 3000 + 500, 400));
        }
        let config = DetectorConfig {
            clip_shape: ClipShape::ICCAD2012,
            distribution: DistributionFilter {
                min_core_density: 0.0,
                min_polygon_count: 1,
                max_boundary_bbox_distance: 4800,
            },
            ..Default::default()
        };
        let clips = extract_clips(&layout, layer, &config);
        assert!(!clips.is_empty());
        for r in layout.dissected_rects(layer) {
            assert!(
                clips.iter().any(|c| c.window.clip.contains_rect(&r)),
                "rect {r:?} not covered by any clip"
            );
        }
    }

    #[test]
    fn distribution_filter_prunes_sparse_clips() {
        let mut layout = Layout::new("t");
        let layer = LayerId::METAL1;
        // A tiny lone rect: density below the threshold.
        layout.add_rect(layer, Rect::from_extents(0, 0, 20, 20));
        let config = DetectorConfig {
            distribution: DistributionFilter {
                min_core_density: 0.5,
                min_polygon_count: 1,
                max_boundary_bbox_distance: 4800,
            },
            ..Default::default()
        };
        assert!(extract_clips(&layout, layer, &config).is_empty());
    }

    #[test]
    fn boundary_bbox_distance_filter() {
        let shape = ClipShape::ICCAD2012;
        let window = shape.window_from_core_corner(Point::new(0, 0));
        // Content hugging the core only: distance to clip boundary is the
        // ambit (1800), above the paper's 1440 bound.
        let p = Pattern::new(window, &[Rect::from_extents(0, 0, 1200, 1200)]);
        let tight = DistributionFilter {
            max_boundary_bbox_distance: 1440,
            ..Default::default()
        };
        assert!(!passes_filter(&p, &tight));
        let loose = DistributionFilter {
            max_boundary_bbox_distance: 1800,
            ..Default::default()
        };
        assert!(passes_filter(&p, &loose));
    }

    #[test]
    fn deduplicates_anchor_points() {
        let mut layout = Layout::new("t");
        let layer = LayerId::METAL1;
        // Two stacked rects dissect/merge into shapes sharing anchors after
        // splitting; ensure no duplicate windows.
        layout.add_rect(layer, Rect::from_extents(0, 0, 600, 600));
        layout.add_rect(layer, Rect::from_extents(0, 0, 600, 600));
        let config = DetectorConfig {
            distribution: DistributionFilter {
                min_core_density: 0.0,
                min_polygon_count: 1,
                max_boundary_bbox_distance: 4800,
            },
            ..Default::default()
        };
        let clips = extract_clips(&layout, layer, &config);
        let mut anchors: Vec<Point> = clips.iter().map(|c| c.window.core.min()).collect();
        let before = anchors.len();
        anchors.dedup();
        assert_eq!(before, anchors.len());
    }

    #[test]
    fn empty_layout_yields_no_clips() {
        let layout = Layout::new("t");
        let clips = extract_clips(&layout, LayerId::METAL1, &DetectorConfig::default());
        assert!(clips.is_empty());
    }
}
