//! End-to-end multilayer hotspot detection (Section IV-A).
//!
//! Real hotspots can be formed by the interaction of several metal layers.
//! Following the paper: topological classification runs on one selected
//! layer; for every training pattern the features comprise `m` per-layer
//! critical-feature sets plus `m − 1` sets from the overlapped polygons of
//! adjacent layers (Fig. 13). Clip extraction also runs on the
//! classification layer, and each extracted clip gathers the geometry of
//! all layers before evaluation.

use crate::config::DetectorConfig;
use crate::extraction::{extract_clips_indexed, RectIndex};
use crate::pattern::Pattern;
use crate::training::{classify_patterns_mode, core_signature_and_grid, train_iterative, Region};
use hotspot_geom::{DensityGrid, Rect};
use hotspot_layout::{ClipWindow, LayerId, Layout};
use hotspot_svm::{SvmModel, TrainError};
use hotspot_topo::multilayer::MultilayerFeatures;
use hotspot_topo::TopoSignature;
use serde::{Deserialize, Serialize};

/// A clip pattern spanning several layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultilayerPattern {
    /// The clip window shared by all layers.
    pub window: ClipWindow,
    /// Per-layer rectangles (outer index = layer, in a fixed order).
    pub layers: Vec<Vec<Rect>>,
}

impl MultilayerPattern {
    /// Builds a pattern, clipping every layer's rects to the window.
    pub fn new(window: ClipWindow, layers: &[Vec<Rect>]) -> MultilayerPattern {
        MultilayerPattern {
            window,
            layers: layers
                .iter()
                .map(|rects| {
                    rects
                        .iter()
                        .filter_map(|r| r.intersection(&window.clip))
                        .collect()
                })
                .collect(),
        }
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The single-layer pattern of the classification layer (layer 0).
    pub fn classification_pattern(&self) -> Pattern {
        Pattern::new(self.window, self.layers.first().map_or(&[], Vec::as_slice))
    }

    /// Core-region rects of every layer, in window-local coordinates.
    fn normalized_core_layers(&self) -> (Rect, Vec<Vec<Rect>>) {
        let core = self.window.core;
        let local = Rect::from_extents(0, 0, core.width(), core.height());
        let layers = self
            .layers
            .iter()
            .map(|rects| {
                rects
                    .iter()
                    .filter_map(|r| r.intersection(&core))
                    .map(|r| r.translate(-core.min()))
                    .collect()
            })
            .collect();
        (local, layers)
    }

    /// The Fig. 13 feature vector: `m` per-layer sets + `m − 1` overlap
    /// sets over the core region.
    pub fn feature_vector(&self, config: &DetectorConfig) -> Vec<f64> {
        let (window, layers) = self.normalized_core_layers();
        MultilayerFeatures::extract(&window, &layers, &config.feature).to_vector()
    }
}

/// A labelled multilayer training corpus.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MultilayerTrainingSet {
    /// Hotspot patterns.
    pub hotspots: Vec<MultilayerPattern>,
    /// Nonhotspot patterns.
    pub nonhotspots: Vec<MultilayerPattern>,
}

/// One per-cluster multilayer kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MlKernel {
    model: SvmModel,
    signature: TopoSignature,
    centroid: DensityGrid,
    radius: f64,
    feature_len: usize,
}

/// The trained multilayer detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultilayerDetector {
    kernels: Vec<MlKernel>,
    layer_count: usize,
    config: DetectorConfig,
}

impl MultilayerDetector {
    /// Trains per-cluster kernels: classification by the first layer's core
    /// topology, features from all layers plus adjacent-layer overlaps.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] for empty or inconsistent training data.
    pub fn train(
        training: &MultilayerTrainingSet,
        config: DetectorConfig,
    ) -> Result<MultilayerDetector, TrainError> {
        if training.hotspots.is_empty() {
            return Err(TrainError::EmptyTrainingSet);
        }
        let layer_count = training.hotspots[0].layer_count();

        // Classify hotspots by the first layer (the paper classifies "on
        // one randomly selected layer"; we fix layer 0 for determinism).
        let class_patterns: Vec<Pattern> = training
            .hotspots
            .iter()
            .map(MultilayerPattern::classification_pattern)
            .collect();
        let clusters = classify_patterns_mode(
            &class_patterns,
            Region::Core,
            &config.cluster,
            config.raster_mode,
        );

        // Nonhotspot side: all nonhotspots (multilayer sets are small; the
        // single-layer pipeline's medoid downsampling applies before this).
        let negative_features: Vec<Vec<f64>> = training
            .nonhotspots
            .iter()
            .map(|p| p.feature_vector(&config))
            .collect();

        let mut kernels = Vec::with_capacity(clusters.len());
        for cluster in &clusters {
            let positives: Vec<Vec<f64>> = cluster
                .members
                .iter()
                .map(|&i| training.hotspots[i].feature_vector(&config))
                .collect();
            let feature_len = positives
                .iter()
                .chain(&negative_features)
                .map(Vec::len)
                .max()
                .unwrap_or(5);
            let mut x = Vec::with_capacity(positives.len() + negative_features.len());
            let mut y = Vec::with_capacity(x.capacity());
            for f in &positives {
                x.push(pad(f.clone(), feature_len));
                y.push(1.0);
            }
            for f in &negative_features {
                x.push(pad(f.clone(), feature_len));
                y.push(-1.0);
            }
            let fit = train_iterative(&x, &y, &config)?;
            kernels.push(MlKernel {
                model: fit.model,
                signature: cluster.signature.clone(),
                centroid: cluster.centroid.clone(),
                radius: cluster.radius,
                feature_len,
            });
        }
        Ok(MultilayerDetector {
            kernels,
            layer_count,
            config,
        })
    }

    /// Number of trained kernels.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Classifies one multilayer clip (any-kernel-flags semantics).
    pub fn classify(&self, pattern: &MultilayerPattern) -> bool {
        let class = pattern.classification_pattern();
        let (signature, grid) = core_signature_and_grid(&class, &self.config);
        let features_full = pattern.feature_vector(&self.config);
        for k in &self.kernels {
            let topo_match = signature == k.signature;
            let density_match = grid.nx() == k.centroid.nx()
                && grid.distance(&k.centroid).distance <= self.config.admission.threshold(k.radius);
            if !topo_match && !density_match {
                continue;
            }
            let f = pad(features_full.clone(), k.feature_len);
            if k.model.decision_value(&f) > self.config.decision_threshold {
                return true;
            }
        }
        false
    }

    /// Scans a testing layout: clips extracted on `layers[0]`, geometry
    /// gathered from every listed layer.
    ///
    /// # Panics
    ///
    /// Panics if `layers` does not match the trained layer count.
    pub fn detect(&self, layout: &Layout, layers: &[LayerId]) -> Vec<ClipWindow> {
        assert_eq!(
            layers.len(),
            self.layer_count,
            "layer count mismatch with training"
        );
        let base_index =
            RectIndex::from_layout(layout, layers[0], self.config.clip_shape.clip_side());
        let clips = extract_clips_indexed(
            &base_index,
            self.config.clip_shape,
            &self.config.distribution,
        );
        let other_indexes: Vec<RectIndex> = layers[1..]
            .iter()
            .map(|&l| RectIndex::from_layout(layout, l, self.config.clip_shape.clip_side()))
            .collect();
        clips
            .into_iter()
            .filter_map(|clip| {
                let mut layer_rects = vec![clip.rects.clone()];
                for idx in &other_indexes {
                    layer_rects.push(idx.query(&clip.window.clip));
                }
                let ml = MultilayerPattern::new(clip.window, &layer_rects);
                if self.classify(&ml) {
                    Some(clip.window)
                } else {
                    None
                }
            })
            .collect()
    }
}

fn pad(mut v: Vec<f64>, len: usize) -> Vec<f64> {
    v.resize(len, 0.0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::Point;
    use hotspot_layout::ClipShape;

    fn window() -> ClipWindow {
        ClipShape::ICCAD2012.window_from_core_corner(Point::new(0, 0))
    }

    /// Metal-1 bars with a gap; metal 2 may add a crossing wire whose via
    /// overlap makes the difference between hotspot and safe.
    fn m1(gap: i64) -> Vec<Rect> {
        vec![
            Rect::from_extents(0, 0, 400, 300),
            Rect::from_extents(400 + gap, 0, 800 + gap, 300),
        ]
    }

    fn crossing_m2() -> Vec<Rect> {
        vec![Rect::from_extents(350, 0, 550, 1100)]
    }

    fn training() -> MultilayerTrainingSet {
        let mut t = MultilayerTrainingSet::default();
        // Hotspots: narrow m1 gap WITH an m2 crossing wire.
        for i in 0..4 {
            t.hotspots.push(MultilayerPattern::new(
                window(),
                &[m1(60 + 10 * i), crossing_m2()],
            ));
        }
        // Nonhotspots: same m1 topology but no m2 crossing, or wide gaps.
        for i in 0..4 {
            t.nonhotspots
                .push(MultilayerPattern::new(window(), &[m1(60 + 10 * i), vec![]]));
            t.nonhotspots.push(MultilayerPattern::new(
                window(),
                &[m1(450 + 10 * i), crossing_m2()],
            ));
        }
        t
    }

    fn config() -> DetectorConfig {
        DetectorConfig {
            max_learning_rounds: 4,
            ..Default::default()
        }
    }

    #[test]
    fn pattern_construction_clips_all_layers() {
        let p = MultilayerPattern::new(
            window(),
            &[
                vec![Rect::from_extents(-9000, 0, 400, 300)],
                vec![Rect::from_extents(0, -9000, 300, 400)],
            ],
        );
        assert_eq!(p.layer_count(), 2);
        for layer in &p.layers {
            for r in layer {
                assert!(p.window.clip.contains_rect(r));
            }
        }
    }

    #[test]
    fn feature_vector_covers_layers_and_overlap() {
        let p = MultilayerPattern::new(window(), &[m1(100), crossing_m2()]);
        let cfg = config();
        let v = p.feature_vector(&cfg);
        // Two per-layer sets plus one overlap set: at least 15 values.
        assert!(v.len() >= 15, "vector too short: {}", v.len());
    }

    #[test]
    fn detector_separates_by_second_layer() {
        // The classification layer (m1) is identical between hotspots and
        // the "no crossing wire" nonhotspots: only the m2 features decide.
        let det = MultilayerDetector::train(&training(), config()).unwrap();
        assert!(det.kernel_count() >= 1);
        let hot = MultilayerPattern::new(window(), &[m1(75), crossing_m2()]);
        let cold = MultilayerPattern::new(window(), &[m1(75), vec![]]);
        assert!(det.classify(&hot), "crossing-wire pattern must flag");
        assert!(!det.classify(&cold), "bare-m1 pattern must pass");
    }

    #[test]
    fn detect_scans_both_layers() {
        let det = MultilayerDetector::train(&training(), config()).unwrap();
        let mut layout = Layout::new("ml");
        let (l1, l2) = (LayerId::new(1), LayerId::new(2));
        let at = Point::new(24_000, 24_000);
        for r in m1(70) {
            layout.add_rect(l1, r.translate(at));
        }
        for r in crossing_m2() {
            layout.add_rect(l2, r.translate(at));
        }
        for r in hotspot_benchgen::generator::filler_rects(at) {
            layout.add_rect(l1, r);
        }
        let reported = det.detect(&layout, &[l1, l2]);
        let target = ClipShape::ICCAD2012.window_from_core_corner(at);
        assert!(
            reported.iter().any(|w| w.is_hit(&target, 0.2)),
            "multilayer hotspot not reported ({} reports)",
            reported.len()
        );
    }

    #[test]
    fn empty_training_errors() {
        let r = MultilayerDetector::train(&MultilayerTrainingSet::default(), config());
        assert!(matches!(r, Err(TrainError::EmptyTrainingSet)));
    }

    #[test]
    #[should_panic(expected = "layer count mismatch")]
    fn detect_rejects_wrong_layer_count() {
        let det = MultilayerDetector::train(&training(), config()).unwrap();
        let layout = Layout::new("ml");
        let _ = det.detect(&layout, &[LayerId::new(1)]);
    }
}
