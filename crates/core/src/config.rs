//! All framework parameters, defaulting to the values the paper reports in
//! its experiments (Section V, second experiment set).

use hotspot_geom::{Coord, RasterMode};
use hotspot_layout::ClipShape;
use hotspot_topo::{ClusterParams, FeatureConfig};
use serde::{Deserialize, Serialize};

/// Requirements on the polygon distribution of an extracted layout clip
/// (Section III-E): clips failing any bound are discarded before SVM
/// evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributionFilter {
    /// Minimum polygon density inside the clip's core.
    pub min_core_density: f64,
    /// Minimum number of polygon rectangles inside the clip.
    pub min_polygon_count: usize,
    /// Maximum allowed distance between each clip boundary and the bounding
    /// box of the polygons inside the clip (1440 nm in the paper).
    pub max_boundary_bbox_distance: Coord,
}

impl Default for DistributionFilter {
    fn default() -> Self {
        DistributionFilter {
            min_core_density: 0.01,
            min_polygon_count: 1,
            max_boundary_bbox_distance: 1440,
        }
    }
}

/// Ablation switches matching the rows of Table III: `Basic` corresponds to
/// all three disabled (handled by the baselines crate), `+Topology` enables
/// clustering only, `+Removal` adds redundant clip removal, and the full
/// framework also enables the feedback kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationSwitches {
    /// Topological classification + population balancing + multiple kernels.
    pub topology: bool,
    /// Redundant clip removal after evaluation.
    pub removal: bool,
    /// Feedback kernel training and evaluation.
    pub feedback: bool,
}

impl Default for AblationSwitches {
    fn default() -> Self {
        AblationSwitches {
            topology: true,
            removal: true,
            feedback: true,
        }
    }
}

/// Which implementation of the evaluation stage (admission routing + SVM
/// decision values) a detector uses.
///
/// Both modes flag byte-identical hotspot sets; `Reference` exists as the
/// oracle the compiled engines are pinned against and for debugging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EvalMode {
    /// Naive per-kernel loops: the 8-orientation density search via
    /// [`hotspot_geom::DensityGrid::distance`] and per-sample RBF kernel
    /// evaluation. Slow, obviously correct.
    Reference,
    /// The compiled engines: the batched admission router
    /// ([`hotspot_topo::route::CentroidRouter`]) plus the flattened
    /// support-vector evaluator ([`hotspot_svm::CompiledModel`]).
    #[default]
    Compiled,
}

impl std::str::FromStr for EvalMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reference" => Ok(EvalMode::Reference),
            "compiled" => Ok(EvalMode::Compiled),
            other => Err(format!(
                "unknown eval mode '{other}' (expected 'reference' or 'compiled')"
            )),
        }
    }
}

impl std::fmt::Display for EvalMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EvalMode::Reference => "reference",
            EvalMode::Compiled => "compiled",
        })
    }
}

/// Kernel-admission parameters: when a clip's core density grid is within
/// `max(kernel radius, radius_floor) × fuzziness` of a kernel's cluster
/// centroid under the eq. (1) distance — or its topology matches exactly —
/// the kernel evaluates the clip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionParams {
    /// Fuzziness factor scaling each kernel's admission radius (1.5).
    pub fuzziness: f64,
    /// Lower bound on the radius before scaling, so kernels whose cluster
    /// collapsed to a point still admit their own centroid.
    pub radius_floor: f64,
}

impl Default for AdmissionParams {
    fn default() -> Self {
        AdmissionParams {
            fuzziness: 1.5,
            radius_floor: 1e-9,
        }
    }
}

impl AdmissionParams {
    /// The admission threshold of a kernel with the given cluster radius.
    pub fn threshold(&self, radius: f64) -> f64 {
        radius.max(self.radius_floor) * self.fuzziness
    }
}

/// Full configuration of [`crate::HotspotDetector`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Core/clip geometry (ICCAD-2012: 1.2 µm core, 4.8 µm clip).
    pub clip_shape: ClipShape,
    /// Initial SVM penalty `C` (1000 in the paper).
    pub initial_c: f64,
    /// Initial RBF width `γ` (0.01 in the paper).
    pub initial_gamma: f64,
    /// Upper bound on self-training rounds; `C` and `γ` double each round.
    pub max_learning_rounds: usize,
    /// Stop self-training once training accuracy reaches this (0.9).
    pub target_training_accuracy: f64,
    /// Density-based classification parameters (K = 10 in the paper).
    pub cluster: ClusterParams,
    /// Critical-feature extraction configuration.
    pub feature: FeatureConfig,
    /// Data-shifting distance for hotspot upsampling (120 nm = `l_c`/10).
    pub data_shift: Coord,
    /// Polygon-distribution requirements for clip extraction.
    pub distribution: DistributionFilter,
    /// Minimum core-overlap ratio for clip merging (0.2 in the paper).
    pub min_merge_overlap: f64,
    /// Separating distance `l_s` of core reframing (1150 nm; must stay
    /// below the core side).
    pub reframe_separation: Coord,
    /// Merging regions holding more than this many cores are reframed (4).
    pub reframe_core_limit: usize,
    /// Clip-overlap ratio required for a reported hotspot to count as a hit.
    pub min_hit_clip_overlap: f64,
    /// SVM decision threshold at evaluation; raising it trades hits for
    /// fewer extras (`ours_med` ≈ 0.3, `ours_low` ≈ 0.6 operating points).
    pub decision_threshold: f64,
    /// Kernel-admission parameters (fuzziness factor and radius floor).
    ///
    /// Absent in model files written before schema v2 of the evaluation
    /// engine; such files load with the default parameters.
    #[serde(default)]
    pub admission: AdmissionParams,
    /// Evaluation-engine selection; not persisted as a tuning knob so much
    /// as a debugging switch, hence the serde default.
    #[serde(default)]
    pub eval_mode: EvalMode,
    /// Density-grid rasterisation strategy ([`RasterMode::Sat`] shares a
    /// per-tile summed-area table across clips; both modes are
    /// bit-identical on arbitrary input). Serde default for the same
    /// back-compat reason as `eval_mode`.
    #[serde(default)]
    pub raster_mode: RasterMode,
    /// Worker threads for training and evaluation; 0 = one per core.
    pub threads: usize,
    /// Ablation switches (Table III).
    pub ablation: AblationSwitches,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            clip_shape: ClipShape::ICCAD2012,
            initial_c: 1000.0,
            initial_gamma: 0.01,
            max_learning_rounds: 8,
            target_training_accuracy: 0.9,
            cluster: ClusterParams {
                radius_floor: 4.0,
                expected_count: 10,
                grid: 8,
            },
            feature: FeatureConfig::default(),
            data_shift: 120,
            distribution: DistributionFilter::default(),
            min_merge_overlap: 0.2,
            reframe_separation: 1150,
            reframe_core_limit: 4,
            min_hit_clip_overlap: 0.2,
            decision_threshold: 0.0,
            admission: AdmissionParams::default(),
            eval_mode: EvalMode::default(),
            raster_mode: RasterMode::default(),
            threads: 0,
            ablation: AblationSwitches::default(),
        }
    }
}

impl DetectorConfig {
    /// The paper's `ours_med` operating point: medium hit rate, medium
    /// hit/extra ratio.
    pub fn medium_accuracy(mut self) -> Self {
        self.decision_threshold = 0.3;
        self
    }

    /// The paper's `ours_low` operating point: lower hit rate, high
    /// hit/extra ratio.
    pub fn low_accuracy(mut self) -> Self {
        self.decision_threshold = 0.6;
        self
    }

    /// Disables multithreading (`ours_nopara`).
    pub fn sequential(mut self) -> Self {
        self.threads = 1;
        self
    }

    /// Validates internal consistency (e.g. `l_s < l_c`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.reframe_separation >= self.clip_shape.core_side() {
            return Err(format!(
                "reframe separation {} must be below the core side {}",
                self.reframe_separation,
                self.clip_shape.core_side()
            ));
        }
        if !(0.0..=1.0).contains(&self.target_training_accuracy) {
            return Err("target training accuracy must lie in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.min_merge_overlap) {
            return Err("minimum merge overlap must lie in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.min_hit_clip_overlap) {
            return Err("minimum hit clip overlap must lie in [0, 1]".into());
        }
        if self.initial_c <= 0.0 || self.initial_gamma <= 0.0 {
            return Err("initial C and gamma must be positive".into());
        }
        if self.data_shift < 0 {
            return Err("data shift cannot be negative".into());
        }
        if self.admission.fuzziness < 0.0 {
            return Err("admission fuzziness cannot be negative".into());
        }
        if self.admission.radius_floor < 0.0 {
            return Err("admission radius floor cannot be negative".into());
        }
        Ok(())
    }

    /// Number of worker threads to actually use.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DetectorConfig::default();
        assert_eq!(c.initial_c, 1000.0);
        assert_eq!(c.initial_gamma, 0.01);
        assert_eq!(c.cluster.expected_count, 10);
        assert_eq!(c.data_shift, 120);
        assert_eq!(c.distribution.max_boundary_bbox_distance, 1440);
        assert_eq!(c.min_merge_overlap, 0.2);
        assert_eq!(c.reframe_separation, 1150);
        assert_eq!(c.clip_shape.core_side(), 1200);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn operating_points() {
        assert!(
            DetectorConfig::default()
                .medium_accuracy()
                .decision_threshold
                > 0.0
        );
        let low = DetectorConfig::default().low_accuracy();
        let med = DetectorConfig::default().medium_accuracy();
        assert!(low.decision_threshold > med.decision_threshold);
        assert_eq!(DetectorConfig::default().sequential().threads, 1);
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = DetectorConfig {
            reframe_separation: 1200,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = DetectorConfig {
            target_training_accuracy: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = DetectorConfig {
            initial_gamma: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = DetectorConfig {
            data_shift: -5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn eval_mode_parses_and_displays() {
        assert_eq!("reference".parse::<EvalMode>(), Ok(EvalMode::Reference));
        assert_eq!("compiled".parse::<EvalMode>(), Ok(EvalMode::Compiled));
        assert!("Compiled".parse::<EvalMode>().is_err());
        assert!("fast".parse::<EvalMode>().is_err());
        assert_eq!(EvalMode::Reference.to_string(), "reference");
        assert_eq!(EvalMode::default(), EvalMode::Compiled);
    }

    #[test]
    fn admission_threshold_applies_floor_then_fuzziness() {
        let p = AdmissionParams::default();
        assert_eq!(p.threshold(4.0), 4.0 * 1.5);
        assert_eq!(p.threshold(0.0), 1e-9 * 1.5);
        let custom = AdmissionParams {
            fuzziness: 2.0,
            radius_floor: 0.5,
        };
        assert_eq!(custom.threshold(0.1), 1.0);
    }

    #[test]
    fn configs_without_admission_fields_load_with_defaults() {
        // A config serialised before the `admission`/`eval_mode` fields
        // existed (the old flat `fuzziness` knob is ignored by serde).
        let default_json = serde_json::to_string(&DetectorConfig::default()).unwrap();
        let mut value = serde_json::parse_value(&default_json).unwrap();
        let serde::Value::Object(entries) = &mut value else {
            panic!("config serialises as an object");
        };
        entries.retain(|(k, _)| k != "admission" && k != "eval_mode" && k != "raster_mode");
        entries.push(("fuzziness".into(), serde::Value::Float(1.5)));
        let legacy = serde_json::to_string(&value).unwrap();
        let parsed: DetectorConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(parsed.admission, AdmissionParams::default());
        assert_eq!(parsed.eval_mode, EvalMode::Compiled);
        assert_eq!(parsed.raster_mode, RasterMode::Sat);
    }

    #[test]
    fn validation_catches_bad_admission_params() {
        let c = DetectorConfig {
            admission: AdmissionParams {
                fuzziness: -1.0,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = DetectorConfig {
            admission: AdmissionParams {
                radius_floor: -1.0,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn effective_threads_positive() {
        assert!(DetectorConfig::default().effective_threads() >= 1);
        assert_eq!(
            DetectorConfig {
                threads: 3,
                ..Default::default()
            }
            .effective_threads(),
            3
        );
    }
}
