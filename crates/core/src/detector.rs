//! The end-to-end hotspot detector (Fig. 3).

use crate::balance::upsample_hotspots;
use crate::config::DetectorConfig;
use crate::extraction::{extract_clips_indexed, RectIndex};
use crate::feedback::{flagging_kernels, train_feedback, FeedbackKernel};
use crate::metrics::{score, Evaluation};
use crate::pattern::{Pattern, TrainingSet};
use crate::removal::remove_redundant_clips;
use crate::training::{
    classify_patterns, density_grid, train_cluster_kernels, ClusterKernel, PatternCluster, Region,
};
use hotspot_layout::{ClipWindow, LayerId, Layout};
use hotspot_svm::TrainError;
use hotspot_topo::TopoSignature;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{Duration, Instant};

/// Error running the training pipeline.
#[derive(Debug)]
pub enum TrainPipelineError {
    /// The training set contains no hotspot patterns.
    NoHotspots,
    /// The configuration failed validation.
    Config(String),
    /// An SVM kernel failed to train.
    Svm(TrainError),
}

impl fmt::Display for TrainPipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainPipelineError::NoHotspots => {
                write!(f, "training set contains no hotspot patterns")
            }
            TrainPipelineError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            TrainPipelineError::Svm(e) => write!(f, "svm training failed: {e}"),
        }
    }
}

impl std::error::Error for TrainPipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainPipelineError::Svm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TrainError> for TrainPipelineError {
    fn from(e: TrainError) -> Self {
        TrainPipelineError::Svm(e)
    }
}

/// Outcome of evaluating one testing layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// The reported hotspot clips (after removal, when enabled).
    pub reported: Vec<ClipWindow>,
    /// Candidate clips extracted from the layout.
    pub clips_extracted: usize,
    /// Clips flagged hotspot by the multiple kernels.
    pub clips_flagged: usize,
    /// Flags reclaimed to nonhotspot by the feedback kernel.
    pub feedback_reclaimed: usize,
    /// Wall-clock time of clip extraction.
    #[serde(skip)]
    pub extraction_time: Duration,
    /// Wall-clock time of kernel evaluation.
    #[serde(skip)]
    pub classification_time: Duration,
    /// Wall-clock time of redundant clip removal.
    #[serde(skip)]
    pub removal_time: Duration,
}

impl DetectionReport {
    /// Total wall-clock time of the evaluation phase.
    pub fn total_time(&self) -> Duration {
        self.extraction_time + self.classification_time + self.removal_time
    }

    /// Scores this report against ground-truth hotspot windows.
    pub fn score_against(
        &self,
        actual: &[ClipWindow],
        min_clip_overlap: f64,
        layout_area_um2: f64,
    ) -> Evaluation {
        score(
            &self.reported,
            actual,
            min_clip_overlap,
            layout_area_um2,
            self.total_time(),
        )
    }
}

/// Summary of the training phase, for diagnostics and the experiment
/// harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSummary {
    /// Hotspot patterns after upsampling.
    pub upsampled_hotspots: usize,
    /// Hotspot clusters (= SVM kernels).
    pub hotspot_clusters: usize,
    /// Nonhotspot clusters found.
    pub nonhotspot_clusters: usize,
    /// Nonhotspot medoids kept after downsampling.
    pub nonhotspot_medoids: usize,
    /// Whether a feedback kernel was trained.
    pub feedback_trained: bool,
    /// Wall-clock training time.
    #[serde(skip)]
    pub training_time: Duration,
}

impl TrainingSummary {
    /// The paper's `#hs/#nhs` balance ratio after resampling (Table III).
    pub fn balance_ratio(&self) -> f64 {
        if self.nonhotspot_medoids == 0 {
            return 0.0;
        }
        self.upsampled_hotspots as f64 / self.nonhotspot_medoids as f64
    }
}

/// The trained hotspot-detection framework.
///
/// Serialisable with serde, so a trained detector can be persisted and
/// reloaded (see the `hotspot` CLI's `train` / `detect` commands).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotspotDetector {
    kernels: Vec<ClusterKernel>,
    feedback: Option<FeedbackKernel>,
    config: DetectorConfig,
    summary: TrainingSummary,
}

impl HotspotDetector {
    /// Runs the full training phase of Fig. 3: upsampling, topological
    /// classification, population balancing, multiple-kernel learning, and
    /// feedback-kernel learning.
    ///
    /// # Errors
    ///
    /// Returns [`TrainPipelineError`] for invalid configurations, an empty
    /// hotspot set, or SVM failures.
    pub fn train(
        training: &TrainingSet,
        config: DetectorConfig,
    ) -> Result<HotspotDetector, TrainPipelineError> {
        config.validate().map_err(TrainPipelineError::Config)?;
        if training.hotspots.is_empty() {
            return Err(TrainPipelineError::NoHotspots);
        }
        let start = Instant::now();

        let (hotspots, hotspot_clusters, nonhotspot_clusters, medoids) =
            if config.ablation.topology {
                // Upsample hotspots by data shifting, classify both classes,
                // and downsample nonhotspots to cluster medoids.
                let hotspots = upsample_hotspots(&training.hotspots, config.data_shift);
                let h_clusters = classify_patterns(&hotspots, Region::Core, &config.cluster);
                let n_clusters =
                    classify_patterns(&training.nonhotspots, Region::Core, &config.cluster);
                let medoids: Vec<Pattern> = n_clusters
                    .iter()
                    .map(|c| training.nonhotspots[c.medoid].clone())
                    .collect();
                (hotspots, h_clusters, n_clusters, medoids)
            } else {
                // Degenerate single-cluster mode (the "Basic" ablation): one
                // kernel over all hotspots against all nonhotspots.
                let hotspots = training.hotspots.clone();
                let cluster = single_cluster(&hotspots, &config);
                (
                    hotspots,
                    vec![cluster],
                    Vec::new(),
                    training.nonhotspots.clone(),
                )
            };

        let kernels = train_cluster_kernels(&hotspots, &hotspot_clusters, &medoids, &config)?;

        let feedback = if config.ablation.feedback && config.ablation.topology {
            train_feedback(
                &hotspots,
                &hotspot_clusters,
                &kernels,
                &training.nonhotspots,
                &nonhotspot_clusters,
                &config,
            )?
        } else {
            None
        };

        let summary = TrainingSummary {
            upsampled_hotspots: hotspots.len(),
            hotspot_clusters: hotspot_clusters.len(),
            nonhotspot_clusters: nonhotspot_clusters.len(),
            nonhotspot_medoids: medoids.len(),
            feedback_trained: feedback.is_some(),
            training_time: start.elapsed(),
        };

        Ok(HotspotDetector {
            kernels,
            feedback,
            config,
            summary,
        })
    }

    /// The trained per-cluster kernels.
    pub fn kernels(&self) -> &[ClusterKernel] {
        &self.kernels
    }

    /// The feedback kernel, when one was trained.
    pub fn feedback(&self) -> Option<&FeedbackKernel> {
        self.feedback.as_ref()
    }

    /// The configuration the detector was trained with.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Training-phase statistics.
    pub fn summary(&self) -> &TrainingSummary {
        &self.summary
    }

    /// Classifies a single clip pattern (multiple kernels, then feedback).
    pub fn classify(&self, pattern: &Pattern) -> bool {
        self.classify_with_threshold(pattern, self.config.decision_threshold)
    }

    /// Calibrated hotspot probability of a clip: the maximum Platt
    /// probability over the kernels the clip routes to, or `None` when no
    /// kernel's topology or density gate admits it.
    pub fn classify_probability(&self, pattern: &Pattern) -> Option<f64> {
        let window = pattern.window.core;
        let rects: Vec<_> = pattern
            .rects
            .iter()
            .filter_map(|r| r.intersection(&window))
            .map(|r| r.translate(-window.min()))
            .collect();
        let local =
            hotspot_geom::Rect::from_extents(0, 0, window.width(), window.height());
        let signature = hotspot_topo::TopoSignature::of(&local, &rects);
        let grid =
            crate::training::density_grid(pattern, crate::training::Region::Core, &self.config);
        let mut best: Option<f64> = None;
        for k in &self.kernels {
            let topo_match = signature == k.signature;
            let density_match = grid.nx() == k.centroid.nx()
                && grid.ny() == k.centroid.ny()
                && grid.distance(&k.centroid).distance
                    <= k.radius.max(1e-9) * self.config.fuzziness;
            if !topo_match && !density_match {
                continue;
            }
            let features = crate::training::feature_vector_padded(
                pattern,
                crate::training::Region::Core,
                &self.config,
                k.feature_len,
            );
            let p = k.platt.probability(k.model.decision_value(&features));
            if best.map_or(true, |b| p > b) {
                best = Some(p);
            }
        }
        best
    }

    /// Classification at an explicit decision threshold (for the Fig. 15
    /// trade-off sweep).
    pub fn classify_with_threshold(&self, pattern: &Pattern, threshold: f64) -> bool {
        let flags = flagging_kernels(&self.kernels, pattern, &self.config, threshold);
        if flags.is_empty() {
            return false;
        }
        match (&self.feedback, self.config.ablation.feedback) {
            (Some(fb), true) => fb.confirms(pattern, &self.config),
            _ => true,
        }
    }

    /// Runs the full evaluation phase of Fig. 3 on a testing layout.
    pub fn detect(&self, layout: &Layout, layer: LayerId) -> DetectionReport {
        self.detect_with_threshold(layout, layer, self.config.decision_threshold)
    }

    /// Evaluation with an explicit decision threshold.
    pub fn detect_with_threshold(
        &self,
        layout: &Layout,
        layer: LayerId,
        threshold: f64,
    ) -> DetectionReport {
        // 1. Clip extraction over a shared spatial index.
        let t0 = Instant::now();
        let index = RectIndex::from_layout(layout, layer, self.config.clip_shape.clip_side());
        let clips = extract_clips_indexed(&index, self.config.clip_shape, &self.config.distribution);
        let extraction_time = t0.elapsed();

        // 2. Multiple-kernel (and feedback) evaluation, parallel over clips.
        let t1 = Instant::now();
        let threads = self.config.effective_threads().max(1);
        let flags: Vec<(bool, bool)> = if threads <= 1 || clips.len() < 2 {
            clips
                .iter()
                .map(|c| self.flag_pattern(c, threshold))
                .collect()
        } else {
            let chunk = clips.len().div_ceil(threads);
            std::thread::scope(|scope| {
                let handles: Vec<_> = clips
                    .chunks(chunk)
                    .map(|cs| {
                        scope.spawn(move || {
                            cs.iter()
                                .map(|c| self.flag_pattern(c, threshold))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("classification panicked"))
                    .collect()
            })
        };
        let mut flagged_cores = Vec::new();
        let mut clips_flagged = 0usize;
        let mut feedback_reclaimed = 0usize;
        for (clip, (flagged, reclaimed)) in clips.iter().zip(&flags) {
            if *flagged {
                clips_flagged += 1;
                if *reclaimed {
                    feedback_reclaimed += 1;
                } else {
                    flagged_cores.push(clip.window.core);
                }
            }
        }
        let classification_time = t1.elapsed();

        // 3. Redundant clip removal.
        let t2 = Instant::now();
        let reported = if self.config.ablation.removal {
            remove_redundant_clips(flagged_cores, self.config.clip_shape, &index, &self.config)
        } else {
            flagged_cores
                .into_iter()
                .map(|core| ClipWindow {
                    core,
                    clip: core.inflate(self.config.clip_shape.ambit()),
                })
                .collect()
        };
        let removal_time = t2.elapsed();

        DetectionReport {
            reported,
            clips_extracted: clips.len(),
            clips_flagged,
            feedback_reclaimed,
            extraction_time,
            classification_time,
            removal_time,
        }
    }

    /// `(flagged_by_kernels, reclaimed_by_feedback)` for one clip.
    fn flag_pattern(&self, pattern: &Pattern, threshold: f64) -> (bool, bool) {
        let flags = flagging_kernels(&self.kernels, pattern, &self.config, threshold);
        if flags.is_empty() {
            return (false, false);
        }
        let reclaimed = match (&self.feedback, self.config.ablation.feedback) {
            (Some(fb), true) => !fb.confirms(pattern, &self.config),
            _ => false,
        };
        (true, reclaimed)
    }
}

/// A degenerate cluster holding every hotspot (the single-kernel ablation).
fn single_cluster(hotspots: &[Pattern], config: &DetectorConfig) -> PatternCluster {
    let first = &hotspots[0];
    let window = first.window.core;
    let local_rects: Vec<_> = first
        .core_rects()
        .iter()
        .map(|r| r.translate(-window.min()))
        .collect();
    let local = hotspot_geom::Rect::from_extents(0, 0, window.width(), window.height());
    let signature = TopoSignature::of(&local, &local_rects);
    let mut centroid = density_grid(first, Region::Core, config);
    for (i, p) in hotspots.iter().enumerate().skip(1) {
        let g = density_grid(p, Region::Core, config);
        centroid.fold_mean(&g, i);
    }
    PatternCluster {
        members: (0..hotspots.len()).collect(),
        signature,
        centroid,
        // An effectively infinite radius routes every clip to this kernel.
        radius: f64::MAX / 4.0,
        medoid: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::{Point, Rect};
    use hotspot_layout::ClipShape;

    fn shape() -> ClipShape {
        ClipShape::ICCAD2012
    }

    /// Builds a training clip anchored like layout-clip extraction does:
    /// the core's bottom-left corner sits at `corner` and the motif rects
    /// are corner-relative. Training clips and extracted clips then share
    /// the same frame, as the contest's foundry-provided clips do.
    fn pattern_at(corner: Point, rects: &[Rect]) -> Pattern {
        let window = shape().window_from_core_corner(corner);
        let abs: Vec<Rect> = rects.iter().map(|r| r.translate(corner)).collect();
        Pattern::new(window, &abs)
    }

    /// Hotspot motif: two bars with a dangerously narrow gap, anchored at
    /// the origin corner.
    fn hs_rects(gap: i64) -> Vec<Rect> {
        vec![
            Rect::from_extents(0, 0, 300, 300),
            Rect::from_extents(300 + gap, 0, 600 + gap, 300),
        ]
    }

    /// Safe motif: same topology, generous gap (still inside the core).
    fn safe_rects(gap: i64) -> Vec<Rect> {
        hs_rects(gap)
    }

    fn training_set() -> TrainingSet {
        let mut ts = TrainingSet::new();
        for i in 0..4 {
            ts.push(
                pattern_at(Point::new(0, 0), &hs_rects(60 + 10 * i)),
                crate::Label::Hotspot,
            );
        }
        for i in 0..8 {
            ts.push(
                pattern_at(Point::new(0, 0), &safe_rects(480 + 10 * i)),
                crate::Label::NonHotspot,
            );
        }
        ts
    }

    fn fast_config() -> DetectorConfig {
        DetectorConfig {
            max_learning_rounds: 3,
            threads: 2,
            // The unit-test layouts are sparse; keep the paper's bound for
            // the dense benchmark layouts only.
            distribution: crate::DistributionFilter {
                min_core_density: 0.001,
                min_polygon_count: 1,
                max_boundary_bbox_distance: 4800,
            },
            ..Default::default()
        }
    }

    #[test]
    fn trains_and_classifies_patterns() {
        let det = HotspotDetector::train(&training_set(), fast_config()).unwrap();
        assert!(!det.kernels().is_empty());
        assert!(det.classify(&pattern_at(Point::new(0, 0), &hs_rects(80))));
        assert!(!det.classify(&pattern_at(Point::new(0, 0), &safe_rects(500))));
    }

    #[test]
    fn training_errors() {
        let mut empty = TrainingSet::new();
        empty.push(
            pattern_at(Point::new(0, 0), &safe_rects(500)),
            crate::Label::NonHotspot,
        );
        assert!(matches!(
            HotspotDetector::train(&empty, fast_config()),
            Err(TrainPipelineError::NoHotspots)
        ));

        let bad = DetectorConfig {
            reframe_separation: 10_000,
            ..Default::default()
        };
        assert!(matches!(
            HotspotDetector::train(&training_set(), bad),
            Err(TrainPipelineError::Config(_))
        ));
    }

    #[test]
    fn summary_reflects_balancing() {
        let det = HotspotDetector::train(&training_set(), fast_config()).unwrap();
        let s = det.summary();
        // 4 hotspots upsampled ×5 (original + 4 shifts, minus any empty-core
        // derivatives).
        assert!(s.upsampled_hotspots >= 4);
        assert!(s.hotspot_clusters >= 1);
        assert!(s.balance_ratio() > 0.0);
    }

    #[test]
    fn detect_finds_planted_hotspot() {
        let det = HotspotDetector::train(&training_set(), fast_config()).unwrap();
        let mut layout = Layout::new("t");
        let layer = LayerId::METAL1;
        // Plant a hotspot motif and a safe motif far apart.
        for r in hs_rects(70) {
            layout.add_rect(layer, r.translate(Point::new(20_000, 20_000)));
        }
        for r in safe_rects(500) {
            layout.add_rect(layer, r.translate(Point::new(60_000, 60_000)));
        }
        let report = det.detect(&layout, layer);
        assert!(report.clips_extracted > 0);
        let hotspot_window = shape().window_centered(Point::new(20_000, 20_000));
        assert!(
            report
                .reported
                .iter()
                .any(|w| w.is_hit(&hotspot_window, 0.2)),
            "planted hotspot not reported; {} clips reported",
            report.reported.len()
        );
    }

    #[test]
    fn threshold_monotonically_prunes_reports() {
        let det = HotspotDetector::train(&training_set(), fast_config()).unwrap();
        let mut layout = Layout::new("t");
        let layer = LayerId::METAL1;
        for i in 0..4 {
            for r in hs_rects(70 + i * 5) {
                layout.add_rect(layer, r.translate(Point::new(20_000 * (i + 1), 20_000)));
            }
        }
        let lo = det.detect_with_threshold(&layout, layer, 0.0);
        let hi = det.detect_with_threshold(&layout, layer, 2.0);
        assert!(hi.clips_flagged <= lo.clips_flagged);
    }

    #[test]
    fn parallel_and_sequential_detection_agree() {
        let det_seq = HotspotDetector::train(
            &training_set(),
            DetectorConfig {
                threads: 1,
                ..fast_config()
            },
        )
        .unwrap();
        let det_par = HotspotDetector::train(
            &training_set(),
            DetectorConfig {
                threads: 4,
                ..fast_config()
            },
        )
        .unwrap();
        let mut layout = Layout::new("t");
        let layer = LayerId::METAL1;
        for r in hs_rects(70) {
            layout.add_rect(layer, r.translate(Point::new(20_000, 20_000)));
        }
        let a = det_seq.detect(&layout, layer);
        let b = det_par.detect(&layout, layer);
        assert_eq!(a.reported, b.reported);
        assert_eq!(a.clips_extracted, b.clips_extracted);
    }

    #[test]
    fn probabilities_are_calibrated_and_ordered() {
        let det = HotspotDetector::train(&training_set(), fast_config()).unwrap();
        let hot = pattern_at(Point::new(0, 0), &hs_rects(75));
        let cold = pattern_at(Point::new(0, 0), &safe_rects(500));
        let p_hot = det.classify_probability(&hot).expect("routes to a kernel");
        assert!((0.0..=1.0).contains(&p_hot));
        assert!(p_hot > 0.5, "hotspot probability {p_hot}");
        if let Some(p_cold) = det.classify_probability(&cold) {
            assert!(p_cold < p_hot, "cold {p_cold} >= hot {p_hot}");
        }
        // A pattern far from every cluster routes nowhere.
        let alien = pattern_at(
            Point::new(0, 0),
            &[Rect::from_extents(0, 0, 1100, 1100)],
        );
        assert_eq!(det.classify_probability(&alien), None);
    }

    #[test]
    fn single_kernel_ablation_trains() {
        let cfg = DetectorConfig {
            ablation: crate::AblationSwitches {
                topology: false,
                removal: false,
                feedback: false,
            },
            ..fast_config()
        };
        let det = HotspotDetector::train(&training_set(), cfg).unwrap();
        assert_eq!(det.kernels().len(), 1);
        assert!(det.feedback().is_none());
    }

    #[test]
    fn removal_toggle_changes_report_shape() {
        let det_on = HotspotDetector::train(&training_set(), fast_config()).unwrap();
        let cfg_off = DetectorConfig {
            ablation: crate::AblationSwitches {
                removal: false,
                ..Default::default()
            },
            ..fast_config()
        };
        let det_off = HotspotDetector::train(&training_set(), cfg_off).unwrap();
        let mut layout = Layout::new("t");
        let layer = LayerId::METAL1;
        // A dense row of hotspot motifs so clips pile up.
        for i in 0..6 {
            for r in hs_rects(70) {
                layout.add_rect(layer, r.translate(Point::new(20_000 + i * 700, 20_000)));
            }
        }
        let with = det_on.detect(&layout, layer);
        let without = det_off.detect(&layout, layer);
        assert!(
            with.reported.len() <= without.reported.len(),
            "removal must not increase the report count ({} vs {})",
            with.reported.len(),
            without.reported.len()
        );
    }

    #[test]
    fn report_scoring_integration() {
        let det = HotspotDetector::train(&training_set(), fast_config()).unwrap();
        let mut layout = Layout::new("t");
        let layer = LayerId::METAL1;
        for r in hs_rects(70) {
            layout.add_rect(layer, r.translate(Point::new(20_000, 20_000)));
        }
        let report = det.detect(&layout, layer);
        let actual = vec![shape().window_centered(Point::new(20_000, 20_000))];
        let eval = report.score_against(&actual, 0.2, 100.0);
        assert_eq!(eval.actual, 1);
        assert!(eval.accuracy() >= 0.0);
    }
}
