//! The end-to-end hotspot detector (Fig. 3).

use crate::balance::upsample_hotspots;
use crate::config::{AdmissionParams, DetectorConfig, DistributionFilter, EvalMode};
use crate::engine::{
    Executor, FaultPlan, FaultSite, PipelineTelemetry, StageId, StageRecorder, TaskFailure,
};
use crate::extraction::{extract_clips_indexed, RectIndex};
use crate::feedback::{train_feedback, EvalEngine, EvalScratch, FeedbackKernel};
use crate::metrics::{score, Evaluation};
use crate::obs::{Counter, ObsHub};
use crate::pattern::{Pattern, TrainingSet};
use crate::removal::remove_redundant_clips;
use crate::training::{
    classify_patterns_mode, density_grid, train_cluster_kernels_with, ClusterKernel,
    PatternCluster, Region,
};
use hotspot_geom::RasterMode;
use hotspot_layout::{ClipShape, ClipWindow, LayerId, Layout};
use hotspot_svm::{CompiledModel, TrainError};
use hotspot_topo::route::CentroidRouter;
use hotspot_topo::TopoSignature;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Clips per evaluation batch in [`HotspotDetector::detect`]: one batch is
/// one executor task whose clips share a [`BatchEvaluator`]'s scratch.
pub(crate) const EVAL_BATCH: usize = 64;

/// Error running the detector's training or evaluation pipeline.
#[derive(Debug)]
pub enum DetectError {
    /// The training set contains no hotspot patterns.
    NoHotspots,
    /// The configuration failed validation.
    Config(String),
    /// An SVM kernel failed to train.
    Svm(TrainError),
    /// The evaluated layout has no polygons on the requested layer.
    EmptyLayer(LayerId),
    /// A pipeline task panicked; the panic was isolated by the executor
    /// and surfaced here instead of aborting the process.
    TaskPanicked(TaskFailure),
    /// The scan journal could not be created, appended, or replayed.
    Journal(String),
    /// The tile result cache could not be written back — or, under
    /// [`crate::ScanConfig::cache_verify`], a cache hit's stored outcome
    /// disagreed with a fresh recompute of the same tile.
    Cache(String),
    /// More tiles failed than
    /// [`FailurePolicy::SkipAndRecord`](crate::scan::FailurePolicy)
    /// tolerates.
    TooManyFailures {
        /// Tiles that failed (after their retry).
        failed: usize,
        /// The configured `max_failed_tiles` bound.
        max: usize,
    },
    /// A pipeline invariant was violated — states that should be
    /// unreachable (e.g. a cache handle with no configured path) surface
    /// here as typed errors instead of panicking the scan.
    Internal(String),
}

/// Former name of [`DetectError`].
#[deprecated(since = "0.2.0", note = "renamed to `DetectError`")]
pub type TrainPipelineError = DetectError;

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::NoHotspots => {
                write!(f, "training set contains no hotspot patterns")
            }
            DetectError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            DetectError::Svm(e) => write!(f, "svm training failed: {e}"),
            DetectError::EmptyLayer(layer) => {
                write!(f, "layout has no polygons on layer {layer}")
            }
            DetectError::TaskPanicked(failure) => {
                write!(f, "pipeline task panicked: {failure}")
            }
            DetectError::Journal(msg) => write!(f, "scan journal error: {msg}"),
            DetectError::Cache(msg) => write!(f, "tile cache error: {msg}"),
            DetectError::TooManyFailures { failed, max } => write!(
                f,
                "{failed} tile(s) failed, exceeding the quarantine bound of {max}"
            ),
            DetectError::Internal(msg) => write!(f, "internal pipeline invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for DetectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DetectError::Svm(e) => Some(e),
            DetectError::TaskPanicked(failure) => Some(failure),
            _ => None,
        }
    }
}

impl From<TrainError> for DetectError {
    fn from(e: TrainError) -> Self {
        DetectError::Svm(e)
    }
}

/// Outcome of evaluating one testing layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// The reported hotspot clips (after removal, when enabled).
    pub reported: Vec<ClipWindow>,
    /// Candidate clips extracted from the layout.
    pub clips_extracted: usize,
    /// Clips flagged hotspot by the multiple kernels.
    pub clips_flagged: usize,
    /// Flags reclaimed to nonhotspot by the feedback kernel.
    pub feedback_reclaimed: usize,
    /// Clip batches scheduled through the batched SVM inference engine.
    /// Absent in pre-batching reports, which deserialise with 0.
    #[serde(default)]
    pub eval_batches: usize,
    /// Wall-clock time of clip extraction.
    #[serde(skip)]
    pub extraction_time: Duration,
    /// Wall-clock time of kernel evaluation.
    #[serde(skip)]
    pub classification_time: Duration,
    /// Wall-clock time of redundant clip removal.
    #[serde(skip)]
    pub removal_time: Duration,
    /// Per-stage telemetry of the evaluation phase.
    pub telemetry: PipelineTelemetry,
}

impl DetectionReport {
    /// Total wall-clock time of the evaluation phase.
    pub fn total_time(&self) -> Duration {
        self.extraction_time + self.classification_time + self.removal_time
    }

    /// Scores this report against ground-truth hotspot windows.
    pub fn score_against(
        &self,
        actual: &[ClipWindow],
        min_clip_overlap: f64,
        layout_area_um2: f64,
    ) -> Evaluation {
        score(
            &self.reported,
            actual,
            min_clip_overlap,
            layout_area_um2,
            self.total_time(),
        )
    }
}

/// Summary of the training phase, for diagnostics and the experiment
/// harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSummary {
    /// Hotspot patterns after upsampling.
    pub upsampled_hotspots: usize,
    /// Hotspot clusters (= SVM kernels).
    pub hotspot_clusters: usize,
    /// Nonhotspot clusters found.
    pub nonhotspot_clusters: usize,
    /// Nonhotspot medoids kept after downsampling.
    pub nonhotspot_medoids: usize,
    /// Whether a feedback kernel was trained.
    pub feedback_trained: bool,
    /// Wall-clock training time.
    #[serde(skip)]
    pub training_time: Duration,
    /// Per-stage telemetry of the training phase. Persisted with the model,
    /// so a later `detect` can merge it into a full eight-stage record.
    pub telemetry: PipelineTelemetry,
}

impl TrainingSummary {
    /// The paper's `#hs/#nhs` balance ratio after resampling (Table III).
    pub fn balance_ratio(&self) -> f64 {
        if self.nonhotspot_medoids == 0 {
            return 0.0;
        }
        self.upsampled_hotspots as f64 / self.nonhotspot_medoids as f64
    }
}

/// The detector's models flattened for the batched inference engine —
/// compiled once (eagerly at train time, lazily after deserialisation) and
/// shared read-only by every evaluation thread.
#[derive(Debug, Clone)]
struct CompiledSet {
    /// Compiled cluster kernels, indexed 1:1 with the detector's kernels.
    kernels: Vec<CompiledModel>,
    /// Compiled feedback kernel, when one was trained.
    feedback: Option<CompiledModel>,
    /// The admission router: every kernel centroid × 8 D8 orientations
    /// packed for the fused density-admission pass.
    router: CentroidRouter,
}

/// Lazy [`CompiledSet`] holder, skipped by serde (the compiled form is a
/// pure acceleration of the persisted models, so it is rebuilt on demand).
#[derive(Debug, Clone, Default)]
struct CompiledCache(OnceLock<CompiledSet>);

/// The trained hotspot-detection framework.
///
/// Serialisable with serde, so a trained detector can be persisted and
/// reloaded (see the `hotspot` CLI's `train` / `detect` commands).
///
/// Clip evaluation runs through the compiled engines — the batched
/// flattened SVM evaluator ([`hotspot_svm::CompiledModel`]) and the
/// admission router ([`hotspot_topo::route::CentroidRouter`]) — under the
/// default [`EvalMode::Compiled`]; [`with_eval_mode`] selects the naive
/// reference path instead, which the equivalence tests pin to the
/// identical hotspot set.
///
/// [`with_eval_mode`]: HotspotDetector::with_eval_mode
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotspotDetector {
    kernels: Vec<ClusterKernel>,
    feedback: Option<FeedbackKernel>,
    config: DetectorConfig,
    summary: TrainingSummary,
    #[serde(skip)]
    compiled: CompiledCache,
    #[serde(skip)]
    fault_plan: FaultPlan,
    #[serde(skip)]
    obs: Option<Arc<ObsHub>>,
}

impl HotspotDetector {
    /// Starts a [`DetectorBuilder`] with the default (paper) configuration.
    ///
    /// This is the preferred way to configure a detector; constructing a
    /// [`DetectorConfig`] by struct literal is deprecated in favour of the
    /// builder's validated setters.
    ///
    /// # Examples
    ///
    /// Train a tiny detector on synthetic bar pairs:
    ///
    /// ```
    /// use hotspot_core::{HotspotDetector, Label, Pattern, TrainingSet};
    /// use hotspot_geom::{Point, Rect};
    /// use hotspot_layout::ClipShape;
    ///
    /// // Two bars separated by `gap` nm inside an ICCAD-2012 clip window.
    /// let clip = |gap: i64| {
    ///     let window = ClipShape::ICCAD2012.window_from_core_corner(Point::new(0, 0));
    ///     let rects = [
    ///         Rect::from_extents(0, 0, 300, 300),
    ///         Rect::from_extents(300 + gap, 0, 600 + gap, 300),
    ///     ];
    ///     Pattern::new(window, &rects)
    /// };
    /// let mut training = TrainingSet::new();
    /// for i in 0..4 {
    ///     training.push(clip(60 + 10 * i), Label::Hotspot);
    /// }
    /// for i in 0..8 {
    ///     training.push(clip(480 + 10 * i), Label::NonHotspot);
    /// }
    ///
    /// let config = HotspotDetector::builder().max_learning_rounds(2).build()?;
    /// let detector = HotspotDetector::train(&training, config)?;
    /// assert!(!detector.kernels().is_empty());
    /// # Ok::<(), hotspot_core::DetectError>(())
    /// ```
    pub fn builder() -> DetectorBuilder {
        DetectorBuilder::new()
    }

    /// Runs the full training phase of Fig. 3: upsampling, topological
    /// classification, population balancing, multiple-kernel learning, and
    /// feedback-kernel learning.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError`] for invalid configurations, an empty
    /// hotspot set, or SVM failures.
    pub fn train(
        training: &TrainingSet,
        config: DetectorConfig,
    ) -> Result<HotspotDetector, DetectError> {
        config.validate().map_err(DetectError::Config)?;
        if training.hotspots.is_empty() {
            return Err(DetectError::NoHotspots);
        }
        let start = Instant::now();
        let threads = config.effective_threads().max(1);
        let mut recorder = StageRecorder::new("training", threads);

        let (hotspots, hotspot_clusters, nonhotspot_clusters, medoids) = if config.ablation.topology
        {
            // Upsample hotspots by data shifting, classify both classes,
            // and downsample nonhotspots to cluster medoids.
            let hotspots = recorder.time(
                StageId::PopulationBalancing,
                training.hotspots.len(),
                || {
                    let h = upsample_hotspots(&training.hotspots, config.data_shift);
                    let n = h.len();
                    (h, n)
                },
            );
            let (h_clusters, n_clusters) = recorder.time(
                StageId::TopologicalClassification,
                hotspots.len() + training.nonhotspots.len(),
                || {
                    let h = classify_patterns_mode(
                        &hotspots,
                        Region::Core,
                        &config.cluster,
                        config.raster_mode,
                    );
                    let n = classify_patterns_mode(
                        &training.nonhotspots,
                        Region::Core,
                        &config.cluster,
                        config.raster_mode,
                    );
                    let count = h.len() + n.len();
                    ((h, n), count)
                },
            );
            let medoids = recorder.time(
                StageId::PopulationBalancing,
                training.nonhotspots.len(),
                || {
                    let m: Vec<Pattern> = n_clusters
                        .iter()
                        .map(|c| training.nonhotspots[c.medoid].clone())
                        .collect();
                    let n = m.len();
                    (m, n)
                },
            );
            (hotspots, h_clusters, n_clusters, medoids)
        } else {
            // Degenerate single-cluster mode (the "Basic" ablation): one
            // kernel over all hotspots against all nonhotspots.
            let hotspots = training.hotspots.clone();
            let cluster = recorder.time(StageId::TopologicalClassification, hotspots.len(), || {
                (single_cluster(&hotspots, &config), 1)
            });
            (
                hotspots,
                vec![cluster],
                Vec::new(),
                training.nonhotspots.clone(),
            )
        };

        let executor = Executor::new(threads);
        let t_kernels = Instant::now();
        let (kernels, exec_stats) =
            train_cluster_kernels_with(&hotspots, &hotspot_clusters, &medoids, &config, &executor)?;
        recorder.record(
            StageId::KernelTraining,
            hotspot_clusters.len(),
            kernels.len(),
            t_kernels.elapsed(),
            Some(&exec_stats),
        );

        let feedback = if config.ablation.feedback && config.ablation.topology {
            recorder.time(
                StageId::FeedbackTraining,
                nonhotspot_clusters.len(),
                || -> (Result<Option<FeedbackKernel>, TrainError>, usize) {
                    let fb = train_feedback(
                        &hotspots,
                        &hotspot_clusters,
                        &kernels,
                        &training.nonhotspots,
                        &nonhotspot_clusters,
                        &config,
                    );
                    let n = matches!(&fb, Ok(Some(_))) as usize;
                    (fb, n)
                },
            )?
        } else {
            None
        };

        let summary = TrainingSummary {
            upsampled_hotspots: hotspots.len(),
            hotspot_clusters: hotspot_clusters.len(),
            nonhotspot_clusters: nonhotspot_clusters.len(),
            nonhotspot_medoids: medoids.len(),
            feedback_trained: feedback.is_some(),
            training_time: start.elapsed(),
            telemetry: recorder.finish(),
        };

        let detector = HotspotDetector {
            kernels,
            feedback,
            config,
            summary,
            compiled: CompiledCache::default(),
            fault_plan: FaultPlan::default(),
            obs: None,
        };
        // Compile the inference engine eagerly so evaluation never pays the
        // flattening cost inside a timed phase.
        let _ = detector.compiled_set();
        Ok(detector)
    }

    /// The compiled inference engine, built on first use.
    fn compiled_set(&self) -> &CompiledSet {
        self.compiled.0.get_or_init(|| {
            let grid = self.config.cluster.grid;
            CompiledSet {
                kernels: self.kernels.iter().map(|k| k.model.compile()).collect(),
                feedback: self.feedback.as_ref().map(|f| f.model.compile()),
                router: CentroidRouter::compile(
                    self.kernels
                        .iter()
                        .map(|k| (&k.centroid, self.config.admission.threshold(k.radius))),
                    grid,
                    grid,
                ),
            }
        })
    }

    /// Returns this detector with the evaluation engine selected.
    /// [`EvalMode::Reference`] runs the naive per-kernel admission search
    /// and per-support-vector decision values; [`EvalMode::Compiled`] (the
    /// default) runs the admission router and the batched flattened SVM
    /// engine. Both modes report the same hotspot sets (pinned by
    /// `tests/eval_engine.rs`); the reference path exists for equivalence
    /// testing and the naive-vs-compiled benchmark.
    pub fn with_eval_mode(mut self, mode: EvalMode) -> Self {
        self.config.eval_mode = mode;
        self
    }

    /// Returns this detector with the density-grid rasterisation strategy
    /// selected. [`RasterMode::Sat`] (the default) shares one summed-area
    /// table across every clip of a scan tile; [`RasterMode::Reference`]
    /// sweeps each clip's rects directly. Both produce bit-identical grids
    /// (and therefore byte-identical scan digests) on arbitrary input,
    /// pinned by `tests/raster_mode.rs`.
    pub fn with_raster_mode(mut self, mode: RasterMode) -> Self {
        self.config.raster_mode = mode;
        self
    }

    /// Former boolean engine toggle.
    #[deprecated(
        since = "0.3.0",
        note = "use `with_eval_mode(EvalMode::Reference)` / `with_eval_mode(EvalMode::Compiled)`"
    )]
    pub fn with_reference_eval(self, reference: bool) -> Self {
        self.with_eval_mode(if reference {
            EvalMode::Reference
        } else {
            EvalMode::Compiled
        })
    }

    /// An evaluation handle at the configured
    /// [`decision_threshold`](DetectorConfig::decision_threshold), with
    /// the engines selected by the configured [`EvalMode`]. The handle
    /// borrows the detector; pair it with an [`EvalScratch`] per worker.
    pub fn eval_engine(&self) -> EvalEngine<'_> {
        self.eval_engine_with_threshold(self.config.decision_threshold)
    }

    /// [`eval_engine`](Self::eval_engine) at an explicit decision
    /// threshold (for the Fig. 15 trade-off sweep).
    pub fn eval_engine_with_threshold(&self, threshold: f64) -> EvalEngine<'_> {
        let feedback = if self.config.ablation.feedback {
            self.feedback.as_ref()
        } else {
            None
        };
        match self.config.eval_mode {
            EvalMode::Reference => EvalEngine {
                kernels: &self.kernels,
                feedback,
                config: &self.config,
                threshold,
                compiled_kernels: None,
                compiled_feedback: None,
                router: None,
                obs: self.obs.as_deref(),
            },
            EvalMode::Compiled => {
                let set = self.compiled_set();
                EvalEngine {
                    kernels: &self.kernels,
                    feedback,
                    config: &self.config,
                    threshold,
                    compiled_kernels: Some(&set.kernels),
                    compiled_feedback: set.feedback.as_ref(),
                    router: Some(&set.router),
                    obs: self.obs.as_deref(),
                }
            }
        }
    }

    /// Returns this detector with its worker-thread count overridden
    /// (0 = one per core), e.g. to re-parallelise a deserialised model.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Returns this detector with an observability hub attached:
    /// [`detect`](Self::detect) and
    /// [`scan_layout`](Self::scan_layout) emit span events and record
    /// lock-free progress counters into `hub`, and the run's telemetry
    /// lists the hub's sinks (schema v6). Observation only — reports,
    /// digests and telemetry contents are bit-identical with and without
    /// a hub. Not persisted with the model.
    pub fn with_obs(mut self, hub: Arc<ObsHub>) -> Self {
        self.obs = Some(hub);
        self
    }

    /// The attached observability hub, when one was installed with
    /// [`with_obs`](Self::with_obs).
    pub fn obs(&self) -> Option<&Arc<ObsHub>> {
        self.obs.as_ref()
    }

    /// Returns this detector with a deterministic [`FaultPlan`] armed for
    /// [`detect`](Self::detect): evaluation batches the plan marks as
    /// failing panic, and the isolated panic surfaces as
    /// [`DetectError::TaskPanicked`]. The fault-tolerance tests and the CI
    /// smoke use this; the default (empty) plan injects nothing. Not
    /// persisted with the model. For the streaming scan, arm
    /// [`crate::ScanConfig::fault_plan`] instead.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// The trained per-cluster kernels.
    pub fn kernels(&self) -> &[ClusterKernel] {
        &self.kernels
    }

    /// The feedback kernel, when one was trained.
    pub fn feedback(&self) -> Option<&FeedbackKernel> {
        self.feedback.as_ref()
    }

    /// The configuration the detector was trained with.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Training-phase statistics.
    pub fn summary(&self) -> &TrainingSummary {
        &self.summary
    }

    /// Classifies a single clip pattern (multiple kernels, then feedback).
    pub fn classify(&self, pattern: &Pattern) -> bool {
        self.classify_with_threshold(pattern, self.config.decision_threshold)
    }

    /// Calibrated hotspot probability of a clip: the maximum Platt
    /// probability over the kernels the clip routes to, or `None` when no
    /// kernel's topology or density gate admits it.
    pub fn classify_probability(&self, pattern: &Pattern) -> Option<f64> {
        let engine = self.eval_engine();
        let mut scratch = EvalScratch::new();
        let mut best: Option<f64> = None;
        engine.for_each_admitted(pattern, &mut scratch, |idx, decision| {
            let p = self.kernels[idx].platt.probability(decision);
            if best.is_none_or(|b| p > b) {
                best = Some(p);
            }
        });
        best
    }

    /// Classification at an explicit decision threshold (for the Fig. 15
    /// trade-off sweep).
    pub fn classify_with_threshold(&self, pattern: &Pattern, threshold: f64) -> bool {
        let (flagged, reclaimed) = self.flag_pattern(pattern, threshold);
        flagged && !reclaimed
    }

    /// Runs the full evaluation phase of Fig. 3 on a testing layout.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::EmptyLayer`] when the layout has no polygons
    /// on `layer`.
    pub fn detect(&self, layout: &Layout, layer: LayerId) -> Result<DetectionReport, DetectError> {
        self.detect_with_threshold(layout, layer, self.config.decision_threshold)
    }

    /// Evaluation with an explicit decision threshold.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::EmptyLayer`] when the layout has no polygons
    /// on `layer`.
    pub fn detect_with_threshold(
        &self,
        layout: &Layout,
        layer: LayerId,
        threshold: f64,
    ) -> Result<DetectionReport, DetectError> {
        let polygons = layout.polygons(layer);
        if polygons.is_empty() {
            return Err(DetectError::EmptyLayer(layer));
        }
        let polygon_count = polygons.len();
        let threads = self.config.effective_threads().max(1);
        let mut recorder = StageRecorder::new("detection", threads);

        // 1. Clip extraction over a shared spatial index.
        let t0 = Instant::now();
        let index = RectIndex::from_layout(layout, layer, self.config.clip_shape.clip_side());
        let clips =
            extract_clips_indexed(&index, self.config.clip_shape, &self.config.distribution);
        let extraction_time = t0.elapsed();
        recorder.record(
            StageId::ClipExtraction,
            polygon_count,
            clips.len(),
            extraction_time,
            None,
        );
        if let Some(hub) = &self.obs {
            hub.counters()
                .add(Counter::ClipsExtracted, clips.len() as u64);
        }

        // 2. Multiple-kernel (and feedback) evaluation. Clips are chunked
        //    into batches — one executor task each, sharing one
        //    `BatchEvaluator`'s scratch — and fanned over the work-stealing
        //    executor. `try_map` preserves input order, so the flag list is
        //    deterministic for every thread count — and isolates a
        //    panicking batch as a typed failure instead of aborting.
        let t1 = Instant::now();
        let batches: Vec<&[Pattern]> = clips.chunks(EVAL_BATCH).collect();
        let eval_batches = batches.len();
        let mut executor = Executor::new(threads);
        if let Some(hub) = &self.obs {
            executor = executor.with_obs(Arc::clone(hub));
        }
        let (flag_results, exec_stats) =
            executor.try_map("kernel_evaluation", &batches, |i, batch| {
                if !self.fault_plan.is_empty() {
                    self.fault_plan.inject(FaultSite::Evaluation, i, 0);
                }
                let engine = self.eval_engine_with_threshold(threshold);
                let mut scratch = EvalScratch::new();
                let flags: Vec<(bool, bool)> = batch
                    .iter()
                    .map(|c| Self::flag_with_engine(&engine, c, &mut scratch))
                    .collect();
                (flags, scratch.admissions(), scratch.admission_skips())
            });
        let mut flag_chunks = Vec::with_capacity(flag_results.len());
        let mut admissions = 0u64;
        let mut admission_skips = 0u64;
        for result in flag_results {
            match result {
                Ok((chunk, admitted, skipped)) => {
                    admissions += admitted;
                    admission_skips += skipped;
                    flag_chunks.push(chunk);
                }
                Err(failure) => return Err(DetectError::TaskPanicked(failure)),
            }
        }
        let mut flagged_cores = Vec::new();
        let mut clips_flagged = 0usize;
        let mut feedback_reclaimed = 0usize;
        for (clip, (flagged, reclaimed)) in clips.iter().zip(flag_chunks.iter().flatten()) {
            if *flagged {
                clips_flagged += 1;
                if *reclaimed {
                    feedback_reclaimed += 1;
                } else {
                    flagged_cores.push(clip.window.core);
                }
            }
        }
        let classification_time = t1.elapsed();
        recorder.record_batched(
            StageId::KernelEvaluation,
            clips.len(),
            clips_flagged,
            classification_time,
            Some(&exec_stats),
            eval_batches,
        );
        recorder.record_admissions(StageId::KernelEvaluation, admissions, admission_skips);
        if let Some(hub) = &self.obs {
            let counters = hub.counters();
            counters.add(Counter::ClipsFlagged, clips_flagged as u64);
            counters.add(Counter::ClipsReclaimed, feedback_reclaimed as u64);
            counters.add(Counter::EvalBatches, eval_batches as u64);
        }

        // 3. Redundant clip removal.
        let t2 = Instant::now();
        let flagged_count = flagged_cores.len();
        let reported = if self.config.ablation.removal {
            remove_redundant_clips(flagged_cores, self.config.clip_shape, &index, &self.config)
        } else {
            flagged_cores
                .into_iter()
                .map(|core| ClipWindow {
                    core,
                    clip: core.inflate(self.config.clip_shape.ambit()),
                })
                .collect()
        };
        let removal_time = t2.elapsed();
        recorder.record(
            StageId::ClipRemoval,
            flagged_count,
            reported.len(),
            removal_time,
            None,
        );

        if let Some(hub) = &self.obs {
            recorder.set_obs_sinks(hub.sink_names());
        }
        Ok(DetectionReport {
            reported,
            clips_extracted: clips.len(),
            clips_flagged,
            feedback_reclaimed,
            eval_batches,
            extraction_time,
            classification_time,
            removal_time,
            telemetry: recorder.finish(),
        })
    }

    /// [`flag_with_engine`](Self::flag_with_engine) on throwaway scratch,
    /// for single-clip entry points.
    pub(crate) fn flag_pattern(&self, pattern: &Pattern, threshold: f64) -> (bool, bool) {
        let engine = self.eval_engine_with_threshold(threshold);
        Self::flag_with_engine(&engine, pattern, &mut EvalScratch::new())
    }

    /// `(flagged_by_kernels, reclaimed_by_feedback)` for one clip. Shared
    /// by `detect` and the streaming `scan_layout`; `scratch` carries the
    /// buffers one batch of clips reuses across calls.
    pub(crate) fn flag_with_engine(
        engine: &EvalEngine<'_>,
        pattern: &Pattern,
        scratch: &mut EvalScratch,
    ) -> (bool, bool) {
        let flags = engine.flagging_kernels(pattern, scratch);
        if flags.is_empty() {
            return (false, false);
        }
        let reclaimed = matches!(engine.feedback_confirms(pattern, scratch), Some(false));
        (true, reclaimed)
    }
}

/// Validated, fluent construction of a [`DetectorConfig`] — and from there a
/// trained [`HotspotDetector`] — starting from the paper's defaults.
///
/// Unlike filling a [`DetectorConfig`] struct literal, the builder checks
/// every setting at [`build`](DetectorBuilder::build) time and reports the
/// first violation as [`DetectError::Config`]:
///
/// ```
/// use hotspot_core::HotspotDetector;
///
/// let config = HotspotDetector::builder()
///     .threads(2)
///     .decision_threshold(0.3)
///     .build()
///     .unwrap();
/// assert_eq!(config.threads, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DetectorBuilder {
    config: DetectorConfig,
    threads: Option<usize>,
    clip_sides: Option<(i64, i64)>,
}

impl DetectorBuilder {
    /// Starts from the paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an existing configuration (still validated at build).
    pub fn from_config(config: DetectorConfig) -> Self {
        DetectorBuilder {
            config,
            threads: None,
            clip_sides: None,
        }
    }

    /// Sets an explicit worker-thread count. Must be at least 1; use
    /// [`auto_threads`](Self::auto_threads) for one thread per core.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Uses one worker thread per available core (the default).
    pub fn auto_threads(mut self) -> Self {
        self.threads = None;
        self.config.threads = 0;
        self
    }

    /// Sets the core and clip side lengths in nanometres; validated at
    /// build time (`0 < core < clip`, even difference).
    pub fn clip_shape(mut self, core_side: i64, clip_side: i64) -> Self {
        self.clip_sides = Some((core_side, clip_side));
        self
    }

    /// Sets the initial SVM penalty `C`.
    pub fn initial_c(mut self, c: f64) -> Self {
        self.config.initial_c = c;
        self
    }

    /// Sets the initial RBF width `γ`.
    pub fn initial_gamma(mut self, gamma: f64) -> Self {
        self.config.initial_gamma = gamma;
        self
    }

    /// Bounds the iterative `(C, γ)` adaptation rounds.
    pub fn max_learning_rounds(mut self, rounds: usize) -> Self {
        self.config.max_learning_rounds = rounds;
        self
    }

    /// Sets the SVM decision threshold at evaluation.
    pub fn decision_threshold(mut self, threshold: f64) -> Self {
        self.config.decision_threshold = threshold;
        self
    }

    /// Selects the evaluation engine ([`EvalMode::Compiled`] by default).
    pub fn eval_mode(mut self, mode: EvalMode) -> Self {
        self.config.eval_mode = mode;
        self
    }

    /// Selects the density-grid rasterisation strategy
    /// ([`RasterMode::Sat`] by default).
    pub fn raster_mode(mut self, mode: RasterMode) -> Self {
        self.config.raster_mode = mode;
        self
    }

    /// Sets the kernel-admission parameters (fuzziness factor and radius
    /// floor); validated at build time.
    pub fn admission(mut self, params: AdmissionParams) -> Self {
        self.config.admission = params;
        self
    }

    /// Sets the data-shifting distance for hotspot upsampling.
    pub fn data_shift(mut self, shift: i64) -> Self {
        self.config.data_shift = shift;
        self
    }

    /// Sets the polygon-distribution filter for clip extraction.
    pub fn distribution(mut self, filter: DistributionFilter) -> Self {
        self.config.distribution = filter;
        self
    }

    /// Sets the ablation switches (Table III rows).
    pub fn ablation(mut self, switches: crate::AblationSwitches) -> Self {
        self.config.ablation = switches;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::Config`] describing the first violated
    /// constraint — a zero thread count, an invalid clip shape, or anything
    /// [`DetectorConfig::validate`] rejects.
    pub fn build(self) -> Result<DetectorConfig, DetectError> {
        let mut config = self.config;
        if let Some(threads) = self.threads {
            if threads == 0 {
                return Err(DetectError::Config(
                    "worker threads must be at least 1; use auto_threads() for one per core".into(),
                ));
            }
            config.threads = threads;
        }
        if let Some((core, clip)) = self.clip_sides {
            config.clip_shape = ClipShape::new(core, clip)
                .map_err(|e| DetectError::Config(format!("invalid clip shape: {e}")))?;
        }
        config.validate().map_err(DetectError::Config)?;
        Ok(config)
    }

    /// Validates the configuration and trains a detector on `training`.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError`] for invalid settings, an empty hotspot set,
    /// or SVM failures.
    pub fn train(self, training: &TrainingSet) -> Result<HotspotDetector, DetectError> {
        HotspotDetector::train(training, self.build()?)
    }
}

/// A degenerate cluster holding every hotspot (the single-kernel ablation).
fn single_cluster(hotspots: &[Pattern], config: &DetectorConfig) -> PatternCluster {
    let first = &hotspots[0];
    let window = first.window.core;
    let local_rects: Vec<_> = first
        .core_rects()
        .iter()
        .map(|r| r.translate(-window.min()))
        .collect();
    let local = hotspot_geom::Rect::from_extents(0, 0, window.width(), window.height());
    let signature = TopoSignature::of(&local, &local_rects);
    let mut centroid = density_grid(first, Region::Core, config);
    for (i, p) in hotspots.iter().enumerate().skip(1) {
        let g = density_grid(p, Region::Core, config);
        centroid.fold_mean(&g, i);
    }
    PatternCluster {
        members: (0..hotspots.len()).collect(),
        signature,
        centroid,
        // An effectively infinite radius routes every clip to this kernel.
        radius: f64::MAX / 4.0,
        medoid: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::{Point, Rect};
    use hotspot_layout::ClipShape;

    fn shape() -> ClipShape {
        ClipShape::ICCAD2012
    }

    /// Builds a training clip anchored like layout-clip extraction does:
    /// the core's bottom-left corner sits at `corner` and the motif rects
    /// are corner-relative. Training clips and extracted clips then share
    /// the same frame, as the contest's foundry-provided clips do.
    fn pattern_at(corner: Point, rects: &[Rect]) -> Pattern {
        let window = shape().window_from_core_corner(corner);
        let abs: Vec<Rect> = rects.iter().map(|r| r.translate(corner)).collect();
        Pattern::new(window, &abs)
    }

    /// Hotspot motif: two bars with a dangerously narrow gap, anchored at
    /// the origin corner.
    fn hs_rects(gap: i64) -> Vec<Rect> {
        vec![
            Rect::from_extents(0, 0, 300, 300),
            Rect::from_extents(300 + gap, 0, 600 + gap, 300),
        ]
    }

    /// Safe motif: same topology, generous gap (still inside the core).
    fn safe_rects(gap: i64) -> Vec<Rect> {
        hs_rects(gap)
    }

    fn training_set() -> TrainingSet {
        let mut ts = TrainingSet::new();
        for i in 0..4 {
            ts.push(
                pattern_at(Point::new(0, 0), &hs_rects(60 + 10 * i)),
                crate::Label::Hotspot,
            );
        }
        for i in 0..8 {
            ts.push(
                pattern_at(Point::new(0, 0), &safe_rects(480 + 10 * i)),
                crate::Label::NonHotspot,
            );
        }
        ts
    }

    fn fast_config() -> DetectorConfig {
        DetectorConfig {
            max_learning_rounds: 3,
            threads: 2,
            // The unit-test layouts are sparse; keep the paper's bound for
            // the dense benchmark layouts only.
            distribution: crate::DistributionFilter {
                min_core_density: 0.001,
                min_polygon_count: 1,
                max_boundary_bbox_distance: 4800,
            },
            ..Default::default()
        }
    }

    #[test]
    fn trains_and_classifies_patterns() {
        let det = HotspotDetector::train(&training_set(), fast_config()).unwrap();
        assert!(!det.kernels().is_empty());
        assert!(det.classify(&pattern_at(Point::new(0, 0), &hs_rects(80))));
        assert!(!det.classify(&pattern_at(Point::new(0, 0), &safe_rects(500))));
    }

    #[test]
    fn training_errors() {
        let mut empty = TrainingSet::new();
        empty.push(
            pattern_at(Point::new(0, 0), &safe_rects(500)),
            crate::Label::NonHotspot,
        );
        assert!(matches!(
            HotspotDetector::train(&empty, fast_config()),
            Err(DetectError::NoHotspots)
        ));

        let bad = DetectorConfig {
            reframe_separation: 10_000,
            ..Default::default()
        };
        assert!(matches!(
            HotspotDetector::train(&training_set(), bad),
            Err(DetectError::Config(_))
        ));
    }

    #[test]
    fn builder_validates_settings() {
        // Zero threads is rejected with a pointer at auto_threads().
        let err = HotspotDetector::builder().threads(0).build().unwrap_err();
        assert!(matches!(&err, DetectError::Config(msg) if msg.contains("auto_threads")));

        // Core must not exceed the clip.
        assert!(matches!(
            HotspotDetector::builder().clip_shape(4800, 1200).build(),
            Err(DetectError::Config(_))
        ));
        // Negative (asymmetric / non-positive) geometry is rejected too.
        assert!(matches!(
            HotspotDetector::builder().clip_shape(-100, 4800).build(),
            Err(DetectError::Config(_))
        ));
        assert!(matches!(
            HotspotDetector::builder().clip_shape(1200, 4801).build(),
            Err(DetectError::Config(_))
        ));

        // Settings flow through validation into the config.
        let cfg = HotspotDetector::builder()
            .threads(3)
            .clip_shape(1200, 4800)
            .decision_threshold(0.3)
            .build()
            .unwrap();
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.clip_shape, ClipShape::ICCAD2012);
        assert_eq!(cfg.decision_threshold, 0.3);
    }

    #[test]
    fn builder_trains_a_detector() {
        let det = DetectorBuilder::from_config(fast_config())
            .threads(2)
            .train(&training_set())
            .unwrap();
        assert!(!det.kernels().is_empty());
        assert_eq!(det.config().threads, 2);
    }

    #[test]
    fn detect_rejects_empty_layer() {
        let det = HotspotDetector::train(&training_set(), fast_config()).unwrap();
        let layout = Layout::new("empty");
        assert!(matches!(
            det.detect(&layout, LayerId::METAL1),
            Err(DetectError::EmptyLayer(l)) if l == LayerId::METAL1
        ));
    }

    #[test]
    fn telemetry_covers_both_phases() {
        use crate::engine::StageId;

        let det = HotspotDetector::train(&training_set(), fast_config()).unwrap();
        let t = &det.summary().telemetry;
        assert_eq!(t.phase, "training");
        for stage in [
            StageId::PopulationBalancing,
            StageId::TopologicalClassification,
            StageId::KernelTraining,
            StageId::FeedbackTraining,
        ] {
            assert!(t.stage(stage).is_some(), "missing training stage {stage}");
        }

        let mut layout = Layout::new("t");
        let layer = LayerId::METAL1;
        for r in hs_rects(70) {
            layout.add_rect(layer, r.translate(Point::new(20_000, 20_000)));
        }
        let report = det.detect(&layout, layer).unwrap();
        let d = &report.telemetry;
        assert_eq!(d.phase, "detection");
        for stage in [
            StageId::ClipExtraction,
            StageId::KernelEvaluation,
            StageId::ClipRemoval,
        ] {
            assert!(d.stage(stage).is_some(), "missing detection stage {stage}");
        }

        // The merged record always carries all eight canonical stages.
        let merged = t.merge(d);
        assert_eq!(merged.stages.len(), 8);
    }

    #[test]
    fn summary_reflects_balancing() {
        let det = HotspotDetector::train(&training_set(), fast_config()).unwrap();
        let s = det.summary();
        // 4 hotspots upsampled ×5 (original + 4 shifts, minus any empty-core
        // derivatives).
        assert!(s.upsampled_hotspots >= 4);
        assert!(s.hotspot_clusters >= 1);
        assert!(s.balance_ratio() > 0.0);
    }

    #[test]
    fn detect_finds_planted_hotspot() {
        let det = HotspotDetector::train(&training_set(), fast_config()).unwrap();
        let mut layout = Layout::new("t");
        let layer = LayerId::METAL1;
        // Plant a hotspot motif and a safe motif far apart.
        for r in hs_rects(70) {
            layout.add_rect(layer, r.translate(Point::new(20_000, 20_000)));
        }
        for r in safe_rects(500) {
            layout.add_rect(layer, r.translate(Point::new(60_000, 60_000)));
        }
        let report = det.detect(&layout, layer).unwrap();
        assert!(report.clips_extracted > 0);
        let hotspot_window = shape().window_centered(Point::new(20_000, 20_000));
        assert!(
            report
                .reported
                .iter()
                .any(|w| w.is_hit(&hotspot_window, 0.2)),
            "planted hotspot not reported; {} clips reported",
            report.reported.len()
        );
    }

    #[test]
    fn threshold_monotonically_prunes_reports() {
        let det = HotspotDetector::train(&training_set(), fast_config()).unwrap();
        let mut layout = Layout::new("t");
        let layer = LayerId::METAL1;
        for i in 0..4 {
            for r in hs_rects(70 + i * 5) {
                layout.add_rect(layer, r.translate(Point::new(20_000 * (i + 1), 20_000)));
            }
        }
        let lo = det.detect_with_threshold(&layout, layer, 0.0).unwrap();
        let hi = det.detect_with_threshold(&layout, layer, 2.0).unwrap();
        assert!(hi.clips_flagged <= lo.clips_flagged);
    }

    #[test]
    fn parallel_and_sequential_detection_agree() {
        let det_seq = HotspotDetector::train(
            &training_set(),
            DetectorConfig {
                threads: 1,
                ..fast_config()
            },
        )
        .unwrap();
        let det_par = HotspotDetector::train(
            &training_set(),
            DetectorConfig {
                threads: 4,
                ..fast_config()
            },
        )
        .unwrap();
        let mut layout = Layout::new("t");
        let layer = LayerId::METAL1;
        for r in hs_rects(70) {
            layout.add_rect(layer, r.translate(Point::new(20_000, 20_000)));
        }
        let a = det_seq.detect(&layout, layer).unwrap();
        let b = det_par.detect(&layout, layer).unwrap();
        assert_eq!(a.reported, b.reported);
        assert_eq!(a.clips_extracted, b.clips_extracted);
    }

    #[test]
    fn probabilities_are_calibrated_and_ordered() {
        let det = HotspotDetector::train(&training_set(), fast_config()).unwrap();
        let hot = pattern_at(Point::new(0, 0), &hs_rects(75));
        let cold = pattern_at(Point::new(0, 0), &safe_rects(500));
        let p_hot = det.classify_probability(&hot).expect("routes to a kernel");
        assert!((0.0..=1.0).contains(&p_hot));
        assert!(p_hot > 0.5, "hotspot probability {p_hot}");
        if let Some(p_cold) = det.classify_probability(&cold) {
            assert!(p_cold < p_hot, "cold {p_cold} >= hot {p_hot}");
        }
        // A pattern far from every cluster routes nowhere.
        let alien = pattern_at(Point::new(0, 0), &[Rect::from_extents(0, 0, 1100, 1100)]);
        assert_eq!(det.classify_probability(&alien), None);
    }

    #[test]
    fn single_kernel_ablation_trains() {
        let cfg = DetectorConfig {
            ablation: crate::AblationSwitches {
                topology: false,
                removal: false,
                feedback: false,
            },
            ..fast_config()
        };
        let det = HotspotDetector::train(&training_set(), cfg).unwrap();
        assert_eq!(det.kernels().len(), 1);
        assert!(det.feedback().is_none());
    }

    #[test]
    fn removal_toggle_changes_report_shape() {
        let det_on = HotspotDetector::train(&training_set(), fast_config()).unwrap();
        let cfg_off = DetectorConfig {
            ablation: crate::AblationSwitches {
                removal: false,
                ..Default::default()
            },
            ..fast_config()
        };
        let det_off = HotspotDetector::train(&training_set(), cfg_off).unwrap();
        let mut layout = Layout::new("t");
        let layer = LayerId::METAL1;
        // A dense row of hotspot motifs so clips pile up.
        for i in 0..6 {
            for r in hs_rects(70) {
                layout.add_rect(layer, r.translate(Point::new(20_000 + i * 700, 20_000)));
            }
        }
        let with = det_on.detect(&layout, layer).unwrap();
        let without = det_off.detect(&layout, layer).unwrap();
        assert!(
            with.reported.len() <= without.reported.len(),
            "removal must not increase the report count ({} vs {})",
            with.reported.len(),
            without.reported.len()
        );
    }

    #[test]
    fn report_scoring_integration() {
        let det = HotspotDetector::train(&training_set(), fast_config()).unwrap();
        let mut layout = Layout::new("t");
        let layer = LayerId::METAL1;
        for r in hs_rects(70) {
            layout.add_rect(layer, r.translate(Point::new(20_000, 20_000)));
        }
        let report = det.detect(&layout, layer).unwrap();
        let actual = vec![shape().window_centered(Point::new(20_000, 20_000))];
        let eval = report.score_against(&actual, 0.2, 100.0);
        assert_eq!(eval.actual, 1);
        assert!(eval.accuracy() >= 0.0);
    }
}
