//! Cooperative cancellation for long-running scans.
//!
//! A [`CancelToken`] is a dependency-free, clonable flag shared between
//! the party requesting a stop (a CLI SIGINT handler, the scan's own
//! deadline watchdog, an embedding service's shutdown path) and the
//! workers doing the stopping. Cancellation is *cooperative*: nothing is
//! killed. Workers poll the token at cheap, deterministic boundaries —
//! once per in-flight batch in the streaming scan loop, before each task
//! pop in [`crate::engine::Executor`], and once per clip inside a tile's
//! evaluation batch — and wind down by declining further work, so every
//! tile either completes (and is journaled) or never starts (and is
//! recomputed on resume). That placement is what keeps an aborted scan
//! byte-resumable: the journal only ever contains whole-tile records, and
//! [`crate::ScanReport::digest`] of a resumed scan is bit-identical to an
//! uninterrupted run's.
//!
//! The flag is a relaxed atomic: cancellation needs no ordering with the
//! data the workers produce (aborted work is discarded, completed work was
//! already published through the journal's own synchronisation), so a poll
//! costs one uncontended load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A clonable, thread-safe cancellation flag.
///
/// All clones share one flag: cancelling any clone cancels them all.
/// Polling is a single relaxed atomic load; see the [module
/// docs](crate::cancel) for where the scan stack polls it.
///
/// # Examples
///
/// ```
/// use hotspot_core::CancelToken;
///
/// let token = CancelToken::new();
/// let worker_view = token.clone();
/// assert!(!worker_view.is_cancelled());
/// token.cancel();
/// assert!(worker_view.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the flag. Idempotent; cancellation cannot be undone.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether any clone of this token has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Tokens compare by *identity* (shared flag), not by state: a clone is
/// equal to its source, two independently created tokens are not. This is
/// what [`crate::ScanConfig`]'s derived `PartialEq` sees.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Why a scan stopped early. Carried on
/// [`crate::ScanReport::aborted`]; excluded from the report digest, like
/// every other provenance field, so an aborted-then-resumed scan digests
/// identically to an uninterrupted one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AbortReason {
    /// The [`crate::ScanConfig::deadline`] wall-clock budget expired.
    DeadlineExceeded,
    /// The caller's [`crate::ScanConfig::cancel`] token was tripped
    /// (e.g. the CLI's SIGINT handler).
    Interrupted,
}

impl AbortReason {
    /// Stable lower-snake name, used in telemetry and event payloads.
    pub fn name(self) -> &'static str {
        match self {
            AbortReason::DeadlineExceeded => "deadline_exceeded",
            AbortReason::Interrupted => "interrupted",
        }
    }
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Panic payload a tile task unwinds with when it observes cancellation
/// mid-tile. The executor recognises it and reports the task as
/// *skipped* — not failed, not retried, not quarantined.
pub(crate) struct CancelPanic;

/// Panic payload a tile task unwinds with when it exceeds its soft
/// per-tile budget ([`crate::ScanConfig::tile_timeout`]). Deliberately
/// carries the *budget*, not the measured elapsed time: the quarantine
/// reason string built from it must be deterministic so report digests
/// stay thread-count- and wall-clock-invariant.
pub(crate) struct TimeoutPanic {
    /// The exceeded soft budget, in milliseconds.
    pub budget_ms: u64,
}

impl TimeoutPanic {
    /// The deterministic quarantine reason for a tile that blew this
    /// budget.
    pub fn reason(&self) -> String {
        format!(
            "tile exceeded its soft time budget of {} ms",
            self.budget_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn equality_is_identity_not_state() {
        let a = CancelToken::new();
        let b = a.clone();
        let c = CancelToken::new();
        assert_eq!(a, b);
        assert_ne!(a, c);
        c.cancel();
        a.cancel();
        assert_ne!(a, c, "same state, still different tokens");
    }

    #[test]
    fn abort_reason_round_trips_and_names_are_stable() {
        let json = serde_json::to_string(&AbortReason::DeadlineExceeded).unwrap();
        let back: AbortReason = serde_json::from_str(&json).unwrap();
        assert_eq!(back, AbortReason::DeadlineExceeded);
        // Telemetry and event payloads use the stable snake names, not the
        // serde variant names.
        assert_eq!(AbortReason::DeadlineExceeded.name(), "deadline_exceeded");
        assert_eq!(AbortReason::Interrupted.to_string(), "interrupted");
    }

    #[test]
    fn timeout_reason_is_deterministic() {
        let p = TimeoutPanic { budget_ms: 150 };
        assert_eq!(p.reason(), "tile exceeded its soft time budget of 150 ms");
    }
}
