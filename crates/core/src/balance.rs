//! Population balancing (Section III-D3).
//!
//! The contest training sets are highly imbalanced (nonhotspots outnumber
//! hotspots up to 100×). Balancing combines:
//!
//! - **upsampling**: every hotspot pattern spawns four shifted derivatives
//!   (up, down, left, right by the data-shift distance), which also injects
//!   the fuzziness that compensates clip-extraction misalignment, and
//! - **downsampling**: nonhotspot patterns are clustered topologically and
//!   only each cluster's medoid joins the training set.

use crate::pattern::Pattern;
use hotspot_geom::{Coord, Point};

/// Expands each hotspot pattern into itself plus four shifted derivatives.
///
/// A shifted derivative whose core becomes empty is dropped (it would be a
/// meaningless hotspot example).
pub fn upsample_hotspots(hotspots: &[Pattern], shift: Coord) -> Vec<Pattern> {
    let mut out = Vec::with_capacity(hotspots.len() * 5);
    for p in hotspots {
        out.push(p.clone());
        if shift == 0 {
            continue;
        }
        for delta in [
            Point::new(0, shift),
            Point::new(0, -shift),
            Point::new(-shift, 0),
            Point::new(shift, 0),
        ] {
            let shifted = p.shifted(delta);
            if !shifted.core_rects().is_empty() {
                out.push(shifted);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::Rect;
    use hotspot_layout::ClipShape;

    fn pattern() -> Pattern {
        let shape = ClipShape::new(1200, 4800).unwrap();
        let window = shape.window_centered(Point::new(0, 0));
        Pattern::new(window, &[Rect::from_extents(-400, -400, 400, 400)])
    }

    #[test]
    fn five_derivatives_per_hotspot() {
        let out = upsample_hotspots(&[pattern()], 120);
        assert_eq!(out.len(), 5);
        // All derivatives share the window; geometry differs.
        for p in &out[1..] {
            assert_eq!(p.window, out[0].window);
            assert_ne!(p.rects, out[0].rects);
        }
    }

    #[test]
    fn zero_shift_keeps_originals_only() {
        let out = upsample_hotspots(&[pattern()], 0);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn derivatives_with_empty_core_dropped() {
        // Geometry close to the core edge: a huge shift empties the core.
        let shape = ClipShape::new(1200, 4800).unwrap();
        let window = shape.window_centered(Point::new(0, 0));
        let p = Pattern::new(window, &[Rect::from_extents(-600, -600, -500, -500)]);
        let out = upsample_hotspots(&[p], 1200);
        // Original plus the shifts that keep geometry in the core
        // (rightward/upward shifts by 1200 move it out of the core).
        assert!(out.len() < 5);
        assert!(out.iter().all(|p| !p.core_rects().is_empty()));
    }

    #[test]
    fn empty_input() {
        assert!(upsample_hotspots(&[], 120).is_empty());
    }
}
