//! Serializable per-stage pipeline telemetry.
//!
//! Every run of the training or evaluation pipeline produces a
//! [`PipelineTelemetry`] describing, for each of the eight canonical
//! stages, its wall-clock time, item flow, and thread utilisation. The
//! structure is serde-serialisable so the CLI can persist it
//! (`hotspot detect --telemetry out.json`) and the bench binaries can
//! print per-stage breakdowns.

use super::stage::StageId;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Duration;

/// Version of the telemetry JSON schema (bump on breaking field changes).
///
/// v2 added the `density_prefilter` stage to the canonical stage list
/// (merged records therefore carry eight stages instead of seven).
/// v3 added the per-stage `batches` counter: clip batches scheduled
/// through the batched SVM inference engine (0 for unbatched stages).
/// v4 added the fault-tolerance counters: per-stage `failures` (task
/// attempts that panicked and were isolated) and `retries` (failed tasks
/// re-attempted before quarantine), plus the run-level `resumed_tiles`
/// (tiles replayed from a scan journal instead of recomputed). All three
/// deserialise as 0 from older records via `#[serde(default)]`.
/// v5 added the admission counters: per-stage `admissions` (clip-kernel
/// pairs admitted to SVM evaluation by topology or density) and
/// `admission_skips` (centroid-orientation rows the compiled admission
/// router pruned via its mass gate, norm screen, or early exit; 0 under
/// the reference engine). Both deserialise as 0 from v4 and older records
/// via `#[serde(default)]`.
/// v6 added the run-level `obs_sinks` list: names of the observability
/// sinks and endpoints active during the run (empty when the pipeline ran
/// unobserved). Deserialises as empty from v5 and older records via
/// `#[serde(default)]`.
/// v7 added the tile-cache counters: run-level `cache_hits` (tiles served
/// from the content-addressed result cache), `cache_misses` (tiles the
/// cache could not serve), and `recomputed_tiles` (tiles that actually ran
/// the prefilter/extraction/evaluation pipeline this run). All three
/// deserialise as 0 from v6 and older records via `#[serde(default)]`.
/// v8 added the deadline counters: per-stage `timeouts` (tasks quarantined
/// for exceeding the soft per-tile budget), the run-level `timed_out`
/// total, and `aborted_reason` (the stable [`crate::AbortReason::name`]
/// string when the run stopped early; `null` for runs that completed).
/// All deserialise as 0 / `None` from v7 and older records via
/// `#[serde(default)]`.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 8;

/// Telemetry of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTelemetry {
    /// Canonical stage name (see [`StageId::name`]).
    pub stage: String,
    /// Wall-clock time spent in the stage, in milliseconds.
    pub wall_ms: f64,
    /// Items entering the stage (patterns, clusters, clips, …).
    pub items_in: usize,
    /// Items leaving the stage.
    pub items_out: usize,
    /// Worker threads that participated.
    pub threads_used: usize,
    /// Tasks executed across all workers (0 for untasked stages).
    pub tasks_executed: usize,
    /// Tasks a worker stole from another worker's queue.
    pub tasks_stolen: usize,
    /// Clip batches scheduled through the batched SVM inference engine
    /// (0 for stages that do not evaluate clips). Absent in pre-v3 records,
    /// which deserialise with 0.
    #[serde(default)]
    pub batches: usize,
    /// Task attempts in this stage that panicked and were isolated by the
    /// executor instead of aborting the process. Absent in pre-v4 records,
    /// which deserialise with 0.
    #[serde(default)]
    pub failures: usize,
    /// Failed tasks that were retried once before quarantine. Absent in
    /// pre-v4 records, which deserialise with 0.
    #[serde(default)]
    pub retries: usize,
    /// Clip-kernel pairs admitted to SVM evaluation (by exact topology
    /// match or density routing). Absent in pre-v5 records, which
    /// deserialise with 0.
    #[serde(default)]
    pub admissions: u64,
    /// Centroid-orientation rows the compiled admission router pruned
    /// without computing their full exact distance (mass gate + norm
    /// screen + early exit); 0 under the reference engine. Absent in
    /// pre-v5 records, which deserialise with 0.
    #[serde(default)]
    pub admission_skips: u64,
    /// Tasks in this stage quarantined for exceeding the soft per-tile
    /// budget ([`crate::ScanConfig::tile_timeout`]) — a subset of
    /// `failures`. Absent in pre-v8 records, which deserialise with 0.
    #[serde(default)]
    pub timeouts: usize,
}

impl StageTelemetry {
    /// An all-zero entry for a stage that did not run.
    pub fn empty(stage: StageId) -> Self {
        StageTelemetry {
            stage: stage.name().to_string(),
            wall_ms: 0.0,
            items_in: 0,
            items_out: 0,
            threads_used: 0,
            tasks_executed: 0,
            tasks_stolen: 0,
            batches: 0,
            failures: 0,
            retries: 0,
            admissions: 0,
            admission_skips: 0,
            timeouts: 0,
        }
    }

    /// The stage wall time as a [`Duration`].
    pub fn wall_time(&self) -> Duration {
        Duration::from_secs_f64((self.wall_ms / 1e3).max(0.0))
    }

    /// Accumulates another record of the same stage into this one.
    fn absorb(&mut self, other: &StageTelemetry) {
        self.wall_ms += other.wall_ms;
        self.items_in += other.items_in;
        self.items_out += other.items_out;
        self.threads_used = self.threads_used.max(other.threads_used);
        self.tasks_executed += other.tasks_executed;
        self.tasks_stolen += other.tasks_stolen;
        self.batches += other.batches;
        self.failures += other.failures;
        self.retries += other.retries;
        self.admissions += other.admissions;
        self.admission_skips += other.admission_skips;
        self.timeouts += other.timeouts;
    }
}

/// Telemetry of one pipeline run (a training phase, an evaluation phase,
/// or both merged).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineTelemetry {
    /// Telemetry schema version ([`TELEMETRY_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Which phase this telemetry covers (`"training"`, `"detection"`, or
    /// `"training+detection"` after merging).
    pub phase: String,
    /// Worker threads configured for the run.
    pub threads: usize,
    /// Per-stage records in canonical pipeline order.
    pub stages: Vec<StageTelemetry>,
    /// Total wall-clock time of the phase, in milliseconds.
    pub total_wall_ms: f64,
    /// Tiles replayed from a scan journal instead of recomputed (resume).
    /// Absent in pre-v4 records, which deserialise with 0.
    #[serde(default)]
    pub resumed_tiles: usize,
    /// Tiles served from the content-addressed result cache (schema v7).
    /// Absent in pre-v7 records, which deserialise with 0.
    #[serde(default)]
    pub cache_hits: usize,
    /// Tiles the result cache could not serve (schema v7). Absent in
    /// pre-v7 records, which deserialise with 0.
    #[serde(default)]
    pub cache_misses: usize,
    /// Tiles that actually ran the prefilter/extraction/evaluation
    /// pipeline this run — neither journal-replayed nor cache-served
    /// (schema v7). Absent in pre-v7 records, which deserialise with 0.
    #[serde(default)]
    pub recomputed_tiles: usize,
    /// Tiles quarantined for exceeding the soft per-tile budget across the
    /// whole run (schema v8) — the run-level sum of the per-stage
    /// `timeouts` counters. Absent in pre-v8 records, which deserialise
    /// with 0.
    #[serde(default)]
    pub timed_out: usize,
    /// Why the run stopped early, as the stable
    /// [`crate::AbortReason::name`] string (`"deadline_exceeded"` or
    /// `"interrupted"`), or `None` for runs that completed (schema v8).
    /// Absent in pre-v8 records, which deserialise as `None`.
    #[serde(default)]
    pub aborted_reason: Option<String>,
    /// Observability sinks and endpoints active during the run (schema
    /// v6): sink names in registration order, e.g. `["ndjson",
    /// "progress", "prometheus"]`. Empty for unobserved runs and absent
    /// in pre-v6 records, which deserialise with an empty list.
    #[serde(default)]
    pub obs_sinks: Vec<String>,
}

impl Default for PipelineTelemetry {
    fn default() -> Self {
        PipelineTelemetry {
            schema_version: TELEMETRY_SCHEMA_VERSION,
            phase: String::new(),
            threads: 0,
            stages: Vec::new(),
            total_wall_ms: 0.0,
            resumed_tiles: 0,
            cache_hits: 0,
            cache_misses: 0,
            recomputed_tiles: 0,
            timed_out: 0,
            aborted_reason: None,
            obs_sinks: Vec::new(),
        }
    }
}

impl PipelineTelemetry {
    /// The record for `stage`, when that stage ran.
    pub fn stage(&self, stage: StageId) -> Option<&StageTelemetry> {
        self.stages.iter().find(|s| s.stage == stage.name())
    }

    /// Total wall time as a [`Duration`].
    pub fn total_wall_time(&self) -> Duration {
        Duration::from_secs_f64((self.total_wall_ms / 1e3).max(0.0))
    }

    /// Merges two phases (typically training + detection) into one record
    /// that carries **all eight** canonical stages, zero-filled where a
    /// stage ran in neither phase.
    pub fn merge(&self, other: &PipelineTelemetry) -> PipelineTelemetry {
        let stages = StageId::ALL
            .iter()
            .map(|&id| {
                let mut entry = StageTelemetry::empty(id);
                for source in [self, other] {
                    if let Some(s) = source.stage(id) {
                        entry.absorb(s);
                    }
                }
                entry
            })
            .collect();
        let mut obs_sinks = self.obs_sinks.clone();
        for name in &other.obs_sinks {
            if !obs_sinks.contains(name) {
                obs_sinks.push(name.clone());
            }
        }
        PipelineTelemetry {
            schema_version: TELEMETRY_SCHEMA_VERSION,
            phase: format!("{}+{}", self.phase, other.phase),
            threads: self.threads.max(other.threads),
            stages,
            total_wall_ms: self.total_wall_ms + other.total_wall_ms,
            resumed_tiles: self.resumed_tiles + other.resumed_tiles,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            recomputed_tiles: self.recomputed_tiles + other.recomputed_tiles,
            timed_out: self.timed_out + other.timed_out,
            aborted_reason: self
                .aborted_reason
                .clone()
                .or_else(|| other.aborted_reason.clone()),
            obs_sinks,
        }
    }

    /// A human-readable per-stage breakdown table, for the bench binaries
    /// and the CLI.
    ///
    /// Header and rows are rendered from one shared column spec
    /// (`BREAKDOWN_COLUMNS`), so stage names and every numeric column —
    /// including the v5 admission columns — stay aligned by construction.
    pub fn breakdown(&self) -> String {
        let mut out = format!(
            "pipeline telemetry (schema v{}, phase {}, {} thread(s), total {:.2} ms, {} resumed tile(s))\n",
            self.schema_version, self.phase, self.threads, self.total_wall_ms, self.resumed_tiles
        );
        let header: Vec<String> = BREAKDOWN_COLUMNS
            .iter()
            .map(|(title, _)| (*title).to_string())
            .collect();
        out.push_str(&breakdown_row("stage", &header));
        for s in &self.stages {
            let cells = vec![
                format!("{:.3}", s.wall_ms),
                s.items_in.to_string(),
                s.items_out.to_string(),
                s.threads_used.to_string(),
                s.tasks_executed.to_string(),
                s.tasks_stolen.to_string(),
                s.batches.to_string(),
                s.failures.to_string(),
                s.retries.to_string(),
                s.admissions.to_string(),
                s.admission_skips.to_string(),
                s.timeouts.to_string(),
            ];
            out.push_str(&breakdown_row(&s.stage, &cells));
        }
        if !self.obs_sinks.is_empty() {
            let _ = writeln!(out, "  obs sinks: {}", self.obs_sinks.join(", "));
        }
        out
    }
}

/// Width of the left-aligned stage-name column in [`breakdown`]
/// (PipelineTelemetry::breakdown) output: the widest canonical stage name
/// (`topological_classification`, 26 chars) plus two spaces of air.
const STAGE_NAME_WIDTH: usize = 28;

/// The numeric columns of the breakdown table — `(header, width)` pairs
/// used for both the header and every data row, so the two can never
/// drift apart.
const BREAKDOWN_COLUMNS: [(&str, usize); 12] = [
    ("wall (ms)", 12),
    ("in", 9),
    ("out", 9),
    ("threads", 8),
    ("tasks", 7),
    ("stolen", 7),
    ("batches", 7),
    ("failed", 6),
    ("retried", 7),
    ("admitted", 9),
    ("adm-skips", 10),
    ("timeouts", 9),
];

/// Renders one breakdown line: the stage cell left-padded to
/// [`STAGE_NAME_WIDTH`], then each cell right-aligned to its column width.
fn breakdown_row(stage: &str, cells: &[String]) -> String {
    debug_assert_eq!(cells.len(), BREAKDOWN_COLUMNS.len());
    let mut line = format!("  {stage:<STAGE_NAME_WIDTH$}");
    for (cell, (_, width)) in cells.iter().zip(BREAKDOWN_COLUMNS) {
        let _ = write!(line, " {cell:>width$}");
    }
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StageRecorder;

    fn sample(phase: &str, stage: StageId) -> PipelineTelemetry {
        let mut rec = StageRecorder::new(phase, 2);
        rec.record(stage, 10, 4, Duration::from_millis(3), None);
        rec.finish()
    }

    #[test]
    fn merge_carries_all_canonical_stages() {
        let train = sample("training", StageId::KernelTraining);
        let detect = sample("detection", StageId::KernelEvaluation);
        let merged = train.merge(&detect);
        assert_eq!(merged.stages.len(), StageId::ALL.len());
        assert_eq!(merged.phase, "training+detection");
        for (entry, id) in merged.stages.iter().zip(StageId::ALL) {
            assert_eq!(entry.stage, id.name());
        }
        assert!(merged.stage(StageId::KernelTraining).unwrap().wall_ms > 0.0);
        assert_eq!(merged.stage(StageId::ClipRemoval).unwrap().items_in, 0);
        assert!((merged.total_wall_ms - train.total_wall_ms - detect.total_wall_ms).abs() < 1e-12);
    }

    #[test]
    fn serde_json_round_trip() {
        let t = sample("training", StageId::PopulationBalancing);
        let json = serde_json::to_string(&t).unwrap();
        let back: PipelineTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        assert!(json.contains("\"schema_version\":8"), "{json}");
        assert!(json.contains("\"obs_sinks\":[]"), "{json}");
        assert!(json.contains("\"timeouts\""), "{json}");
        assert!(json.contains("\"timed_out\""), "{json}");
        assert!(json.contains("\"aborted_reason\":null"), "{json}");
        assert!(json.contains("\"cache_hits\""), "{json}");
        assert!(json.contains("\"cache_misses\""), "{json}");
        assert!(json.contains("\"recomputed_tiles\""), "{json}");
        assert!(json.contains("\"batches\""), "{json}");
        assert!(json.contains("\"failures\""), "{json}");
        assert!(json.contains("\"retries\""), "{json}");
        assert!(json.contains("\"resumed_tiles\""), "{json}");
        assert!(json.contains("\"admissions\""), "{json}");
        assert!(json.contains("\"admission_skips\""), "{json}");
        assert!(json.contains("population_balancing"), "{json}");
    }

    #[test]
    fn pre_v4_records_deserialise_without_fault_counters() {
        // A v2-era stage record: no batches, failures, or retries.
        let json = r#"{"stage":"kernel_evaluation","wall_ms":1.0,"items_in":2,
            "items_out":1,"threads_used":1,"tasks_executed":1,"tasks_stolen":0}"#;
        let s: StageTelemetry = serde_json::from_str(json).unwrap();
        assert_eq!(s.batches, 0);
        assert_eq!(s.failures, 0);
        assert_eq!(s.retries, 0);
        // A v3-era pipeline record: no resumed_tiles.
        let json = r#"{"schema_version":3,"phase":"scan","threads":2,
            "stages":[],"total_wall_ms":1.0}"#;
        let t: PipelineTelemetry = serde_json::from_str(json).unwrap();
        assert_eq!(t.resumed_tiles, 0);
    }

    #[test]
    fn v4_records_deserialise_without_admission_counters() {
        // A v4-era stage record: fault counters present, no admissions.
        let json = r#"{"stage":"kernel_evaluation","wall_ms":1.0,"items_in":2,
            "items_out":1,"threads_used":1,"tasks_executed":1,"tasks_stolen":0,
            "batches":1,"failures":0,"retries":0}"#;
        let s: StageTelemetry = serde_json::from_str(json).unwrap();
        assert_eq!(s.admissions, 0);
        assert_eq!(s.admission_skips, 0);
        // A full v4 pipeline record still loads (schema_version is data,
        // not a gate) and merges cleanly with v5 output.
        let json = r#"{"schema_version":4,"phase":"detection","threads":2,
            "stages":[{"stage":"kernel_evaluation","wall_ms":1.0,"items_in":2,
            "items_out":1,"threads_used":1,"tasks_executed":1,"tasks_stolen":0,
            "batches":1,"failures":0,"retries":0}],
            "total_wall_ms":1.0,"resumed_tiles":0}"#;
        let t: PipelineTelemetry = serde_json::from_str(json).unwrap();
        let merged = t.merge(&PipelineTelemetry::default());
        assert_eq!(merged.schema_version, TELEMETRY_SCHEMA_VERSION);
        assert_eq!(
            merged.stage(StageId::KernelEvaluation).unwrap().admissions,
            0
        );
    }

    #[test]
    fn v5_records_deserialise_without_obs_sinks() {
        // A full v5 pipeline record: admission counters present, no
        // obs_sinks list.
        let json = r#"{"schema_version":5,"phase":"detection","threads":2,
            "stages":[{"stage":"kernel_evaluation","wall_ms":1.0,"items_in":2,
            "items_out":1,"threads_used":1,"tasks_executed":1,"tasks_stolen":0,
            "batches":1,"failures":0,"retries":0,"admissions":4,
            "admission_skips":12}],
            "total_wall_ms":1.0,"resumed_tiles":0}"#;
        let t: PipelineTelemetry = serde_json::from_str(json).unwrap();
        assert!(t.obs_sinks.is_empty());
        let merged = t.merge(&PipelineTelemetry::default());
        assert_eq!(merged.schema_version, TELEMETRY_SCHEMA_VERSION);
        assert!(merged.obs_sinks.is_empty());
    }

    #[test]
    fn v6_records_deserialise_without_cache_counters() {
        // A full v6 pipeline record: obs_sinks present, no cache counters.
        let json = r#"{"schema_version":6,"phase":"scan","threads":2,
            "stages":[],"total_wall_ms":1.0,"resumed_tiles":3,
            "obs_sinks":["ndjson"]}"#;
        let t: PipelineTelemetry = serde_json::from_str(json).unwrap();
        assert_eq!(t.cache_hits, 0);
        assert_eq!(t.cache_misses, 0);
        assert_eq!(t.recomputed_tiles, 0);
        let merged = t.merge(&PipelineTelemetry::default());
        assert_eq!(merged.schema_version, TELEMETRY_SCHEMA_VERSION);
        assert_eq!(merged.resumed_tiles, 3);
    }

    #[test]
    fn v7_records_deserialise_without_deadline_counters() {
        // A full v7 pipeline record: cache counters present, no per-stage
        // timeouts, run-level timed_out, or aborted_reason.
        let json = r#"{"schema_version":7,"phase":"scan","threads":2,
            "stages":[{"stage":"kernel_evaluation","wall_ms":1.0,"items_in":2,
            "items_out":1,"threads_used":1,"tasks_executed":1,"tasks_stolen":0,
            "batches":1,"failures":1,"retries":1,"admissions":4,
            "admission_skips":12}],
            "total_wall_ms":1.0,"resumed_tiles":0,"cache_hits":3,
            "cache_misses":1,"recomputed_tiles":1,"obs_sinks":["ndjson"]}"#;
        let t: PipelineTelemetry = serde_json::from_str(json).unwrap();
        assert_eq!(t.timed_out, 0);
        assert_eq!(t.aborted_reason, None);
        assert_eq!(t.stage(StageId::KernelEvaluation).unwrap().timeouts, 0);
        let merged = t.merge(&PipelineTelemetry::default());
        assert_eq!(merged.schema_version, TELEMETRY_SCHEMA_VERSION);
        assert_eq!(merged.timed_out, 0);
    }

    #[test]
    fn merge_sums_timeouts_and_keeps_first_abort_reason() {
        let a = PipelineTelemetry {
            phase: "scan".to_string(),
            timed_out: 2,
            aborted_reason: None,
            ..PipelineTelemetry::default()
        };
        let b = PipelineTelemetry {
            phase: "scan".to_string(),
            timed_out: 1,
            aborted_reason: Some("deadline_exceeded".to_string()),
            ..PipelineTelemetry::default()
        };
        let merged = a.merge(&b);
        assert_eq!(merged.timed_out, 3);
        assert_eq!(merged.aborted_reason.as_deref(), Some("deadline_exceeded"));
        // When both halves aborted, the left-hand reason wins.
        let c = PipelineTelemetry {
            aborted_reason: Some("interrupted".to_string()),
            ..a
        };
        assert_eq!(c.merge(&b).aborted_reason.as_deref(), Some("interrupted"));
    }

    #[test]
    fn merge_sums_cache_counters() {
        let a = PipelineTelemetry {
            phase: "scan".to_string(),
            cache_hits: 5,
            cache_misses: 2,
            recomputed_tiles: 2,
            ..PipelineTelemetry::default()
        };
        let b = PipelineTelemetry {
            phase: "scan".to_string(),
            cache_hits: 1,
            cache_misses: 4,
            recomputed_tiles: 4,
            ..PipelineTelemetry::default()
        };
        let merged = a.merge(&b);
        assert_eq!(merged.cache_hits, 6);
        assert_eq!(merged.cache_misses, 6);
        assert_eq!(merged.recomputed_tiles, 6);
    }

    #[test]
    fn merge_unions_obs_sinks_preserving_order() {
        let mut a = PipelineTelemetry {
            phase: "training".to_string(),
            ..PipelineTelemetry::default()
        };
        a.obs_sinks = vec!["ndjson".to_string(), "prometheus".to_string()];
        let mut b = PipelineTelemetry {
            phase: "detection".to_string(),
            ..PipelineTelemetry::default()
        };
        b.obs_sinks = vec!["prometheus".to_string(), "progress".to_string()];
        let merged = a.merge(&b);
        assert_eq!(merged.obs_sinks, vec!["ndjson", "prometheus", "progress"]);
    }

    #[test]
    fn breakdown_rendering_is_pinned() {
        let mut t = PipelineTelemetry {
            phase: "detection".to_string(),
            threads: 2,
            total_wall_ms: 12.5,
            ..PipelineTelemetry::default()
        };
        let mut eval = StageTelemetry::empty(StageId::KernelEvaluation);
        eval.wall_ms = 3.25;
        eval.items_in = 128;
        eval.items_out = 5;
        eval.threads_used = 2;
        eval.tasks_executed = 2;
        eval.batches = 2;
        eval.failures = 1;
        eval.admissions = 96;
        eval.admission_skips = 1024;
        eval.timeouts = 1;
        let mut removal = StageTelemetry::empty(StageId::ClipRemoval);
        removal.wall_ms = 0.5;
        removal.items_in = 5;
        removal.items_out = 3;
        removal.threads_used = 1;
        removal.tasks_executed = 1;
        t.stages = vec![eval, removal];
        let expected = "\
pipeline telemetry (schema v8, phase detection, 2 thread(s), total 12.50 ms, 0 resumed tile(s))
  stage                           wall (ms)        in       out  threads   tasks  stolen batches failed retried  admitted  adm-skips  timeouts
  kernel_evaluation                   3.250       128         5        2       2       0       2      1       0        96       1024         1
  clip_removal                        0.500         5         3        1       1       0       0      0       0         0          0         0
";
        assert_eq!(t.breakdown(), expected);
        // Header and every row share the column spec, so all lines after
        // the summary have equal length.
        let rendered = t.breakdown();
        let lines: Vec<&str> = rendered.lines().skip(1).map(str::trim_end).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        // An observed run appends the sink list.
        t.obs_sinks = vec!["ndjson".to_string(), "prometheus".to_string()];
        assert!(t.breakdown().ends_with("  obs sinks: ndjson, prometheus\n"));
    }

    #[test]
    fn wall_time_round_trips_through_ms() {
        let s = StageTelemetry {
            wall_ms: 1500.0,
            ..StageTelemetry::empty(StageId::ClipExtraction)
        };
        assert_eq!(s.wall_time(), Duration::from_millis(1500));
    }
}
