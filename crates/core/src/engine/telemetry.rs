//! Serializable per-stage pipeline telemetry.
//!
//! Every run of the training or evaluation pipeline produces a
//! [`PipelineTelemetry`] describing, for each of the eight canonical
//! stages, its wall-clock time, item flow, and thread utilisation. The
//! structure is serde-serialisable so the CLI can persist it
//! (`hotspot detect --telemetry out.json`) and the bench binaries can
//! print per-stage breakdowns.

use super::stage::StageId;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Duration;

/// Version of the telemetry JSON schema (bump on breaking field changes).
///
/// v2 added the `density_prefilter` stage to the canonical stage list
/// (merged records therefore carry eight stages instead of seven).
/// v3 added the per-stage `batches` counter: clip batches scheduled
/// through the batched SVM inference engine (0 for unbatched stages).
/// v4 added the fault-tolerance counters: per-stage `failures` (task
/// attempts that panicked and were isolated) and `retries` (failed tasks
/// re-attempted before quarantine), plus the run-level `resumed_tiles`
/// (tiles replayed from a scan journal instead of recomputed). All three
/// deserialise as 0 from older records via `#[serde(default)]`.
/// v5 added the admission counters: per-stage `admissions` (clip-kernel
/// pairs admitted to SVM evaluation by topology or density) and
/// `admission_skips` (centroid-orientation rows the compiled admission
/// router pruned via its mass gate, norm screen, or early exit; 0 under
/// the reference engine). Both deserialise as 0 from v4 and older records
/// via `#[serde(default)]`.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 5;

/// Telemetry of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTelemetry {
    /// Canonical stage name (see [`StageId::name`]).
    pub stage: String,
    /// Wall-clock time spent in the stage, in milliseconds.
    pub wall_ms: f64,
    /// Items entering the stage (patterns, clusters, clips, …).
    pub items_in: usize,
    /// Items leaving the stage.
    pub items_out: usize,
    /// Worker threads that participated.
    pub threads_used: usize,
    /// Tasks executed across all workers (0 for untasked stages).
    pub tasks_executed: usize,
    /// Tasks a worker stole from another worker's queue.
    pub tasks_stolen: usize,
    /// Clip batches scheduled through the batched SVM inference engine
    /// (0 for stages that do not evaluate clips). Absent in pre-v3 records,
    /// which deserialise with 0.
    #[serde(default)]
    pub batches: usize,
    /// Task attempts in this stage that panicked and were isolated by the
    /// executor instead of aborting the process. Absent in pre-v4 records,
    /// which deserialise with 0.
    #[serde(default)]
    pub failures: usize,
    /// Failed tasks that were retried once before quarantine. Absent in
    /// pre-v4 records, which deserialise with 0.
    #[serde(default)]
    pub retries: usize,
    /// Clip-kernel pairs admitted to SVM evaluation (by exact topology
    /// match or density routing). Absent in pre-v5 records, which
    /// deserialise with 0.
    #[serde(default)]
    pub admissions: u64,
    /// Centroid-orientation rows the compiled admission router pruned
    /// without computing their full exact distance (mass gate + norm
    /// screen + early exit); 0 under the reference engine. Absent in
    /// pre-v5 records, which deserialise with 0.
    #[serde(default)]
    pub admission_skips: u64,
}

impl StageTelemetry {
    /// An all-zero entry for a stage that did not run.
    pub fn empty(stage: StageId) -> Self {
        StageTelemetry {
            stage: stage.name().to_string(),
            wall_ms: 0.0,
            items_in: 0,
            items_out: 0,
            threads_used: 0,
            tasks_executed: 0,
            tasks_stolen: 0,
            batches: 0,
            failures: 0,
            retries: 0,
            admissions: 0,
            admission_skips: 0,
        }
    }

    /// The stage wall time as a [`Duration`].
    pub fn wall_time(&self) -> Duration {
        Duration::from_secs_f64((self.wall_ms / 1e3).max(0.0))
    }

    /// Accumulates another record of the same stage into this one.
    fn absorb(&mut self, other: &StageTelemetry) {
        self.wall_ms += other.wall_ms;
        self.items_in += other.items_in;
        self.items_out += other.items_out;
        self.threads_used = self.threads_used.max(other.threads_used);
        self.tasks_executed += other.tasks_executed;
        self.tasks_stolen += other.tasks_stolen;
        self.batches += other.batches;
        self.failures += other.failures;
        self.retries += other.retries;
        self.admissions += other.admissions;
        self.admission_skips += other.admission_skips;
    }
}

/// Telemetry of one pipeline run (a training phase, an evaluation phase,
/// or both merged).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineTelemetry {
    /// Telemetry schema version ([`TELEMETRY_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Which phase this telemetry covers (`"training"`, `"detection"`, or
    /// `"training+detection"` after merging).
    pub phase: String,
    /// Worker threads configured for the run.
    pub threads: usize,
    /// Per-stage records in canonical pipeline order.
    pub stages: Vec<StageTelemetry>,
    /// Total wall-clock time of the phase, in milliseconds.
    pub total_wall_ms: f64,
    /// Tiles replayed from a scan journal instead of recomputed (resume).
    /// Absent in pre-v4 records, which deserialise with 0.
    #[serde(default)]
    pub resumed_tiles: usize,
}

impl Default for PipelineTelemetry {
    fn default() -> Self {
        PipelineTelemetry {
            schema_version: TELEMETRY_SCHEMA_VERSION,
            phase: String::new(),
            threads: 0,
            stages: Vec::new(),
            total_wall_ms: 0.0,
            resumed_tiles: 0,
        }
    }
}

impl PipelineTelemetry {
    /// The record for `stage`, when that stage ran.
    pub fn stage(&self, stage: StageId) -> Option<&StageTelemetry> {
        self.stages.iter().find(|s| s.stage == stage.name())
    }

    /// Total wall time as a [`Duration`].
    pub fn total_wall_time(&self) -> Duration {
        Duration::from_secs_f64((self.total_wall_ms / 1e3).max(0.0))
    }

    /// Merges two phases (typically training + detection) into one record
    /// that carries **all eight** canonical stages, zero-filled where a
    /// stage ran in neither phase.
    pub fn merge(&self, other: &PipelineTelemetry) -> PipelineTelemetry {
        let stages = StageId::ALL
            .iter()
            .map(|&id| {
                let mut entry = StageTelemetry::empty(id);
                for source in [self, other] {
                    if let Some(s) = source.stage(id) {
                        entry.absorb(s);
                    }
                }
                entry
            })
            .collect();
        PipelineTelemetry {
            schema_version: TELEMETRY_SCHEMA_VERSION,
            phase: format!("{}+{}", self.phase, other.phase),
            threads: self.threads.max(other.threads),
            stages,
            total_wall_ms: self.total_wall_ms + other.total_wall_ms,
            resumed_tiles: self.resumed_tiles + other.resumed_tiles,
        }
    }

    /// A human-readable per-stage breakdown table, for the bench binaries
    /// and the CLI.
    pub fn breakdown(&self) -> String {
        let mut out = format!(
            "pipeline telemetry (schema v{}, phase {}, {} thread(s), total {:.2} ms, {} resumed tile(s))\n",
            self.schema_version, self.phase, self.threads, self.total_wall_ms, self.resumed_tiles
        );
        let _ = writeln!(
            out,
            "  {:<28} {:>12} {:>9} {:>9} {:>8} {:>7} {:>7} {:>7} {:>6} {:>7} {:>9} {:>10}",
            "stage",
            "wall (ms)",
            "in",
            "out",
            "threads",
            "tasks",
            "stolen",
            "batches",
            "failed",
            "retried",
            "admitted",
            "adm-skips"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  {:<28} {:>12.3} {:>9} {:>9} {:>8} {:>7} {:>7} {:>7} {:>6} {:>7} {:>9} {:>10}",
                s.stage,
                s.wall_ms,
                s.items_in,
                s.items_out,
                s.threads_used,
                s.tasks_executed,
                s.tasks_stolen,
                s.batches,
                s.failures,
                s.retries,
                s.admissions,
                s.admission_skips
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StageRecorder;

    fn sample(phase: &str, stage: StageId) -> PipelineTelemetry {
        let mut rec = StageRecorder::new(phase, 2);
        rec.record(stage, 10, 4, Duration::from_millis(3), None);
        rec.finish()
    }

    #[test]
    fn merge_carries_all_canonical_stages() {
        let train = sample("training", StageId::KernelTraining);
        let detect = sample("detection", StageId::KernelEvaluation);
        let merged = train.merge(&detect);
        assert_eq!(merged.stages.len(), StageId::ALL.len());
        assert_eq!(merged.phase, "training+detection");
        for (entry, id) in merged.stages.iter().zip(StageId::ALL) {
            assert_eq!(entry.stage, id.name());
        }
        assert!(merged.stage(StageId::KernelTraining).unwrap().wall_ms > 0.0);
        assert_eq!(merged.stage(StageId::ClipRemoval).unwrap().items_in, 0);
        assert!((merged.total_wall_ms - train.total_wall_ms - detect.total_wall_ms).abs() < 1e-12);
    }

    #[test]
    fn serde_json_round_trip() {
        let t = sample("training", StageId::PopulationBalancing);
        let json = serde_json::to_string(&t).unwrap();
        let back: PipelineTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        assert!(json.contains("\"schema_version\":5"), "{json}");
        assert!(json.contains("\"batches\""), "{json}");
        assert!(json.contains("\"failures\""), "{json}");
        assert!(json.contains("\"retries\""), "{json}");
        assert!(json.contains("\"resumed_tiles\""), "{json}");
        assert!(json.contains("\"admissions\""), "{json}");
        assert!(json.contains("\"admission_skips\""), "{json}");
        assert!(json.contains("population_balancing"), "{json}");
    }

    #[test]
    fn pre_v4_records_deserialise_without_fault_counters() {
        // A v2-era stage record: no batches, failures, or retries.
        let json = r#"{"stage":"kernel_evaluation","wall_ms":1.0,"items_in":2,
            "items_out":1,"threads_used":1,"tasks_executed":1,"tasks_stolen":0}"#;
        let s: StageTelemetry = serde_json::from_str(json).unwrap();
        assert_eq!(s.batches, 0);
        assert_eq!(s.failures, 0);
        assert_eq!(s.retries, 0);
        // A v3-era pipeline record: no resumed_tiles.
        let json = r#"{"schema_version":3,"phase":"scan","threads":2,
            "stages":[],"total_wall_ms":1.0}"#;
        let t: PipelineTelemetry = serde_json::from_str(json).unwrap();
        assert_eq!(t.resumed_tiles, 0);
    }

    #[test]
    fn v4_records_deserialise_without_admission_counters() {
        // A v4-era stage record: fault counters present, no admissions.
        let json = r#"{"stage":"kernel_evaluation","wall_ms":1.0,"items_in":2,
            "items_out":1,"threads_used":1,"tasks_executed":1,"tasks_stolen":0,
            "batches":1,"failures":0,"retries":0}"#;
        let s: StageTelemetry = serde_json::from_str(json).unwrap();
        assert_eq!(s.admissions, 0);
        assert_eq!(s.admission_skips, 0);
        // A full v4 pipeline record still loads (schema_version is data,
        // not a gate) and merges cleanly with v5 output.
        let json = r#"{"schema_version":4,"phase":"detection","threads":2,
            "stages":[{"stage":"kernel_evaluation","wall_ms":1.0,"items_in":2,
            "items_out":1,"threads_used":1,"tasks_executed":1,"tasks_stolen":0,
            "batches":1,"failures":0,"retries":0}],
            "total_wall_ms":1.0,"resumed_tiles":0}"#;
        let t: PipelineTelemetry = serde_json::from_str(json).unwrap();
        let merged = t.merge(&PipelineTelemetry::default());
        assert_eq!(merged.schema_version, TELEMETRY_SCHEMA_VERSION);
        assert_eq!(
            merged.stage(StageId::KernelEvaluation).unwrap().admissions,
            0
        );
    }

    #[test]
    fn wall_time_round_trips_through_ms() {
        let s = StageTelemetry {
            wall_ms: 1500.0,
            ..StageTelemetry::empty(StageId::ClipExtraction)
        };
        assert_eq!(s.wall_time(), Duration::from_millis(1500));
    }
}
