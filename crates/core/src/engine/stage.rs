//! The eight canonical pipeline stages and the recorder that times them.

use super::executor::ExecutorStats;
use super::telemetry::{PipelineTelemetry, StageTelemetry, TELEMETRY_SCHEMA_VERSION};
use std::fmt;
use std::time::{Duration, Instant};

/// The stages of the Fig. 3 pipeline, in canonical order.
///
/// The first four run during training, the rest during evaluation. The
/// density-prefilter stage only does work in the streaming layout scan
/// (`scan_layout`); clip-list detection records it with zero items.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageId {
    /// String- then density-based classification of training patterns.
    TopologicalClassification,
    /// Hotspot upsampling by data shifting and nonhotspot downsampling to
    /// cluster medoids.
    PopulationBalancing,
    /// Per-cluster SVM training with iterative `(C, γ)` adaptation.
    KernelTraining,
    /// Feedback-kernel training on self-evaluation false alarms.
    FeedbackTraining,
    /// Density-based tile prefiltering during a streaming layout scan.
    DensityPrefilter,
    /// Clip extraction by polygon dissection with distribution filtering.
    ClipExtraction,
    /// Multiple-kernel (and feedback) evaluation of extracted clips.
    KernelEvaluation,
    /// Redundant clip removal: merging, reframing, discarding, shifting.
    ClipRemoval,
}

impl StageId {
    /// All stages in canonical pipeline order.
    pub const ALL: [StageId; 8] = [
        StageId::TopologicalClassification,
        StageId::PopulationBalancing,
        StageId::KernelTraining,
        StageId::FeedbackTraining,
        StageId::DensityPrefilter,
        StageId::ClipExtraction,
        StageId::KernelEvaluation,
        StageId::ClipRemoval,
    ];

    /// The stable snake_case name used in telemetry JSON.
    pub fn name(self) -> &'static str {
        match self {
            StageId::TopologicalClassification => "topological_classification",
            StageId::PopulationBalancing => "population_balancing",
            StageId::KernelTraining => "kernel_training",
            StageId::FeedbackTraining => "feedback_training",
            StageId::DensityPrefilter => "density_prefilter",
            StageId::ClipExtraction => "clip_extraction",
            StageId::KernelEvaluation => "kernel_evaluation",
            StageId::ClipRemoval => "clip_removal",
        }
    }

    /// Resolves a stable snake_case [`name`](Self::name) back to its stage.
    ///
    /// Returns `None` for labels that are not canonical stage names (the
    /// executor also runs ad-hoc stages such as `"scan_tile"`).
    pub fn from_name(name: &str) -> Option<StageId> {
        StageId::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// Position in the canonical order (`0..8`), matching [`StageId::ALL`].
    ///
    /// Used to index per-stage observability counter slots and to sort
    /// telemetry output.
    pub fn index(self) -> usize {
        StageId::ALL
            .iter()
            .position(|&s| s == self)
            .expect("stage is canonical")
    }

    /// Position in the canonical order, for sorting telemetry output.
    fn rank(self) -> usize {
        self.index()
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Accumulates per-stage timings into a [`PipelineTelemetry`].
///
/// Recording the same stage twice accumulates (wall time and item counts
/// add up) so interleaved stages — e.g. the two halves of population
/// balancing that bracket topological classification — fold into one entry.
#[derive(Debug)]
pub struct StageRecorder {
    phase: String,
    threads: usize,
    stages: Vec<(StageId, StageTelemetry)>,
    started: Instant,
    resumed_tiles: usize,
    cache_hits: usize,
    cache_misses: usize,
    recomputed_tiles: usize,
    timed_out: usize,
    aborted_reason: Option<String>,
    obs_sinks: Vec<String>,
}

impl StageRecorder {
    /// Starts recording a phase (`"training"` or `"detection"`) configured
    /// with `threads` workers.
    pub fn new(phase: &str, threads: usize) -> Self {
        StageRecorder {
            phase: phase.to_string(),
            threads,
            stages: Vec::new(),
            started: Instant::now(),
            resumed_tiles: 0,
            cache_hits: 0,
            cache_misses: 0,
            recomputed_tiles: 0,
            timed_out: 0,
            aborted_reason: None,
            obs_sinks: Vec::new(),
        }
    }

    /// Records the observability sinks active during this phase (schema
    /// v6). The list is carried verbatim into the finished telemetry;
    /// phases run without an [`ObsHub`](crate::obs::ObsHub) leave it empty.
    pub fn set_obs_sinks(&mut self, sinks: Vec<String>) {
        self.obs_sinks = sinks;
    }

    /// Records one stage execution. `stats` carries work-stealing executor
    /// counters for parallel stages; sequential stages pass `None` and are
    /// counted as one task on one thread.
    pub fn record(
        &mut self,
        stage: StageId,
        items_in: usize,
        items_out: usize,
        wall: Duration,
        stats: Option<&ExecutorStats>,
    ) {
        self.record_batched(stage, items_in, items_out, wall, stats, 0);
    }

    /// [`record`](Self::record) for a stage that ran `batches` clip batches
    /// through the batched SVM inference engine.
    pub fn record_batched(
        &mut self,
        stage: StageId,
        items_in: usize,
        items_out: usize,
        wall: Duration,
        stats: Option<&ExecutorStats>,
        batches: usize,
    ) {
        let (threads_used, tasks_executed, tasks_stolen) = match stats {
            Some(s) => (s.threads_used, s.tasks_executed, s.tasks_stolen),
            None => (1, 1, 0),
        };
        let entry = StageTelemetry {
            stage: stage.name().to_string(),
            wall_ms: wall.as_secs_f64() * 1e3,
            items_in,
            items_out,
            threads_used,
            tasks_executed,
            tasks_stolen,
            batches,
            failures: stats.map_or(0, |s| s.tasks_failed),
            retries: 0,
            admissions: 0,
            admission_skips: 0,
            timeouts: 0,
        };
        match self.stages.iter_mut().find(|(id, _)| *id == stage) {
            Some((_, existing)) => {
                existing.wall_ms += entry.wall_ms;
                existing.items_in += entry.items_in;
                existing.items_out += entry.items_out;
                existing.threads_used = existing.threads_used.max(entry.threads_used);
                existing.tasks_executed += entry.tasks_executed;
                existing.tasks_stolen += entry.tasks_stolen;
                existing.batches += entry.batches;
                existing.failures += entry.failures;
                existing.retries += entry.retries;
            }
            None => self.stages.push((stage, entry)),
        }
    }

    /// Folds admission counters into `stage`: `admissions` clip-kernel
    /// pairs admitted to SVM evaluation and `admission_skips`
    /// centroid-orientation rows the compiled router pruned (schema v5).
    /// Creates a zero-time entry when the stage has not been recorded yet.
    pub fn record_admissions(&mut self, stage: StageId, admissions: u64, admission_skips: u64) {
        match self.stages.iter_mut().find(|(id, _)| *id == stage) {
            Some((_, existing)) => {
                existing.admissions += admissions;
                existing.admission_skips += admission_skips;
            }
            None => {
                let mut entry = StageTelemetry::empty(stage);
                entry.admissions = admissions;
                entry.admission_skips = admission_skips;
                self.stages.push((stage, entry));
            }
        }
    }

    /// Folds fault-tolerance counters into `stage`: `failures` panicking
    /// task attempts and `retries` re-attempts (schema v4). Creates a
    /// zero-time entry when the stage has not been recorded yet.
    pub fn record_faults(&mut self, stage: StageId, failures: usize, retries: usize) {
        match self.stages.iter_mut().find(|(id, _)| *id == stage) {
            Some((_, existing)) => {
                existing.failures += failures;
                existing.retries += retries;
            }
            None => {
                let mut entry = StageTelemetry::empty(stage);
                entry.failures = failures;
                entry.retries = retries;
                self.stages.push((stage, entry));
            }
        }
    }

    /// Folds soft-budget timeouts into `stage` (schema v8): `timeouts`
    /// tasks quarantined for exceeding
    /// [`ScanConfig::tile_timeout`](crate::ScanConfig::tile_timeout). Also
    /// added to the run-level `timed_out` total. Creates a zero-time entry
    /// when the stage has not been recorded yet.
    pub fn record_timeouts(&mut self, stage: StageId, timeouts: usize) {
        self.timed_out += timeouts;
        match self.stages.iter_mut().find(|(id, _)| *id == stage) {
            Some((_, existing)) => existing.timeouts += timeouts,
            None => {
                let mut entry = StageTelemetry::empty(stage);
                entry.timeouts = timeouts;
                self.stages.push((stage, entry));
            }
        }
    }

    /// Records that the run stopped early, with the stable
    /// [`AbortReason::name`](crate::AbortReason::name) string (schema v8).
    /// The first recorded reason wins.
    pub fn set_aborted(&mut self, reason: &str) {
        if self.aborted_reason.is_none() {
            self.aborted_reason = Some(reason.to_string());
        }
    }

    /// Adds tiles replayed from a scan journal to the run-level resume
    /// counter (schema v4).
    pub fn add_resumed_tiles(&mut self, tiles: usize) {
        self.resumed_tiles += tiles;
    }

    /// Adds one batch's tile-cache traffic to the run-level cache counters
    /// (schema v7): `hits` cache-served tiles, `misses` the cache could
    /// not serve, and `recomputed` tiles that ran the full pipeline.
    pub fn add_cache_stats(&mut self, hits: usize, misses: usize, recomputed: usize) {
        self.cache_hits += hits;
        self.cache_misses += misses;
        self.recomputed_tiles += recomputed;
    }

    /// Times `f` as one execution of `stage`; the closure returns its value
    /// together with the stage's output item count.
    pub fn time<T>(
        &mut self,
        stage: StageId,
        items_in: usize,
        f: impl FnOnce() -> (T, usize),
    ) -> T {
        let start = Instant::now();
        let (value, items_out) = f();
        self.record(stage, items_in, items_out, start.elapsed(), None);
        value
    }

    /// Finalises the telemetry: stages are sorted into canonical order and
    /// the phase's total wall time is stamped.
    pub fn finish(mut self) -> PipelineTelemetry {
        self.stages.sort_by_key(|(id, _)| id.rank());
        PipelineTelemetry {
            schema_version: TELEMETRY_SCHEMA_VERSION,
            phase: self.phase,
            threads: self.threads,
            stages: self.stages.into_iter().map(|(_, s)| s).collect(),
            total_wall_ms: self.started.elapsed().as_secs_f64() * 1e3,
            resumed_tiles: self.resumed_tiles,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            recomputed_tiles: self.recomputed_tiles,
            timed_out: self.timed_out,
            aborted_reason: self.aborted_reason,
            obs_sinks: self.obs_sinks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_unique() {
        let names: Vec<&str> = StageId::ALL.iter().map(|s| s.name()).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 8);
        assert_eq!(StageId::KernelTraining.to_string(), "kernel_training");
    }

    #[test]
    fn from_name_and_index_round_trip() {
        for (i, stage) in StageId::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert_eq!(StageId::from_name(stage.name()), Some(*stage));
        }
        assert_eq!(StageId::from_name("scan_tile"), None);
        assert_eq!(StageId::from_name("unlabelled"), None);
    }

    #[test]
    fn recorder_accumulates_repeated_stages() {
        let mut rec = StageRecorder::new("training", 4);
        rec.record(
            StageId::PopulationBalancing,
            10,
            50,
            Duration::from_millis(2),
            None,
        );
        rec.record(
            StageId::PopulationBalancing,
            30,
            6,
            Duration::from_millis(3),
            None,
        );
        let t = rec.finish();
        let s = t.stage(StageId::PopulationBalancing).unwrap();
        assert_eq!(s.items_in, 40);
        assert_eq!(s.items_out, 56);
        assert!((s.wall_ms - 5.0).abs() < 1.0, "wall {}", s.wall_ms);
        assert_eq!(s.tasks_executed, 2);
    }

    #[test]
    fn record_batched_accumulates_batches() {
        let mut rec = StageRecorder::new("detection", 2);
        rec.record_batched(StageId::KernelEvaluation, 100, 3, Duration::ZERO, None, 2);
        rec.record_batched(StageId::KernelEvaluation, 60, 1, Duration::ZERO, None, 1);
        rec.record(StageId::ClipRemoval, 4, 4, Duration::ZERO, None);
        let t = rec.finish();
        assert_eq!(t.stage(StageId::KernelEvaluation).unwrap().batches, 3);
        assert_eq!(t.stage(StageId::ClipRemoval).unwrap().batches, 0);
    }

    #[test]
    fn finish_sorts_into_canonical_order() {
        let mut rec = StageRecorder::new("detection", 1);
        rec.record(StageId::ClipRemoval, 1, 1, Duration::ZERO, None);
        rec.record(StageId::ClipExtraction, 1, 1, Duration::ZERO, None);
        let t = rec.finish();
        assert_eq!(t.stages[0].stage, "clip_extraction");
        assert_eq!(t.stages[1].stage, "clip_removal");
        assert_eq!(t.phase, "detection");
        assert_eq!(t.threads, 1);
    }

    #[test]
    fn record_faults_folds_into_existing_or_new_entries() {
        let mut rec = StageRecorder::new("scan", 2);
        rec.record(StageId::KernelEvaluation, 10, 2, Duration::ZERO, None);
        rec.record_faults(StageId::KernelEvaluation, 3, 2);
        rec.record_faults(StageId::DensityPrefilter, 1, 0);
        rec.add_resumed_tiles(4);
        rec.add_resumed_tiles(1);
        let t = rec.finish();
        let eval = t.stage(StageId::KernelEvaluation).unwrap();
        assert_eq!(eval.failures, 3);
        assert_eq!(eval.retries, 2);
        let pre = t.stage(StageId::DensityPrefilter).unwrap();
        assert_eq!(pre.failures, 1);
        assert_eq!(pre.wall_ms, 0.0);
        assert_eq!(t.resumed_tiles, 5);
    }

    #[test]
    fn record_admissions_folds_into_existing_or_new_entries() {
        let mut rec = StageRecorder::new("detection", 2);
        rec.record(StageId::KernelEvaluation, 10, 2, Duration::ZERO, None);
        rec.record_admissions(StageId::KernelEvaluation, 7, 120);
        rec.record_admissions(StageId::KernelEvaluation, 3, 30);
        rec.record_admissions(StageId::DensityPrefilter, 1, 0);
        let t = rec.finish();
        let eval = t.stage(StageId::KernelEvaluation).unwrap();
        assert_eq!(eval.admissions, 10);
        assert_eq!(eval.admission_skips, 150);
        let pre = t.stage(StageId::DensityPrefilter).unwrap();
        assert_eq!(pre.admissions, 1);
        assert_eq!(pre.wall_ms, 0.0);
    }

    #[test]
    fn record_timeouts_folds_per_stage_and_run_level() {
        let mut rec = StageRecorder::new("scan", 2);
        rec.record(StageId::KernelEvaluation, 10, 2, Duration::ZERO, None);
        rec.record_timeouts(StageId::KernelEvaluation, 2);
        rec.record_timeouts(StageId::KernelEvaluation, 1);
        rec.set_aborted("deadline_exceeded");
        rec.set_aborted("interrupted"); // first reason wins
        let t = rec.finish();
        assert_eq!(t.stage(StageId::KernelEvaluation).unwrap().timeouts, 3);
        assert_eq!(t.timed_out, 3);
        assert_eq!(t.aborted_reason.as_deref(), Some("deadline_exceeded"));
    }

    #[test]
    fn add_cache_stats_accumulates_run_level_counters() {
        let mut rec = StageRecorder::new("scan", 2);
        rec.add_cache_stats(3, 1, 1);
        rec.add_cache_stats(0, 4, 4);
        let t = rec.finish();
        assert_eq!(t.cache_hits, 3);
        assert_eq!(t.cache_misses, 5);
        assert_eq!(t.recomputed_tiles, 5);
    }

    #[test]
    fn time_returns_closure_value() {
        let mut rec = StageRecorder::new("training", 1);
        let v = rec.time(StageId::KernelTraining, 3, || (vec![1, 2], 2));
        assert_eq!(v, vec![1, 2]);
        let t = rec.finish();
        assert_eq!(t.stage(StageId::KernelTraining).unwrap().items_out, 2);
    }
}
