//! Deterministic fault injection for the fault-tolerance harness.
//!
//! A [`FaultPlan`] describes, as pure data, which pipeline tasks should
//! fail and how: persistent panics (fail on every attempt), transient
//! panics (fail on the first attempt only, succeeding when retried), and a
//! simulated journal I/O error. Faults are keyed by a *stable task index*
//! (the global tile id in `scan_layout`, the batch index in `detect`) and
//! decided by a seeded hash — never by wall clock or scheduling — so an
//! injected failure set is bit-identical across runs and thread counts,
//! which is what lets the tests assert exact quarantine lists.
//!
//! The empty plan is the production configuration: every injection site
//! first checks [`FaultPlan::is_empty`], a handful of integer compares
//! hoisted out of the per-clip hot loops, so real scans pay nothing.

use serde::{Deserialize, Serialize};

/// Pipeline sites where a [`FaultPlan`] can inject a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultSite {
    /// At the density-prefilter boundary, before any tile work.
    Prefilter,
    /// After prefiltering, at the clip-extraction boundary.
    Extraction,
    /// After extraction, at the kernel-evaluation boundary (the default —
    /// the deepest point, so the most state is in flight when it fires).
    #[default]
    Evaluation,
}

impl FaultSite {
    /// Stable name used in injected panic payloads.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Prefilter => "density_prefilter",
            FaultSite::Extraction => "clip_extraction",
            FaultSite::Evaluation => "kernel_evaluation",
        }
    }
}

/// A seeded, deterministic fault-injection plan.
///
/// Threaded through [`crate::ScanConfig`] (and
/// [`crate::HotspotDetector::with_fault_plan`] for `detect`); the default
/// plan injects nothing.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed mixed into every per-index fault decision.
    #[serde(default)]
    pub seed: u64,
    /// Per-mille probability (0–1000) that a task index fails
    /// *persistently* — on the first attempt and on the retry.
    #[serde(default)]
    pub panic_per_mille: u16,
    /// Per-mille probability (0–1000) that a task index fails
    /// *transiently* — on the first attempt only, succeeding when retried.
    /// Indices already chosen as persistent are not also transient.
    #[serde(default)]
    pub transient_per_mille: u16,
    /// Explicit task indices that always fail persistently.
    #[serde(default)]
    pub panic_tasks: Vec<usize>,
    /// Explicit task indices that always fail transiently.
    #[serde(default)]
    pub transient_tasks: Vec<usize>,
    /// Where in the tile pipeline the injected panic fires.
    #[serde(default)]
    pub site: FaultSite,
    /// Simulated I/O fault: the scan journal returns an error when asked
    /// to append its N-th record (0-based).
    #[serde(default)]
    pub fail_journal_at: Option<usize>,
    /// Explicit task indices that always *stall* for
    /// [`stall_ms`](Self::stall_ms) at the injection site — on every
    /// attempt, so a stalled tile blows a soft per-tile budget on the
    /// retry too. The deterministic stand-in for a pathological tile.
    #[serde(default)]
    pub stall_tasks: Vec<usize>,
    /// Per-mille probability (0–1000) that a task index stalls. Keyed by
    /// the stable task index like the panic rolls, so the stalled set is
    /// identical across runs and thread counts.
    #[serde(default)]
    pub stall_per_mille: u16,
    /// How long an injected stall sleeps, in milliseconds. A plan that
    /// selects stall indices but leaves this at 0 injects nothing.
    #[serde(default)]
    pub stall_ms: u64,
}

/// SplitMix64 — a tiny, high-quality mixer for the per-index fault roll.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Whether the plan injects nothing — the production fast path.
    pub fn is_empty(&self) -> bool {
        self.panic_per_mille == 0
            && self.transient_per_mille == 0
            && self.panic_tasks.is_empty()
            && self.transient_tasks.is_empty()
            && self.fail_journal_at.is_none()
            && self.stall_tasks.is_empty()
            && self.stall_per_mille == 0
    }

    /// Validates the plan's probabilities.
    ///
    /// # Errors
    ///
    /// Returns a message when a per-mille rate exceeds 1000.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("panic_per_mille", self.panic_per_mille),
            ("transient_per_mille", self.transient_per_mille),
            ("stall_per_mille", self.stall_per_mille),
        ] {
            if v > 1000 {
                return Err(format!("{name} must be at most 1000, got {v}"));
            }
        }
        Ok(())
    }

    /// The seeded roll for `index`, stratified by a per-kind salt.
    fn roll(&self, index: usize, salt: u64) -> u16 {
        (splitmix64(self.seed ^ salt.wrapping_mul(0xA076_1D64_78BD_642F) ^ index as u64) % 1000)
            as u16
    }

    /// Whether `index` fails persistently (every attempt).
    pub fn persistent(&self, index: usize) -> bool {
        self.panic_tasks.contains(&index) || self.roll(index, 1) < self.panic_per_mille
    }

    /// Whether `index` fails transiently (first attempt only). Persistent
    /// indices are excluded so the two fault kinds are disjoint.
    pub fn transient(&self, index: usize) -> bool {
        !self.persistent(index)
            && (self.transient_tasks.contains(&index)
                || self.roll(index, 2) < self.transient_per_mille)
    }

    /// Whether the attempt `attempt` (0 = first, 1 = retry) of task
    /// `index` should panic.
    pub fn fails(&self, index: usize, attempt: u32) -> bool {
        if self.is_empty() {
            return false;
        }
        self.persistent(index) || (attempt == 0 && self.transient(index))
    }

    /// Whether `index` stalls for [`stall_ms`](Self::stall_ms) at the
    /// injection site (every attempt — stalls are persistent).
    pub fn stalls(&self, index: usize) -> bool {
        self.stall_ms > 0
            && (self.stall_tasks.contains(&index) || self.roll(index, 3) < self.stall_per_mille)
    }

    /// Injection hook: stalls and/or panics iff the plan marks (`index`,
    /// `attempt`) at `site`. The stall fires first, so a stalled-and-
    /// panicking index loses its time before it fails — the worst case a
    /// watchdog has to handle. Call sites gate on
    /// [`is_empty`](Self::is_empty) first so the empty plan costs nothing.
    pub fn inject(&self, site: FaultSite, index: usize, attempt: u32) {
        if site == self.site && self.stalls(index) {
            std::thread::sleep(std::time::Duration::from_millis(self.stall_ms));
        }
        if site == self.site && self.fails(index, attempt) {
            panic!(
                "injected fault at {} (task {index}, attempt {attempt})",
                site.name()
            );
        }
    }

    /// Whether appending the `record`-th journal record should fail with a
    /// simulated I/O error.
    pub fn fails_journal_at(&self, record: usize) -> bool {
        self.fail_journal_at == Some(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fails() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        for i in 0..1000 {
            assert!(!plan.fails(i, 0));
        }
    }

    #[test]
    fn explicit_indices_fail_as_configured() {
        let plan = FaultPlan {
            panic_tasks: vec![3],
            transient_tasks: vec![5],
            ..Default::default()
        };
        assert!(plan.fails(3, 0) && plan.fails(3, 1), "persistent on retry");
        assert!(plan.fails(5, 0) && !plan.fails(5, 1), "transient recovers");
        assert!(!plan.fails(4, 0));
    }

    #[test]
    fn seeded_rates_are_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan {
            seed: 42,
            panic_per_mille: 100,
            ..Default::default()
        };
        let hits: Vec<usize> = (0..10_000).filter(|&i| plan.persistent(i)).collect();
        let again: Vec<usize> = (0..10_000).filter(|&i| plan.persistent(i)).collect();
        assert_eq!(hits, again, "same seed, same failure set");
        // 10% nominal rate over 10k trials: allow a generous band.
        assert!((700..=1300).contains(&hits.len()), "{} hits", hits.len());
        // A different seed picks a different set.
        let other = FaultPlan { seed: 43, ..plan };
        let other_hits: Vec<usize> = (0..10_000).filter(|&i| other.persistent(i)).collect();
        assert_ne!(hits, other_hits);
    }

    #[test]
    fn persistent_and_transient_are_disjoint() {
        let plan = FaultPlan {
            seed: 7,
            panic_per_mille: 300,
            transient_per_mille: 300,
            ..Default::default()
        };
        for i in 0..5_000 {
            assert!(
                !(plan.persistent(i) && plan.transient(i)),
                "index {i} both persistent and transient"
            );
        }
    }

    #[test]
    fn validation_bounds_rates() {
        let bad = FaultPlan {
            panic_per_mille: 1001,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        assert!(FaultPlan::default().validate().is_ok());
    }

    #[test]
    fn inject_respects_the_site() {
        let plan = FaultPlan {
            panic_tasks: vec![0],
            site: FaultSite::Evaluation,
            ..Default::default()
        };
        // Wrong site: no panic.
        plan.inject(FaultSite::Prefilter, 0, 0);
        let caught = std::panic::catch_unwind(|| plan.inject(FaultSite::Evaluation, 0, 0));
        assert!(caught.is_err());
    }

    #[test]
    fn stalls_are_deterministic_and_need_a_duration() {
        let plan = FaultPlan {
            seed: 3,
            stall_per_mille: 100,
            stall_ms: 10,
            ..Default::default()
        };
        assert!(!plan.is_empty());
        let hits: Vec<usize> = (0..10_000).filter(|&i| plan.stalls(i)).collect();
        let again: Vec<usize> = (0..10_000).filter(|&i| plan.stalls(i)).collect();
        assert_eq!(hits, again, "same seed, same stalled set");
        assert!((700..=1300).contains(&hits.len()), "{} hits", hits.len());
        // The stall roll is salted independently of the panic roll.
        let panics: Vec<usize> = (0..10_000)
            .filter(|&i| {
                FaultPlan {
                    panic_per_mille: 100,
                    ..plan.clone()
                }
                .persistent(i)
            })
            .collect();
        assert_ne!(hits, panics);
        // stall_ms of 0 disarms the stall indices entirely.
        let disarmed = FaultPlan {
            stall_ms: 0,
            stall_tasks: vec![1],
            ..plan
        };
        assert!(!disarmed.stalls(1));
    }

    #[test]
    fn stall_validation_bounds_rate() {
        let bad = FaultPlan {
            stall_per_mille: 1001,
            ..Default::default()
        };
        assert!(bad.validate().unwrap_err().contains("stall_per_mille"));
    }

    #[test]
    fn serde_round_trip() {
        let plan = FaultPlan {
            seed: 9,
            panic_per_mille: 50,
            transient_per_mille: 20,
            panic_tasks: vec![1, 2],
            transient_tasks: vec![3],
            site: FaultSite::Extraction,
            fail_journal_at: Some(4),
            stall_tasks: vec![5],
            stall_per_mille: 10,
            stall_ms: 25,
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        // Older configs without the fault fields deserialise to the empty plan.
        let legacy: FaultPlan = serde_json::from_str("{}").unwrap();
        assert!(legacy.is_empty());
    }
}
