//! Instrumented parallel pipeline engine.
//!
//! This module factors the mechanics shared by the pipeline phases
//! out of [`crate::detector`] and [`crate::training`]:
//!
//! - [`StageId`] / [`StageRecorder`] ([`stage`]) name the eight canonical
//!   stages (topological classification → population balancing → kernel
//!   training → feedback training → density prefilter → clip extraction →
//!   kernel evaluation → clip removal) and time them,
//! - [`Executor`] ([`executor`]) is the work-stealing task scheduler used
//!   by kernel training and clip evaluation in place of fixed-chunk
//!   `thread::scope` fan-out; its task bodies run under `catch_unwind`, so
//!   a panicking task surfaces as a typed [`TaskFailure`] instead of
//!   aborting the process,
//! - [`FaultPlan`] ([`fault`]) is the seeded, deterministic
//!   fault-injection plan the fault-tolerance tests and the CI smoke use
//!   to prove the isolation, retry, and quarantine paths,
//! - [`PipelineTelemetry`] ([`telemetry`]) is the serialisable record the
//!   two phases produce, carried on
//!   [`crate::detector::TrainingSummary`] and
//!   [`crate::detector::DetectionReport`] and merged by the CLI's
//!   `detect --telemetry`.

pub mod executor;
pub mod fault;
pub mod stage;
pub mod telemetry;

pub use executor::{Executor, ExecutorStats, TaskFailure, TaskResult};
pub use fault::{FaultPlan, FaultSite};
pub use stage::{StageId, StageRecorder};
pub use telemetry::{PipelineTelemetry, StageTelemetry, TELEMETRY_SCHEMA_VERSION};
