//! Work-stealing task executor for the pipeline's parallel stages.
//!
//! Replaces the former fixed-chunk `std::thread::scope` fan-out: items are
//! dealt round-robin onto per-worker deques, and an idle worker steals from
//! its neighbours, so a long-running item (a large SVM training, a dense
//! clip) no longer stalls the whole chunk it happened to land in. Results
//! are keyed by input index and merged back in input order, so the output
//! is identical to a sequential map regardless of scheduling.

use crossbeam::deque::{Steal, Stealer, Worker};

/// Utilisation counters of one [`Executor::map`] run, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutorStats {
    /// Worker threads that ran.
    pub threads_used: usize,
    /// Tasks executed across all workers (= input length).
    pub tasks_executed: usize,
    /// Tasks a worker stole from another worker's deque.
    pub tasks_stolen: usize,
}

/// A scoped work-stealing executor over a fixed thread count.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor running at most `threads` workers (floored at 1).
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, returning results in input
    /// order together with utilisation stats.
    ///
    /// `f` receives `(index, &item)`. With one thread (or one item) this
    /// degenerates to a plain sequential map on the calling thread.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> (Vec<R>, ExecutorStats)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let threads = self.threads.min(n.max(1));
        if threads <= 1 {
            let results = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
            return (
                results,
                ExecutorStats {
                    threads_used: 1,
                    tasks_executed: n,
                    tasks_stolen: 0,
                },
            );
        }

        let workers: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        for i in 0..n {
            workers[i % threads].push(i);
        }
        let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();

        let f = &f;
        let stealers = &stealers;
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut stats = ExecutorStats {
            threads_used: threads,
            tasks_executed: 0,
            tasks_stolen: 0,
        };
        std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .into_iter()
                .enumerate()
                .map(|(wid, local)| {
                    scope.spawn(move || {
                        let mut out: Vec<(usize, R)> = Vec::new();
                        let mut stolen = 0usize;
                        loop {
                            let task = local.pop().or_else(|| {
                                for k in 1..stealers.len() {
                                    let victim = &stealers[(wid + k) % stealers.len()];
                                    if let Steal::Success(t) = victim.steal() {
                                        stolen += 1;
                                        return Some(t);
                                    }
                                }
                                None
                            });
                            let Some(i) = task else { break };
                            out.push((i, f(i, &items[i])));
                        }
                        (out, stolen)
                    })
                })
                .collect();
            for h in handles {
                let (out, stolen) = h.join().expect("executor worker panicked");
                stats.tasks_executed += out.len();
                stats.tasks_stolen += stolen;
                for (i, r) in out {
                    slots[i] = Some(r);
                }
            }
        });
        let results = slots
            .into_iter()
            .map(|r| r.expect("every task produces exactly one result"))
            .collect();
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..500).collect();
        for threads in [1, 2, 4, 8] {
            let (out, stats) = Executor::new(threads).map(&items, |i, &v| {
                assert_eq!(i, v);
                v * 2
            });
            assert_eq!(out, items.iter().map(|v| v * 2).collect::<Vec<_>>());
            assert_eq!(stats.tasks_executed, items.len());
            assert_eq!(stats.threads_used, threads.min(items.len()));
        }
    }

    #[test]
    fn single_thread_runs_on_caller() {
        let caller = std::thread::current().id();
        let items = [1, 2, 3];
        let (_, stats) = Executor::new(1).map(&items, |_, _| {
            assert_eq!(std::thread::current().id(), caller);
        });
        assert_eq!(stats.threads_used, 1);
        assert_eq!(stats.tasks_stolen, 0);
    }

    #[test]
    fn uneven_work_is_stolen() {
        // One pathological item 100× slower than the rest: with fixed
        // chunking its whole chunk would lag; stealing redistributes it.
        let items: Vec<u64> = (0..64)
            .map(|i| if i == 0 { 2_000_000 } else { 20_000 })
            .collect();
        let ran = AtomicUsize::new(0);
        let (out, stats) = Executor::new(4).map(&items, |_, &spins| {
            ran.fetch_add(1, Ordering::Relaxed);
            let mut acc = 0u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
            spins
        });
        assert_eq!(ran.load(Ordering::Relaxed), 64);
        assert_eq!(out, items);
        assert_eq!(stats.tasks_executed, 64);
        assert_eq!(stats.threads_used, 4);
    }

    #[test]
    fn empty_input() {
        let items: [u8; 0] = [];
        let (out, stats) = Executor::new(4).map(&items, |_, &v| v);
        assert!(out.is_empty());
        assert_eq!(stats.tasks_executed, 0);
    }

    #[test]
    fn results_match_sequential_for_any_thread_count() {
        let items: Vec<i64> = (0..97).map(|i| i * 31 % 17).collect();
        let (seq, _) = Executor::new(1).map(&items, |i, &v| v * v + i as i64);
        for threads in [2, 3, 5, 16] {
            let (par, _) = Executor::new(threads).map(&items, |i, &v| v * v + i as i64);
            assert_eq!(seq, par, "threads = {threads}");
        }
    }
}
