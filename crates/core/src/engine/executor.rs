//! Work-stealing task executor for the pipeline's parallel stages.
//!
//! Replaces the former fixed-chunk `std::thread::scope` fan-out: items are
//! dealt round-robin onto per-worker deques, and an idle worker steals from
//! its neighbours, so a long-running item (a large SVM training, a dense
//! clip) no longer stalls the whole chunk it happened to land in. Results
//! are keyed by input index and merged back in input order, so the output
//! is identical to a sequential map regardless of scheduling.
//!
//! # Panic isolation
//!
//! Task bodies run under [`std::panic::catch_unwind`], so a panicking task
//! becomes a typed [`TaskFailure`] in that task's result slot instead of
//! poisoning the pool or aborting the process: the remaining work is
//! drained normally and every other task still produces its result
//! ([`Executor::try_map`]). The infallible [`Executor::map`] front-end
//! resumes the first recorded panic on the *calling* thread — after the
//! pool has fully drained — so legacy callers keep panic-on-failure
//! semantics without the double-panic abort hazard the old
//! `join().expect(...)` drain had.

use super::stage::StageId;
use crate::cancel::{CancelPanic, CancelToken};
use crate::obs::{Counter, ObsEvent, ObsHub, StageCounter};
use crossbeam::deque::{Steal, Stealer, Worker};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// Utilisation counters of one [`Executor::map`] run, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutorStats {
    /// Worker threads that ran.
    pub threads_used: usize,
    /// Tasks executed across all workers (= input length minus skips).
    pub tasks_executed: usize,
    /// Tasks a worker stole from another worker's deque.
    pub tasks_stolen: usize,
    /// Tasks whose body panicked (caught and surfaced as [`TaskFailure`]).
    pub tasks_failed: usize,
    /// Tasks declined because the run's [`CancelToken`] tripped — never
    /// started, or unwound cooperatively mid-body. Always 0 without a
    /// token.
    pub tasks_skipped: usize,
}

/// Outcome of one task under
/// [`Executor::try_map_with_cancel`]: completed, failed (panicked), or
/// skipped because cancellation was observed before/while it ran.
#[derive(Debug)]
pub enum TaskResult<R> {
    /// The task body returned normally.
    Done(R),
    /// The task body panicked; the unwind was caught at the task boundary.
    Failed(TaskFailure),
    /// The run was cancelled before this task produced a result. Skipped
    /// tasks are not failures: they were never attempted (or cooperatively
    /// abandoned) and simply remain to be done by a resumed run.
    Skipped,
}

/// A task body that panicked, caught at the task boundary.
///
/// The shape the paper's long-running full-chip scans need: one poisoned
/// clip or tile is quarantined as data, the process survives, and the
/// caller decides the policy ([`crate::scan::FailurePolicy`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFailure {
    /// Label of the pipeline stage the task ran in (a canonical
    /// [`super::StageId`] name, or a caller-chosen label like `scan_tile`).
    pub stage: String,
    /// Index of the failed item in the executor's input slice.
    pub index: usize,
    /// The panic payload rendered to a string (`&str` / `String` payloads
    /// verbatim, anything else a placeholder).
    pub payload: String,
}

impl std::fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task {} panicked in stage `{}`: {}",
            self.index, self.stage, self.payload
        )
    }
}

impl std::error::Error for TaskFailure {}

/// Renders a caught panic payload as a string. The cooperative
/// [`TimeoutPanic`](crate::cancel::TimeoutPanic) marker renders its
/// deterministic reason so timed-out failures never carry wall-clock text.
pub(crate) fn panic_payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(t) = payload.downcast_ref::<crate::cancel::TimeoutPanic>() {
        t.reason()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A scoped work-stealing executor over a fixed thread count.
#[derive(Debug, Clone)]
pub struct Executor {
    threads: usize,
    obs: Option<Arc<ObsHub>>,
}

impl Executor {
    /// An executor running at most `threads` workers (floored at 1).
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
            obs: None,
        }
    }

    /// Attaches an observability hub: every subsequent stage run emits
    /// span-style [`ObsEvent::StageBegin`]/[`ObsEvent::StageEnd`] events
    /// and each worker records completed tasks into the hub's lock-free
    /// counters. Without a hub every instrumentation point is one branch.
    pub fn with_obs(mut self, hub: Arc<ObsHub>) -> Self {
        self.obs = Some(hub);
        self
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, returning results in input
    /// order together with utilisation stats.
    ///
    /// `f` receives `(index, &item)`. With one thread (or one item) this
    /// degenerates to a plain sequential map on the calling thread.
    ///
    /// # Panics
    ///
    /// If a task body panics, the pool still drains every remaining task;
    /// the first panic (in input order) is then resumed on the calling
    /// thread. Callers that want failures as data use
    /// [`try_map`](Self::try_map).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> (Vec<R>, ExecutorStats)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let (results, stats) = self.try_map("unlabelled", items, f);
        let results = results
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(failure) => std::panic::resume_unwind(Box::new(failure.payload)),
            })
            .collect();
        (results, stats)
    }

    /// [`map`](Self::map) with panic isolation: each task body runs under
    /// `catch_unwind`, and a panicking task yields
    /// `Err(`[`TaskFailure`]`)` in its input-order slot while every other
    /// task completes normally. `stage` labels failures for diagnostics.
    ///
    /// The closure is wrapped in [`AssertUnwindSafe`]: a failed task's
    /// result is discarded, and pipeline task bodies only share read-only
    /// state (`&self`, immutable inputs) plus atomics, so a caught unwind
    /// cannot expose torn data to surviving tasks.
    pub fn try_map<T, R, F>(
        &self,
        stage: &str,
        items: &[T],
        f: F,
    ) -> (Vec<Result<R, TaskFailure>>, ExecutorStats)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let (results, stats) = self.try_map_with_cancel(stage, items, f, None);
        let results = results
            .into_iter()
            .enumerate()
            .map(|(i, r)| match r {
                TaskResult::Done(v) => Ok(v),
                TaskResult::Failed(failure) => Err(failure),
                // Unreachable without a token; keep it a typed failure
                // rather than a panic, matching the dead-worker path.
                TaskResult::Skipped => Err(TaskFailure {
                    stage: stage.to_string(),
                    index: i,
                    payload: "task skipped without a cancel token".to_string(),
                }),
            })
            .collect();
        (results, stats)
    }

    /// [`try_map`](Self::try_map) with cooperative cancellation: each
    /// worker polls `cancel` before popping its next task, and a tripped
    /// token makes every not-yet-started task come back as
    /// [`TaskResult::Skipped`] while tasks already running finish (or
    /// unwind cooperatively — a body that panics with the crate's internal
    /// cancellation marker is also reported as skipped, not failed). The
    /// in-flight window therefore *drains*; nothing is abandoned half
    /// journaled.
    pub fn try_map_with_cancel<T, R, F>(
        &self,
        stage: &str,
        items: &[T],
        f: F,
        cancel: Option<&CancelToken>,
    ) -> (Vec<TaskResult<R>>, ExecutorStats)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let obs = self.obs.as_deref();
        let stage_id = StageId::from_name(stage);
        if let Some(hub) = obs {
            hub.emit(|| ObsEvent::StageBegin {
                stage: stage.to_string(),
                items: n,
            });
        }
        let run = |i: usize| -> TaskResult<R> {
            // One relaxed load per task boundary: the whole cost of
            // cancellation support on an uncancelled run.
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return TaskResult::Skipped;
            }
            let result = match std::panic::catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                Ok(v) => TaskResult::Done(v),
                Err(payload) if payload.downcast_ref::<CancelPanic>().is_some() => {
                    TaskResult::Skipped
                }
                Err(payload) => TaskResult::Failed(TaskFailure {
                    stage: stage.to_string(),
                    index: i,
                    payload: panic_payload_to_string(payload.as_ref()),
                }),
            };
            // Per-worker hot-path recording: relaxed atomic adds on the
            // calling worker's counter shard, no allocation.
            if let Some(hub) = obs {
                if !matches!(result, TaskResult::Skipped) {
                    let counters = hub.counters();
                    counters.add(Counter::ExecutorTasks, 1);
                    if let Some(id) = stage_id {
                        counters.add_stage(id, StageCounter::Tasks, 1);
                        if matches!(result, TaskResult::Failed(_)) {
                            counters.add_stage(id, StageCounter::Failures, 1);
                        }
                    }
                }
            }
            result
        };

        let threads = self.threads.min(n.max(1));
        if threads <= 1 {
            let results: Vec<TaskResult<R>> = (0..n).map(run).collect();
            let mut stats = ExecutorStats {
                threads_used: 1,
                ..ExecutorStats::default()
            };
            for r in &results {
                match r {
                    TaskResult::Done(_) => stats.tasks_executed += 1,
                    TaskResult::Failed(_) => {
                        stats.tasks_executed += 1;
                        stats.tasks_failed += 1;
                    }
                    TaskResult::Skipped => stats.tasks_skipped += 1,
                }
            }
            if let Some(hub) = obs {
                let failures = stats.tasks_failed;
                hub.emit(|| ObsEvent::StageEnd {
                    stage: stage.to_string(),
                    items: n,
                    failures,
                });
            }
            return (results, stats);
        }

        let workers: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        for i in 0..n {
            workers[i % threads].push(i);
        }
        let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();

        let run = &run;
        let stealers = &stealers;
        let mut slots: Vec<Option<TaskResult<R>>> = (0..n).map(|_| None).collect();
        let mut stats = ExecutorStats {
            threads_used: threads,
            ..ExecutorStats::default()
        };
        std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .into_iter()
                .enumerate()
                .map(|(wid, local)| {
                    scope.spawn(move || {
                        let mut out: Vec<(usize, TaskResult<R>)> = Vec::new();
                        let mut stolen = 0usize;
                        loop {
                            let task = local.pop().or_else(|| {
                                for k in 1..stealers.len() {
                                    let victim = &stealers[(wid + k) % stealers.len()];
                                    if let Steal::Success(t) = victim.steal() {
                                        stolen += 1;
                                        return Some(t);
                                    }
                                }
                                None
                            });
                            let Some(i) = task else { break };
                            out.push((i, run(i)));
                        }
                        (out, stolen)
                    })
                })
                .collect();
            for h in handles {
                // `run` catches every unwind inside the worker, so a join
                // error means the worker thread itself died — record it as
                // data rather than panicking mid-drain (the old
                // `expect(...)` here could turn one failure into an
                // abort-on-double-unwind).
                match h.join() {
                    Ok((out, stolen)) => {
                        stats.tasks_stolen += stolen;
                        for (i, r) in out {
                            match &r {
                                TaskResult::Done(_) => stats.tasks_executed += 1,
                                TaskResult::Failed(_) => {
                                    stats.tasks_executed += 1;
                                    stats.tasks_failed += 1;
                                }
                                TaskResult::Skipped => stats.tasks_skipped += 1,
                            }
                            slots[i] = Some(r);
                        }
                    }
                    Err(payload) => {
                        // Leave this worker's slots empty; they are filled
                        // with a typed failure below.
                        let _ = payload;
                    }
                }
            }
        });
        let results: Vec<TaskResult<R>> = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot {
                Some(r) => r,
                // A task that never produced a result (its worker died):
                // surface as a failure instead of the old unreachable
                // `expect`.
                None => {
                    stats.tasks_failed += 1;
                    TaskResult::Failed(TaskFailure {
                        stage: stage.to_string(),
                        index: i,
                        payload: "executor worker thread died before task completion".to_string(),
                    })
                }
            })
            .collect();
        if let Some(hub) = obs {
            hub.emit(|| ObsEvent::StageEnd {
                stage: stage.to_string(),
                items: n,
                failures: stats.tasks_failed,
            });
        }
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..500).collect();
        for threads in [1, 2, 4, 8] {
            let (out, stats) = Executor::new(threads).map(&items, |i, &v| {
                assert_eq!(i, v);
                v * 2
            });
            assert_eq!(out, items.iter().map(|v| v * 2).collect::<Vec<_>>());
            assert_eq!(stats.tasks_executed, items.len());
            assert_eq!(stats.threads_used, threads.min(items.len()));
            assert_eq!(stats.tasks_failed, 0);
        }
    }

    #[test]
    fn single_thread_runs_on_caller() {
        let caller = std::thread::current().id();
        let items = [1, 2, 3];
        let (_, stats) = Executor::new(1).map(&items, |_, _| {
            assert_eq!(std::thread::current().id(), caller);
        });
        assert_eq!(stats.threads_used, 1);
        assert_eq!(stats.tasks_stolen, 0);
    }

    #[test]
    fn uneven_work_is_stolen() {
        // One pathological item 100× slower than the rest: with fixed
        // chunking its whole chunk would lag; stealing redistributes it.
        let items: Vec<u64> = (0..64)
            .map(|i| if i == 0 { 2_000_000 } else { 20_000 })
            .collect();
        let ran = AtomicUsize::new(0);
        let (out, stats) = Executor::new(4).map(&items, |_, &spins| {
            ran.fetch_add(1, Ordering::Relaxed);
            let mut acc = 0u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
            spins
        });
        assert_eq!(ran.load(Ordering::Relaxed), 64);
        assert_eq!(out, items);
        assert_eq!(stats.tasks_executed, 64);
        assert_eq!(stats.threads_used, 4);
    }

    #[test]
    fn empty_input() {
        let items: [u8; 0] = [];
        let (out, stats) = Executor::new(4).map(&items, |_, &v| v);
        assert!(out.is_empty());
        assert_eq!(stats.tasks_executed, 0);
    }

    #[test]
    fn results_match_sequential_for_any_thread_count() {
        let items: Vec<i64> = (0..97).map(|i| i * 31 % 17).collect();
        let (seq, _) = Executor::new(1).map(&items, |i, &v| v * v + i as i64);
        for threads in [2, 3, 5, 16] {
            let (par, _) = Executor::new(threads).map(&items, |i, &v| v * v + i as i64);
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn try_map_isolates_panics_and_drains_the_rest() {
        let items: Vec<usize> = (0..200).collect();
        for threads in [1, 2, 4] {
            let (out, stats) = Executor::new(threads).try_map("unit", &items, |_, &v| {
                if v % 17 == 3 {
                    panic!("injected fault at item {v}");
                }
                v * 2
            });
            assert_eq!(out.len(), items.len());
            let expected_failures = items.iter().filter(|v| *v % 17 == 3).count();
            assert_eq!(stats.tasks_failed, expected_failures, "threads={threads}");
            assert_eq!(stats.tasks_executed, items.len());
            for (i, r) in out.iter().enumerate() {
                if i % 17 == 3 {
                    let failure = r.as_ref().unwrap_err();
                    assert_eq!(failure.index, i);
                    assert_eq!(failure.stage, "unit");
                    assert!(failure.payload.contains("injected fault"), "{failure}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn try_map_failures_are_deterministic_across_thread_counts() {
        let items: Vec<usize> = (0..120).collect();
        let run = |threads: usize| -> Vec<usize> {
            let (out, _) = Executor::new(threads).try_map("unit", &items, |_, &v| {
                if v % 13 == 7 {
                    panic!("boom {v}");
                }
                v
            });
            out.iter()
                .enumerate()
                .filter(|(_, r)| r.is_err())
                .map(|(i, _)| i)
                .collect()
        };
        let baseline = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), baseline, "threads={threads}");
        }
    }

    #[test]
    fn map_resumes_first_panic_after_draining() {
        let completed = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Executor::new(4).map(&items, |_, &v| {
                if v == 10 {
                    panic!("poisoned item");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                v
            })
        }));
        assert!(result.is_err(), "map must propagate the panic");
        // Panic isolation drained every other task before resuming.
        assert_eq!(completed.load(Ordering::Relaxed), items.len() - 1);
    }

    #[test]
    fn obs_hub_sees_spans_and_per_worker_task_counters() {
        use crate::obs::{ObsRecord, ObsSink};
        use parking_lot::Mutex;

        #[derive(Default)]
        struct Capture(Mutex<Vec<ObsRecord>>);
        impl ObsSink for Capture {
            fn name(&self) -> &str {
                "capture"
            }
            fn on_event(&self, record: &ObsRecord) {
                self.0.lock().push(record.clone());
            }
        }

        let hub = ObsHub::new();
        let sink = Arc::new(Capture::default());
        struct Fwd(Arc<Capture>);
        impl ObsSink for Fwd {
            fn name(&self) -> &str {
                "capture"
            }
            fn on_event(&self, record: &ObsRecord) {
                self.0.on_event(record);
            }
        }
        hub.register(Box::new(Fwd(Arc::clone(&sink))));

        let items: Vec<usize> = (0..50).collect();
        let (out, stats) = Executor::new(4).with_obs(Arc::clone(&hub)).try_map(
            "kernel_evaluation",
            &items,
            |_, &v| {
                if v == 7 {
                    panic!("boom");
                }
                v
            },
        );
        assert_eq!(out.len(), 50);
        assert_eq!(stats.tasks_failed, 1);

        let events = sink.0.lock();
        assert!(matches!(
            &events[0].event,
            ObsEvent::StageBegin { stage, items: 50 } if stage == "kernel_evaluation"
        ));
        assert!(matches!(
            &events[events.len() - 1].event,
            ObsEvent::StageEnd { stage, items: 50, failures: 1 } if stage == "kernel_evaluation"
        ));
        let snap = hub.snapshot();
        assert_eq!(snap.executor_tasks, 50);
        let eval = snap
            .stages
            .iter()
            .find(|s| s.stage == "kernel_evaluation")
            .unwrap();
        assert_eq!(eval.tasks, 50);
        assert_eq!(eval.failures, 1);
    }

    #[test]
    fn pre_cancelled_run_skips_every_task() {
        use crate::cancel::CancelToken;
        let token = CancelToken::new();
        token.cancel();
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 4] {
            let (out, stats) = Executor::new(threads).try_map_with_cancel(
                "unit",
                &items,
                |_, &v| v * 2,
                Some(&token),
            );
            assert!(out.iter().all(|r| matches!(r, TaskResult::Skipped)));
            assert_eq!(stats.tasks_skipped, items.len(), "threads={threads}");
            assert_eq!(stats.tasks_executed, 0);
            assert_eq!(stats.tasks_failed, 0);
        }
    }

    #[test]
    fn mid_run_cancellation_skips_the_tail_and_drains() {
        use crate::cancel::CancelToken;
        let token = CancelToken::new();
        let items: Vec<usize> = (0..256).collect();
        let fired = AtomicUsize::new(0);
        let (out, stats) = Executor::new(4).try_map_with_cancel(
            "unit",
            &items,
            |_, _| {
                if fired.fetch_add(1, Ordering::Relaxed) == 20 {
                    token.cancel();
                }
            },
            Some(&token),
        );
        assert_eq!(out.len(), items.len());
        let done = out
            .iter()
            .filter(|r| matches!(r, TaskResult::Done(())))
            .count();
        let skipped = out
            .iter()
            .filter(|r| matches!(r, TaskResult::Skipped))
            .count();
        assert_eq!(done + skipped, items.len());
        assert!(skipped > 0, "cancellation must skip the tail");
        assert_eq!(stats.tasks_executed, done);
        assert_eq!(stats.tasks_skipped, skipped);
    }

    #[test]
    fn cooperative_cancel_panic_reports_as_skipped() {
        use crate::cancel::CancelPanic;
        let items: Vec<usize> = (0..8).collect();
        let (out, stats) = Executor::new(2).try_map_with_cancel(
            "unit",
            &items,
            |_, &v| {
                if v == 3 {
                    std::panic::panic_any(CancelPanic);
                }
                v
            },
            None,
        );
        assert!(matches!(out[3], TaskResult::Skipped));
        assert_eq!(stats.tasks_skipped, 1);
        assert_eq!(stats.tasks_failed, 0);
        assert_eq!(stats.tasks_executed, items.len() - 1);
    }

    #[test]
    fn task_failure_displays_context() {
        let f = TaskFailure {
            stage: "kernel_evaluation".into(),
            index: 7,
            payload: "boom".into(),
        };
        let msg = f.to_string();
        assert!(msg.contains("kernel_evaluation"), "{msg}");
        assert!(msg.contains('7'), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }
}
