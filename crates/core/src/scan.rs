//! Streaming full-layout scan with density prefiltering (§IV-E) and
//! fault tolerance.
//!
//! [`HotspotDetector::detect`] materialises every candidate clip of the
//! layout before classifying — fine for benchmark clips, prohibitive for a
//! production-scale layout. [`HotspotDetector::scan_layout`] instead walks
//! the layout as overlapping tiles (a
//! [`TileScanner`]), discards tiles
//! whose pattern density cannot pass the extraction filter (the *density
//! prefilter*, a new [`StageId::DensityPrefilter`] pipeline stage), and
//! fans the surviving tiles over the work-stealing executor while holding
//! at most [`ScanConfig::max_in_flight`] tiles in memory at once.
//!
//! The default prefilter is **conservative**: a tile is skipped only when
//! the summed pattern area overlapping its window is below
//! `min_core_density × core_area`, an upper bound on the core density of
//! every clip the tile owns — so the scan reports *exactly* the hotspot
//! set of [`HotspotDetector::detect`] (see `tests/scan.rs`). Setting
//! [`ScanConfig::tile_density`] adds an aggressive mean-coverage cut that
//! trades recall for speed, as the paper's density filter does.
//!
//! # Fault tolerance
//!
//! A production scan runs for hours, so the scan is the pipeline's
//! fault-tolerance boundary:
//!
//! - tile tasks run under the executor's panic isolation — a panicking
//!   tile is retried once on the caller thread, then handled per
//!   [`ScanConfig::failure_policy`]: [`FailurePolicy::Abort`] surfaces a
//!   typed [`DetectError::TaskPanicked`], while
//!   [`FailurePolicy::SkipAndRecord`] quarantines the tile into
//!   [`ScanReport::failed_tiles`] and scans on;
//! - [`ScanConfig::journal`] appends every completed tile to a durable
//!   checkpoint journal ([`crate::journal`]), and
//!   [`ScanConfig::resume_from`] replays it so a killed scan restarts
//!   where it left off, with a report whose deterministic content
//!   ([`ScanReport::digest`]) is bit-identical to an uninterrupted run;
//! - [`ScanConfig::fault_plan`] arms the deterministic fault-injection
//!   harness that proves all of the above under test.
//!
//! # Deadlines and cooperative cancellation
//!
//! Long scans can also be *stopped* without losing their progress:
//!
//! - [`ScanConfig::deadline`] bounds the scan's wall-clock budget — when
//!   it expires, the scan stops admitting tiles at the next batch
//!   boundary, drains the in-flight window, syncs the journal and cache,
//!   and returns a partial report marked
//!   [`ScanReport::aborted`](ScanReport::aborted) with
//!   [`AbortReason::DeadlineExceeded`];
//! - [`ScanConfig::cancel`] is an external [`CancelToken`] (the CLI's
//!   SIGINT handler trips it) that aborts the same way with
//!   [`AbortReason::Interrupted`];
//! - [`ScanConfig::tile_timeout`] arms a soft per-tile budget, polled
//!   cooperatively at stage boundaries and per evaluated clip — a tile
//!   that blows it is retried once and then quarantined as
//!   [`FailureKind::TimedOut`], with a deterministic reason so the
//!   quarantine list stays digest-stable across machines.
//!
//! Because the abort points sit at batch boundaries and the journal is
//! fsync'd per batch, an aborted scan's journal contains only whole-tile
//! records; resuming it via [`ScanConfig::resume_from`] completes the scan
//! with a digest bit-identical to an uninterrupted run.
//!
//! # Example
//!
//! ```
//! use hotspot_core::{HotspotDetector, Label, Pattern, ScanConfig, TrainingSet};
//! use hotspot_geom::{Point, Rect};
//! use hotspot_layout::{ClipShape, LayerId, Layout};
//!
//! // A toy training set: narrow-gap bar pairs are hotspots.
//! let clip = |gap: i64| {
//!     let window = ClipShape::ICCAD2012.window_from_core_corner(Point::new(0, 0));
//!     let rects = [
//!         Rect::from_extents(0, 0, 300, 300),
//!         Rect::from_extents(300 + gap, 0, 600 + gap, 300),
//!     ];
//!     Pattern::new(window, &rects)
//! };
//! let mut training = TrainingSet::new();
//! for i in 0..4 {
//!     training.push(clip(60 + 10 * i), Label::Hotspot);
//! }
//! for i in 0..8 {
//!     training.push(clip(480 + 10 * i), Label::NonHotspot);
//! }
//! let config = HotspotDetector::builder()
//!     .threads(2)
//!     .max_learning_rounds(2)
//!     .distribution(hotspot_core::DistributionFilter {
//!         min_core_density: 0.001,
//!         min_polygon_count: 1,
//!         max_boundary_bbox_distance: 4800,
//!     })
//!     .build()?;
//! let detector = HotspotDetector::train(&training, config)?;
//!
//! // Plant the hotspot motif in a layout and stream-scan it.
//! let mut layout = Layout::new("chip");
//! layout.add_rect(LayerId::METAL1, Rect::from_extents(20_000, 20_000, 20_300, 20_300));
//! layout.add_rect(LayerId::METAL1, Rect::from_extents(20_370, 20_000, 20_670, 20_300));
//! let scan = ScanConfig { tile_cores: 4, max_in_flight: 2, ..Default::default() };
//! let report = detector.scan_layout(&layout, LayerId::METAL1, &scan)?;
//!
//! // Identical hotspot set to whole-layout detection, bounded memory.
//! let whole = detector.detect(&layout, LayerId::METAL1)?;
//! assert_eq!(report.reported, whole.reported);
//! assert!(report.peak_in_flight <= 2);
//! # Ok::<(), hotspot_core::DetectError>(())
//! ```

use crate::cancel::{AbortReason, CancelPanic, CancelToken, TimeoutPanic};
use crate::config::DetectorConfig;
use crate::detector::{DetectError, HotspotDetector};
use crate::engine::executor::panic_payload_to_string;
use crate::engine::{
    Executor, ExecutorStats, FaultPlan, FaultSite, PipelineTelemetry, StageId, StageRecorder,
    TaskFailure, TaskResult,
};
use crate::extraction::{passes_filter, split_oversized_into, RectIndex};
use crate::feedback::EvalScratch;
use crate::journal::{read_journal, JournalHeader, JournalWriter, TileOutcomeRecord, TileRecord};
use crate::obs::{Counter, ObsEvent, ObsHub};
use crate::pattern::Pattern;
use crate::removal::remove_redundant_clips;
use crate::tile_cache::{self, CacheHeader, TileCache};
use hotspot_geom::{AreaTable, RasterMode};
use hotspot_geom::{Point, Rect};
use hotspot_layout::scan::{Tile, TileScanner, TileSpec};
use hotspot_layout::{ClipWindow, LayerId, Layout};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Subtile pitch of the Sat rasteriser's per-tile [`hotspot_geom::AreaTableGrid`], in
/// core sides. Table build cost is quadratic in the rects per subtile, so
/// a pitch of a few cores keeps boundary crossings local while the padded
/// windows (one core side of +x/+y padding) stay small relative to the
/// pitch. Public so the benchmark's rasterisation micro-phase measures
/// exactly the production decomposition.
pub const RASTER_SUBTILE_CORES: i64 = 4;

/// What a scan does when a tile task fails (panics on both attempts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FailurePolicy {
    /// Fail the scan with [`DetectError::TaskPanicked`] on the first tile
    /// whose retry also fails (the default — no silent data loss).
    #[default]
    Abort,
    /// Quarantine the failed tile into [`ScanReport::failed_tiles`] and
    /// keep scanning — degraded mode for long production runs.
    SkipAndRecord {
        /// Fail the scan with [`DetectError::TooManyFailures`] once more
        /// than this many tiles are quarantined.
        max_failed_tiles: usize,
    },
}

/// How a quarantined tile failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FailureKind {
    /// Both attempts panicked — the only kind before soft budgets existed,
    /// and the serde default so older reports deserialise unchanged.
    #[default]
    Panicked,
    /// Both attempts exceeded the soft per-tile budget
    /// ([`ScanConfig::tile_timeout`]).
    TimedOut,
}

/// A tile that failed both attempts and was skipped under
/// [`FailurePolicy::SkipAndRecord`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedTile {
    /// Stable tile id (`iy × grid_cols + ix`), thread-count-invariant.
    pub tile: usize,
    /// Whether the tile panicked or blew its soft time budget. Content,
    /// not provenance — included in the digest. Absent in pre-timeout
    /// reports, which deserialise as [`FailureKind::Panicked`].
    #[serde(default)]
    pub kind: FailureKind,
    /// The panic payload of the failing attempt (for
    /// [`FailureKind::TimedOut`], a deterministic budget message that
    /// never includes measured wall time).
    pub reason: String,
}

/// Configuration of a streaming layout scan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanConfig {
    /// Tile region side length in core sides (the tile stride is
    /// `tile_cores × core_side`). Must be at least 1.
    pub tile_cores: usize,
    /// Maximum tiles held in flight at once — the scan's memory bound.
    /// `0` resolves to twice the worker-thread count.
    pub max_in_flight: usize,
    /// Optional aggressive prefilter: skip tiles whose mean pattern
    /// coverage (overlapping pattern area / tile window area) is below this
    /// fraction. Unlike the default conservative prefilter this may drop
    /// true hotspots; `None` keeps the scan exactly equivalent to
    /// [`HotspotDetector::detect`].
    pub tile_density: Option<f64>,
    /// What to do when a tile fails both its attempt and its retry.
    #[serde(default)]
    pub failure_policy: FailurePolicy,
    /// Checkpoint journal to append completed tiles to (fsync'd once per
    /// in-flight batch). `None` disables journaling.
    #[serde(default)]
    pub journal: Option<PathBuf>,
    /// Journal of an earlier (killed) scan to resume from: its completed
    /// tiles are replayed instead of recomputed. Usually the same path as
    /// [`journal`](Self::journal), so the resumed scan keeps appending to
    /// the same file.
    #[serde(default)]
    pub resume_from: Option<PathBuf>,
    /// Deterministic fault-injection plan, for the fault-tolerance tests
    /// and the CI smoke. The default (empty) plan injects nothing and
    /// costs nothing.
    #[serde(default)]
    pub fault_plan: FaultPlan,
    /// Content-addressed tile result cache ([`crate::tile_cache`]): tiles
    /// whose content fingerprint matches a stored entry replay their cached
    /// outcome instead of recomputing, and the store is rewritten with this
    /// scan's results on completion. `None` disables caching.
    #[serde(default)]
    pub cache: Option<PathBuf>,
    /// Paranoid cache mode: hits are *also* recomputed and the stored
    /// outcome is asserted byte-equal to the fresh one — any disagreement
    /// fails the scan with [`DetectError::Cache`]. Costs a full recompute;
    /// for debugging and CI only.
    #[serde(default)]
    pub cache_verify: bool,
    /// Global wall-clock budget. When it expires the scan stops admitting
    /// tiles at the next batch boundary, drains the in-flight window,
    /// syncs the journal and cache, and returns a partial report marked
    /// [`ScanReport::aborted`] with [`AbortReason::DeadlineExceeded`] —
    /// resumable via [`resume_from`](Self::resume_from). `None` (the
    /// default) scans to completion. A zero deadline is valid and aborts
    /// before the first batch.
    #[serde(default)]
    pub deadline: Option<Duration>,
    /// Soft per-tile wall-clock budget, polled cooperatively at every
    /// stage boundary and per evaluated clip. A tile that blows it panics
    /// with a deterministic timeout marker, is retried once like any other
    /// failure, and is then handled per
    /// [`failure_policy`](Self::failure_policy) as
    /// [`FailureKind::TimedOut`]. `None` disables the budget; zero is
    /// rejected by [`validate`](Self::validate).
    #[serde(default)]
    pub tile_timeout: Option<Duration>,
    /// External cooperative stop: when this token is cancelled (the CLI's
    /// SIGINT handler trips it) the scan aborts at the next batch boundary
    /// with [`AbortReason::Interrupted`]. Never serialised — deserialised
    /// configs carry no token.
    #[serde(skip)]
    pub cancel: Option<CancelToken>,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            tile_cores: 16,
            max_in_flight: 0,
            tile_density: None,
            failure_policy: FailurePolicy::Abort,
            journal: None,
            resume_from: None,
            fault_plan: FaultPlan::default(),
            cache: None,
            cache_verify: false,
            deadline: None,
            tile_timeout: None,
            cancel: None,
        }
    }
}

impl ScanConfig {
    /// Validates the scan settings.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.tile_cores == 0 {
            return Err("tile_cores must be at least 1".into());
        }
        if let Some(d) = self.tile_density {
            if !d.is_finite() || d <= 0.0 {
                return Err(format!("tile_density must be positive and finite, got {d}"));
            }
        }
        if self.cache_verify && self.cache.is_none() {
            return Err("cache_verify requires a cache path".into());
        }
        if self.tile_timeout.is_some_and(|t| t.is_zero()) {
            return Err("tile_timeout must be positive when set".into());
        }
        self.fault_plan.validate()
    }

    /// The in-flight window after resolving `0` against `threads`.
    pub fn effective_in_flight(&self, threads: usize) -> usize {
        if self.max_in_flight == 0 {
            (threads * 2).max(1)
        } else {
            self.max_in_flight
        }
    }
}

/// Outcome of a streaming layout scan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanReport {
    /// The reported hotspot clips (after removal, when enabled) — the same
    /// set [`HotspotDetector::detect`] reports when the aggressive
    /// [`ScanConfig::tile_density`] cut is off.
    pub reported: Vec<ClipWindow>,
    /// Tiles in the scan grid, including empty ones.
    pub tiles_total: usize,
    /// Non-empty tiles examined.
    pub tiles_scanned: usize,
    /// Tiles discarded by the density prefilter.
    pub tiles_prefiltered: usize,
    /// Candidate clips extracted from surviving tiles.
    pub clips_extracted: usize,
    /// Clips flagged hotspot by the multiple kernels.
    pub clips_flagged: usize,
    /// Flags reclaimed to nonhotspot by the feedback kernel.
    pub feedback_reclaimed: usize,
    /// Clip batches scheduled through the batched SVM inference engine —
    /// one per tile that evaluated at least one clip. Absent in
    /// pre-batching reports, which deserialise with 0.
    #[serde(default)]
    pub eval_batches: usize,
    /// Tiles quarantined under [`FailurePolicy::SkipAndRecord`] — both
    /// attempts panicked. Empty on a healthy scan (and in pre-v4 reports,
    /// which deserialise empty).
    #[serde(default)]
    pub failed_tiles: Vec<QuarantinedTile>,
    /// Failed tile tasks that were re-attempted once before quarantine.
    /// Absent in pre-v4 reports, which deserialise with 0.
    #[serde(default)]
    pub retries: usize,
    /// Tiles replayed from [`ScanConfig::resume_from`] instead of
    /// recomputed. Absent in pre-v4 reports, which deserialise with 0.
    #[serde(default)]
    pub resumed_tiles: usize,
    /// Tiles replayed from the [`ScanConfig::cache`] by content
    /// fingerprint. Provenance, not content — excluded from the digest.
    /// Absent in pre-cache reports, which deserialise with 0.
    #[serde(default)]
    pub cache_hits: usize,
    /// Tiles the cache could not serve (new, edited, or lost to
    /// corruption) — always 0 when caching is off. Provenance, not
    /// content. Absent in pre-cache reports, which deserialise with 0.
    #[serde(default)]
    pub cache_misses: usize,
    /// Why the scan stopped early — [`ScanConfig::deadline`] expiry or an
    /// external [`ScanConfig::cancel`] trip — or `None` when it ran to
    /// completion. Provenance, not content: excluded from the digest, so
    /// an aborted scan resumed to completion digests identically to an
    /// uninterrupted run. Absent in pre-deadline reports, which
    /// deserialise as `None`.
    #[serde(default)]
    pub aborted: Option<AbortReason>,
    /// Most tiles simultaneously in flight — never exceeds the configured
    /// window ([`ScanConfig::effective_in_flight`]).
    pub peak_in_flight: usize,
    /// Per-stage telemetry of the scan (phase `"scan"`). Stage wall times
    /// are summed across workers, so they can exceed the phase wall time.
    pub telemetry: PipelineTelemetry,
    /// Total wall-clock time of the scan.
    #[serde(skip)]
    pub scan_time: Duration,
}

impl ScanReport {
    /// Clips classified per second of scan wall time.
    pub fn clips_per_second(&self) -> f64 {
        let secs = self.scan_time.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.clips_extracted as f64 / secs
    }

    /// Canonical JSON digest of the report's *deterministic* content: the
    /// reported clips, every tile/clip/flag count, and the quarantine
    /// list. Wall-clock and scheduling artefacts (telemetry, scan time,
    /// `peak_in_flight`), the resume/retry/cache provenance counters, and
    /// the [`aborted`](Self::aborted) marker are excluded — so a
    /// killed-and-resumed scan and a warm cached re-scan both digest
    /// byte-identically to an uninterrupted cold run, which
    /// `tests/fault_tolerance.rs`, `tests/deadlines.rs`, and
    /// `tests/tile_cache.rs` pin.
    pub fn digest(&self) -> String {
        #[derive(Serialize)]
        struct Digest {
            reported: Vec<ClipWindow>,
            tiles_total: usize,
            tiles_scanned: usize,
            tiles_prefiltered: usize,
            clips_extracted: usize,
            clips_flagged: usize,
            feedback_reclaimed: usize,
            eval_batches: usize,
            failed_tiles: Vec<QuarantinedTile>,
        }
        serde_json::to_string(&Digest {
            reported: self.reported.clone(),
            tiles_total: self.tiles_total,
            tiles_scanned: self.tiles_scanned,
            tiles_prefiltered: self.tiles_prefiltered,
            clips_extracted: self.clips_extracted,
            clips_flagged: self.clips_flagged,
            feedback_reclaimed: self.feedback_reclaimed,
            eval_batches: self.eval_batches,
            failed_tiles: self.failed_tiles.clone(),
        })
        .expect("scan digest serialises")
    }
}

/// Everything one tile contributes, gathered on a worker thread.
struct TileOutcome {
    prefiltered: bool,
    clips: usize,
    flagged: usize,
    reclaimed: usize,
    flagged_cores: Vec<Rect>,
    /// Clip-kernel pairs admitted to SVM evaluation on this tile.
    admissions: u64,
    /// Centroid-orientation rows the admission router pruned on this tile.
    admission_skips: u64,
    prefilter_time: Duration,
    extract_time: Duration,
    eval_time: Duration,
}

impl TileOutcome {
    /// The canonical journal record of this outcome (wall times are
    /// provenance, not content, and are not journaled).
    fn to_record(&self) -> TileOutcomeRecord {
        if self.prefiltered {
            TileOutcomeRecord::Prefiltered
        } else {
            TileOutcomeRecord::Evaluated {
                clips: self.clips,
                flagged: self.flagged,
                reclaimed: self.reclaimed,
                flagged_cores: self.flagged_cores.clone(),
            }
        }
    }

    /// Rebuilds the outcome a journaled tile contributed, with zero wall
    /// time and zero admission counters (the work already happened in the
    /// journaled run; the counters are provenance, not content).
    fn from_record(record: &TileOutcomeRecord) -> TileOutcome {
        let mut outcome = TileOutcome {
            prefiltered: false,
            clips: 0,
            flagged: 0,
            reclaimed: 0,
            flagged_cores: Vec::new(),
            admissions: 0,
            admission_skips: 0,
            prefilter_time: Duration::ZERO,
            extract_time: Duration::ZERO,
            eval_time: Duration::ZERO,
        };
        match record {
            TileOutcomeRecord::Prefiltered => outcome.prefiltered = true,
            TileOutcomeRecord::Evaluated {
                clips,
                flagged,
                reclaimed,
                flagged_cores,
            } => {
                outcome.clips = *clips;
                outcome.flagged = *flagged;
                outcome.reclaimed = *reclaimed;
                outcome.flagged_cores = flagged_cores.clone();
            }
        }
        outcome
    }
}

/// Decrements the in-flight counter on drop, so the count stays balanced
/// even when a tile task unwinds out of an injected panic.
struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The scan watchdog: a low-duty background thread armed whenever a
/// deadline, a soft tile budget, or an external cancel token is
/// configured. Each tick it forwards the external token and an expired
/// deadline into the scan's internal trip token (one flag stops the
/// executor, the tile bodies, and the admission loop together), refreshes
/// the `hotspot_deadline_remaining_seconds` gauge, and periodically emits
/// an [`ObsEvent::WatchdogTick`] heartbeat. Joined on drop, so it can
/// never outlive the scan that armed it.
struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Tick period: coarse enough to cost nothing, fine enough that an
    /// expired deadline stops tile admission within one batch boundary.
    const TICK: Duration = Duration::from_millis(20);
    /// A heartbeat event is emitted every `HEARTBEAT`-th tick.
    const HEARTBEAT: u32 = 10;

    fn spawn(
        trip: CancelToken,
        external: Option<CancelToken>,
        deadline_at: Option<Instant>,
        in_flight: Arc<AtomicUsize>,
        obs: Option<Arc<ObsHub>>,
    ) -> std::io::Result<Watchdog> {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("scan-watchdog".into())
            .spawn(move || {
                let mut ticks = 0u32;
                while !stop_flag.load(Ordering::SeqCst) {
                    if external.as_ref().is_some_and(CancelToken::is_cancelled) {
                        trip.cancel();
                    }
                    let mut remaining_ms = None;
                    if let Some(at) = deadline_at {
                        let now = Instant::now();
                        if now >= at {
                            trip.cancel();
                        }
                        let remaining = at.saturating_duration_since(now).as_millis() as u64;
                        remaining_ms = Some(remaining);
                        if let Some(hub) = &obs {
                            hub.set_deadline_remaining_ms(remaining);
                        }
                    }
                    ticks += 1;
                    if ticks.is_multiple_of(Self::HEARTBEAT) {
                        if let Some(hub) = &obs {
                            hub.emit(|| ObsEvent::WatchdogTick {
                                in_flight: in_flight.load(Ordering::SeqCst) as u64,
                                deadline_remaining_ms: remaining_ms,
                            });
                        }
                    }
                    std::thread::park_timeout(Self::TICK);
                }
            })?;
        Ok(Watchdog {
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

/// Per-worker scratch reused across tiles, like [`EvalScratch`] but for
/// the whole of `process_tile`: the split-piece buffer, the anchor-dedup
/// set, the extracted patterns, and the evaluation scratch itself. Buffers
/// grow to their high-water marks once and are cleared — not freed — at
/// the start of every tile, so outcomes never depend on what ran before.
#[derive(Default)]
struct TileScratch {
    eval: EvalScratch,
    pieces: Vec<Rect>,
    seen: HashSet<Point>,
    patterns: Vec<Pattern>,
    /// Clip core windows of the current tile, collected for the
    /// anchor-aware subtile table build.
    windows: Vec<Rect>,
}

thread_local! {
    /// One [`TileScratch`] per worker thread. Thread-local rather than
    /// task-local because the executor closure is shared by every worker;
    /// a panicking tile releases the borrow on unwind, so the sequential
    /// retry reuses the same (cleared) scratch safely.
    static TILE_SCRATCH: RefCell<TileScratch> = RefCell::new(TileScratch::default());
}

impl HotspotDetector {
    /// Streams a full layout through the evaluation pipeline tile by tile
    /// (§IV-E): density prefilter → clip extraction → multiple-kernel
    /// evaluation, with redundant clip removal over the accumulated flags.
    ///
    /// Memory is bounded by the in-flight tile window; results are
    /// deterministic and — with the aggressive cut off — identical to
    /// [`HotspotDetector::detect`] on the same layout. Tile panics are
    /// isolated, retried once, and then handled per
    /// [`ScanConfig::failure_policy`]; see the [module docs](crate::scan)
    /// for the journal/resume machinery.
    ///
    /// # Examples
    ///
    /// Scan a layout with live observability attached — counters stream to
    /// any registered sink, while the report stays bit-identical to an
    /// unobserved run:
    ///
    /// ```
    /// use hotspot_core::{HotspotDetector, Label, ObsHub, Pattern, ScanConfig, TrainingSet};
    /// use hotspot_geom::{Point, Rect};
    /// use hotspot_layout::{ClipShape, LayerId, Layout};
    ///
    /// let clip = |gap: i64| {
    ///     let window = ClipShape::ICCAD2012.window_from_core_corner(Point::new(0, 0));
    ///     let rects = [
    ///         Rect::from_extents(0, 0, 300, 300),
    ///         Rect::from_extents(300 + gap, 0, 600 + gap, 300),
    ///     ];
    ///     Pattern::new(window, &rects)
    /// };
    /// let mut training = TrainingSet::new();
    /// for i in 0..4 {
    ///     training.push(clip(60 + 10 * i), Label::Hotspot);
    /// }
    /// for i in 0..8 {
    ///     training.push(clip(480 + 10 * i), Label::NonHotspot);
    /// }
    /// let config = HotspotDetector::builder().max_learning_rounds(2).build()?;
    /// let hub = ObsHub::new();
    /// let detector = HotspotDetector::train(&training, config)?.with_obs(hub.clone());
    ///
    /// let mut layout = Layout::new("chip");
    /// layout.add_rect(LayerId::METAL1, Rect::from_extents(0, 0, 300, 300));
    /// layout.add_rect(LayerId::METAL1, Rect::from_extents(370, 0, 670, 300));
    /// let report = detector.scan_layout(&layout, LayerId::METAL1, &ScanConfig::default())?;
    ///
    /// let snapshot = hub.snapshot();
    /// assert_eq!(snapshot.clips_extracted, report.clips_extracted as u64);
    /// # Ok::<(), hotspot_core::DetectError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::Config`] for invalid scan settings,
    /// [`DetectError::EmptyLayer`] when the layout has no polygons on
    /// `layer`, [`DetectError::Journal`] for journal I/O or fingerprint
    /// mismatches, [`DetectError::TaskPanicked`] under
    /// [`FailurePolicy::Abort`], and [`DetectError::TooManyFailures`] when
    /// the quarantine bound is exceeded.
    pub fn scan_layout(
        &self,
        layout: &Layout,
        layer: LayerId,
        scan: &ScanConfig,
    ) -> Result<ScanReport, DetectError> {
        self.scan_layout_with_threshold(layout, layer, scan, self.config().decision_threshold)
    }

    /// [`scan_layout`](Self::scan_layout) with an explicit decision
    /// threshold (for the Fig. 15 trade-off sweep).
    ///
    /// # Errors
    ///
    /// Same as [`scan_layout`](Self::scan_layout).
    pub fn scan_layout_with_threshold(
        &self,
        layout: &Layout,
        layer: LayerId,
        scan: &ScanConfig,
        threshold: f64,
    ) -> Result<ScanReport, DetectError> {
        scan.validate().map_err(DetectError::Config)?;
        if layout.polygons(layer).is_empty() {
            return Err(DetectError::EmptyLayer(layer));
        }
        let config = self.config();
        let shape = config.clip_shape;
        let threads = config.effective_threads().max(1);
        let window_cap = scan.effective_in_flight(threads);
        let started = Instant::now();
        let mut recorder = StageRecorder::new("scan", threads);

        // The global rectangle index: patterns are built from the same
        // index queries `detect` issues, so clip features are bit-identical
        // between the two paths.
        let index = RectIndex::from_layout(layout, layer, shape.clip_side());
        let spec = TileSpec::new(
            shape.core_side() * scan.tile_cores as i64,
            shape.ambit() + shape.core_side(),
        )
        .map_err(|e| DetectError::Config(e.to_string()))?;
        let mut scanner = TileScanner::from_rects(index.rects().to_vec(), spec);
        let tiles_total = scanner.grid().tile_count();
        let grid_cols = scanner.grid().cols();
        let obs = self.obs();
        if let Some(hub) = obs {
            hub.emit(|| ObsEvent::ScanStarted {
                tiles_total,
                threads,
                window: window_cap,
            });
        }

        // Resume: replay the valid prefix of an earlier journal, and open
        // the journal writer (appending in place when resuming the same
        // file, creating afresh otherwise).
        let header = JournalHeader::new(tiles_total, scan.tile_cores, layer, threshold);
        let mut replayed: HashMap<usize, TileOutcomeRecord> = HashMap::new();
        let mut journal_writer: Option<JournalWriter> = None;
        if let Some(resume_path) = &scan.resume_from {
            let contents = read_journal(resume_path)
                .map_err(|e| DetectError::Journal(format!("{}: {e}", resume_path.display())))?;
            if contents.header != header {
                return Err(DetectError::Journal(format!(
                    "{}: journal belongs to a different scan (grid, layer, or threshold differ)",
                    resume_path.display()
                )));
            }
            if scan.journal.as_deref() == Some(resume_path.as_path()) {
                let writer = JournalWriter::resume(resume_path, contents.valid_len)
                    .map_err(|e| DetectError::Journal(format!("{}: {e}", resume_path.display())))?;
                journal_writer = Some(writer);
            }
            replayed = contents.records;
        }
        if journal_writer.is_none() {
            if let Some(journal_path) = &scan.journal {
                let mut writer = JournalWriter::create(journal_path, &header).map_err(|e| {
                    DetectError::Journal(format!("{}: {e}", journal_path.display()))
                })?;
                // Carry replayed tiles into the fresh journal so it stays a
                // complete record of the scan. Replays bypass injection.
                let mut ids: Vec<usize> = replayed.keys().copied().collect();
                ids.sort_unstable();
                let no_faults = FaultPlan::default();
                for id in ids {
                    let record = TileRecord {
                        tile: id,
                        outcome: replayed[&id].clone(),
                    };
                    writer.append(&record, &no_faults).map_err(|e| {
                        DetectError::Journal(format!("{}: {e}", journal_path.display()))
                    })?;
                }
                writer.sync().map_err(|e| {
                    DetectError::Journal(format!("{}: {e}", journal_path.display()))
                })?;
                journal_writer = Some(writer);
            }
        }

        if let (Some(writer), Some(hub)) = (journal_writer.as_mut(), obs) {
            writer.set_obs(Arc::clone(hub));
        }

        // Content-addressed tile result cache: open (never fails — a
        // corrupt or mismatched store is discarded, not trusted) and look
        // tiles up by content fingerprint as they stream past.
        let mut cache: Option<TileCache> = None;
        if let Some(cache_path) = &scan.cache {
            let cache_header = CacheHeader::new(
                self.model_fingerprint(),
                scan.tile_cores,
                layer,
                threshold,
                scan.tile_density,
            );
            let opened = TileCache::open(cache_path, cache_header);
            if let Some(hub) = obs {
                let stats = opened.load_stats();
                if stats.discarded || stats.rejected > 0 {
                    hub.counters().add(
                        Counter::CacheInvalidated,
                        if stats.discarded {
                            1
                        } else {
                            stats.rejected as u64
                        },
                    );
                    hub.emit(|| ObsEvent::CacheInvalidated {
                        entries: if stats.discarded { 0 } else { stats.loaded },
                        rejected: stats.rejected,
                        discarded: stats.discarded,
                    });
                }
            }
            cache = Some(opened);
        }
        let mut cache_hits_total = 0usize;
        let mut cache_misses_total = 0usize;

        let mut executor = Executor::new(threads);
        if let Some(hub) = obs {
            executor = executor.with_obs(Arc::clone(hub));
        }
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = AtomicUsize::new(0);

        // Cooperative stop machinery. `trip` is the scan's internal token:
        // the executor polls it per task and `process_tile` polls it at
        // stage boundaries. The watchdog forwards the external token and
        // an expired deadline into it, so one flag stops everything; the
        // admission loop below re-derives the *reason* from the sources
        // directly (external cancel wins over the deadline).
        let deadline_at = scan.deadline.and_then(|d| started.checked_add(d));
        let trip = CancelToken::new();
        let mut aborted: Option<AbortReason> = None;
        let watchdog = if deadline_at.is_some()
            || scan.cancel.is_some()
            || scan.tile_timeout.is_some()
        {
            let guard = Watchdog::spawn(
                trip.clone(),
                scan.cancel.clone(),
                deadline_at,
                Arc::clone(&in_flight),
                obs.map(Arc::clone),
            )
            .map_err(|e| DetectError::Internal(format!("failed to spawn scan watchdog: {e}")))?;
            Some(guard)
        } else {
            None
        };

        let mut tiles_scanned = 0usize;
        let mut tiles_prefiltered = 0usize;
        let mut clips_extracted = 0usize;
        let mut clips_flagged = 0usize;
        let mut feedback_reclaimed = 0usize;
        let mut eval_batches = 0usize;
        let mut retries_total = 0usize;
        let mut resumed_total = 0usize;
        let mut failed_tiles: Vec<QuarantinedTile> = Vec::new();
        let mut flagged_cores: Vec<Rect> = Vec::new();

        loop {
            // Abort point: stop admitting tiles at the batch boundary when
            // the external token tripped or the deadline expired. The
            // journal already holds every completed batch (fsync'd below),
            // so everything up to here is resumable.
            if scan.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                aborted = Some(AbortReason::Interrupted);
            } else if deadline_at.is_some_and(|at| Instant::now() >= at) {
                aborted = Some(AbortReason::DeadlineExceeded);
            }
            if aborted.is_some() {
                break;
            }
            // Backpressure: pull at most one window's worth of tiles, fan
            // them out, then drain before pulling more.
            let batch: Vec<Tile> = scanner.by_ref().take(window_cap).collect();
            if batch.is_empty() {
                break;
            }

            // Partition the batch in order: journaled tiles replay, cached
            // tiles replay by content fingerprint, the rest run fresh.
            // Slots keep batch positions, so the final aggregation order —
            // and with it the report content — is the same as an
            // uninterrupted, uncached run's.
            let mut slots: Vec<Option<TileOutcome>> = Vec::with_capacity(batch.len());
            let mut fresh_tasks: Vec<(usize, usize)> = Vec::new(); // (batch pos, tile id)
                                                                   // Content fingerprints, parallel to `batch` (0 when uncached).
            let mut fingerprints: Vec<u64> = vec![0; batch.len()];
            // Verified hits: tile id → the stored outcome a fresh
            // recompute must reproduce under `cache_verify`.
            let mut verify_expected: HashMap<usize, TileOutcomeRecord> = HashMap::new();
            let mut batch_resumed = 0usize;
            let mut batch_hits = 0usize;
            let mut batch_misses = 0usize;
            let mut batch_stale = 0usize;
            for (pos, tile) in batch.iter().enumerate() {
                let id = (tile.iy * grid_cols + tile.ix) as usize;
                if let Some(record) = replayed.get(&id) {
                    // Journal replay wins over the cache: it is this very
                    // scan's own prior progress. Feed it back into the
                    // cache so resume and caching compose.
                    slots.push(Some(TileOutcome::from_record(record)));
                    batch_resumed += 1;
                    if let Some(c) = cache.as_mut() {
                        let fp = tile.content_fingerprint();
                        fingerprints[pos] = fp;
                        c.record(
                            id,
                            fp,
                            tile_cache::translate_record(record, -tile.window.min()),
                        );
                    }
                    continue;
                }
                if let Some(c) = cache.as_mut() {
                    let fp = tile.content_fingerprint();
                    fingerprints[pos] = fp;
                    if let Some(local) = c.lookup(id, fp).cloned() {
                        batch_hits += 1;
                        if let Some(hub) = obs {
                            hub.emit(|| ObsEvent::CacheHit { tile: id as u64 });
                        }
                        if scan.cache_verify {
                            // Paranoid mode: recompute the hit and compare.
                            verify_expected.insert(
                                id,
                                tile_cache::translate_record(&local, tile.window.min()),
                            );
                        } else {
                            let global = tile_cache::translate_record(&local, tile.window.min());
                            slots.push(Some(TileOutcome::from_record(&global)));
                            c.record(id, fp, local);
                            continue;
                        }
                    } else {
                        batch_misses += 1;
                        let stale = c.is_stale(id, fp);
                        batch_stale += stale as usize;
                        if let Some(hub) = obs {
                            hub.emit(|| ObsEvent::CacheMiss {
                                tile: id as u64,
                                invalidated: stale,
                            });
                        }
                    }
                }
                slots.push(None);
                fresh_tasks.push((pos, id));
            }
            resumed_total += batch_resumed;
            recorder.add_resumed_tiles(batch_resumed);
            cache_hits_total += batch_hits;
            cache_misses_total += batch_misses;
            recorder.add_cache_stats(batch_hits, batch_misses, fresh_tasks.len());

            let (results, stats) = if fresh_tasks.is_empty() {
                (
                    Vec::new(),
                    ExecutorStats {
                        threads_used: 0,
                        tasks_executed: 0,
                        tasks_stolen: 0,
                        tasks_failed: 0,
                        tasks_skipped: 0,
                    },
                )
            } else {
                executor.try_map_with_cancel(
                    "scan_tile",
                    &fresh_tasks,
                    |_, &(pos, id)| {
                        let current = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                        let _guard = InFlightGuard(&in_flight);
                        peak.fetch_max(current, Ordering::SeqCst);
                        // Worker-side progress: one relaxed add per transition,
                        // recorded into the worker's own counter shard.
                        if let Some(hub) = obs {
                            hub.counters().add(Counter::TilesStarted, 1);
                        }
                        let outcome = self.process_tile(
                            &batch[pos],
                            &index,
                            config,
                            scan,
                            threshold,
                            id,
                            0,
                            &trip,
                        );
                        if let Some(hub) = obs {
                            hub.counters().add(Counter::TilesDone, 1);
                        }
                        outcome
                    },
                    Some(&trip),
                )
            };

            // Retry failed tiles once, sequentially, then apply the
            // failure policy to any that fail again.
            let mut retry_failures = 0usize;
            let mut batch_retries = 0usize;
            let mut batch_timeouts = 0usize;
            let mut batch_quarantined = 0usize;
            for (result, &(pos, id)) in results.into_iter().zip(&fresh_tasks) {
                match result {
                    TaskResult::Done(outcome) => slots[pos] = Some(outcome),
                    // Skipped by the cooperative stop: the tile was never
                    // computed. Its slot stays empty — an aborted scan's
                    // journal simply lacks the record, and the resumed
                    // scan recomputes it.
                    TaskResult::Skipped => {}
                    TaskResult::Failed(failure) => {
                        if trip.is_cancelled() {
                            // The scan is stopping: don't burn wall time on
                            // a mid-abort retry. The tile is recomputed on
                            // resume instead.
                            continue;
                        }
                        batch_retries += 1;
                        if let Some(hub) = obs {
                            hub.counters().add(Counter::TaskRetries, 1);
                        }
                        let retry = catch_unwind(AssertUnwindSafe(|| {
                            self.process_tile(
                                &batch[pos],
                                &index,
                                config,
                                scan,
                                threshold,
                                id,
                                1,
                                &trip,
                            )
                        }));
                        match retry {
                            Ok(outcome) => {
                                if let Some(hub) = obs {
                                    hub.counters().add(Counter::TilesDone, 1);
                                }
                                slots[pos] = Some(outcome);
                            }
                            // The retry observed the cooperative stop
                            // mid-tile: an abort, not a failure. The slot
                            // stays empty for resume.
                            Err(payload) if payload.downcast_ref::<CancelPanic>().is_some() => {}
                            Err(payload) => {
                                retry_failures += 1;
                                let timed_out = payload.downcast_ref::<TimeoutPanic>().is_some();
                                let kind = if timed_out {
                                    FailureKind::TimedOut
                                } else {
                                    FailureKind::Panicked
                                };
                                if timed_out {
                                    batch_timeouts += 1;
                                }
                                let reason = panic_payload_to_string(payload.as_ref());
                                if let Some(hub) = obs {
                                    hub.counters().add(Counter::TilesQuarantined, 1);
                                    if timed_out {
                                        hub.counters().add(Counter::TilesTimedOut, 1);
                                        hub.emit(|| ObsEvent::TileTimedOut {
                                            tile: id as u64,
                                            budget_ms: scan
                                                .tile_timeout
                                                .map_or(0, |t| t.as_millis() as u64),
                                        });
                                    } else {
                                        hub.emit(|| ObsEvent::TileQuarantined {
                                            tile: id as u64,
                                            stage: failure.stage.clone(),
                                        });
                                    }
                                }
                                match scan.failure_policy {
                                    FailurePolicy::Abort => {
                                        return Err(DetectError::TaskPanicked(TaskFailure {
                                            stage: failure.stage,
                                            index: id,
                                            payload: reason,
                                        }));
                                    }
                                    FailurePolicy::SkipAndRecord { max_failed_tiles } => {
                                        batch_quarantined += 1;
                                        failed_tiles.push(QuarantinedTile {
                                            tile: id,
                                            kind,
                                            reason,
                                        });
                                        if failed_tiles.len() > max_failed_tiles {
                                            return Err(DetectError::TooManyFailures {
                                                failed: failed_tiles.len(),
                                                max: max_failed_tiles,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            retries_total += batch_retries;
            // Tiles actually processed this batch: replayed, cache-served,
            // freshly computed, or quarantined — but *not* those skipped by
            // a mid-batch abort, which the resumed scan will process. On an
            // uninterrupted scan this equals the batch length.
            tiles_scanned += slots.iter().filter(|s| s.is_some()).count() + batch_quarantined;

            // Paranoid cache verification: every hit was recomputed above;
            // the fresh outcome must reproduce the stored record exactly.
            if !verify_expected.is_empty() {
                for &(pos, id) in &fresh_tasks {
                    let (Some(outcome), Some(expected)) = (&slots[pos], verify_expected.get(&id))
                    else {
                        continue;
                    };
                    if &outcome.to_record() != expected {
                        return Err(DetectError::Cache(format!(
                            "cache_verify: tile {id} recompute disagrees with stored entry"
                        )));
                    }
                }
            }

            // Record this batch's fresh completions into the cache, keyed
            // by content fingerprint in tile-local coordinates. Quarantined
            // tiles left their slot empty and are never cached as
            // successes.
            if let Some(c) = cache.as_mut() {
                for &(pos, id) in &fresh_tasks {
                    if let Some(outcome) = &slots[pos] {
                        c.record(
                            id,
                            fingerprints[pos],
                            tile_cache::translate_record(
                                &outcome.to_record(),
                                -batch[pos].window.min(),
                            ),
                        );
                    }
                }
            }

            // Append this batch's fresh completions to the journal, then
            // make them durable in one fsync.
            if let Some(writer) = journal_writer.as_mut() {
                for &(pos, id) in &fresh_tasks {
                    if let Some(outcome) = &slots[pos] {
                        let record = TileRecord {
                            tile: id,
                            outcome: outcome.to_record(),
                        };
                        writer.append(&record, &scan.fault_plan).map_err(|e| {
                            DetectError::Journal(format!("append of tile {id} failed: {e}"))
                        })?;
                    }
                }
                writer
                    .sync()
                    .map_err(|e| DetectError::Journal(format!("journal sync failed: {e}")))?;
            }

            let outcomes: Vec<&TileOutcome> = slots.iter().flatten().collect();
            let survivors = outcomes.iter().filter(|o| !o.prefiltered).count();
            let prefiltered = outcomes.iter().filter(|o| o.prefiltered).count();
            let batch_clips: usize = outcomes.iter().map(|o| o.clips).sum();
            let batch_flagged: usize = outcomes.iter().map(|o| o.flagged).sum();
            // Each tile with clips to evaluate was one batch on its own
            // `BatchEvaluator` scratch.
            let batch_evals = outcomes.iter().filter(|o| o.clips > 0).count();
            recorder.record(
                StageId::DensityPrefilter,
                batch.len(),
                survivors,
                outcomes.iter().map(|o| o.prefilter_time).sum(),
                None,
            );
            recorder.record(
                StageId::ClipExtraction,
                survivors,
                batch_clips,
                outcomes.iter().map(|o| o.extract_time).sum(),
                None,
            );
            recorder.record_batched(
                StageId::KernelEvaluation,
                batch_clips,
                batch_flagged,
                outcomes.iter().map(|o| o.eval_time).sum(),
                Some(&stats),
                batch_evals,
            );
            let batch_admissions: u64 = outcomes.iter().map(|o| o.admissions).sum();
            let batch_admission_skips: u64 = outcomes.iter().map(|o| o.admission_skips).sum();
            recorder.record_admissions(
                StageId::KernelEvaluation,
                batch_admissions,
                batch_admission_skips,
            );
            // First-attempt failures came in through the executor stats;
            // fold in the sequential retries and their failures.
            if batch_retries > 0 {
                recorder.record_faults(StageId::KernelEvaluation, retry_failures, batch_retries);
            }
            if batch_timeouts > 0 {
                recorder.record_timeouts(StageId::KernelEvaluation, batch_timeouts);
            }
            tiles_prefiltered += prefiltered;
            clips_extracted += batch_clips;
            clips_flagged += batch_flagged;
            eval_batches += batch_evals;
            let mut batch_reclaimed = 0usize;
            for mut o in slots.into_iter().flatten() {
                batch_reclaimed += o.reclaimed;
                flagged_cores.append(&mut o.flagged_cores);
            }
            feedback_reclaimed += batch_reclaimed;
            if let Some(hub) = obs {
                let counters = hub.counters();
                // Replayed and cache-served tiles count as started+done so
                // live progress reaches 100% without recompute (verify-mode
                // hits ran fresh and were counted by their workers).
                let served = if scan.cache_verify { 0 } else { batch_hits };
                counters.add(Counter::TilesStarted, (batch_resumed + served) as u64);
                counters.add(Counter::TilesDone, (batch_resumed + served) as u64);
                counters.add(Counter::CacheHits, batch_hits as u64);
                counters.add(Counter::CacheMisses, batch_misses as u64);
                counters.add(Counter::CacheInvalidated, batch_stale as u64);
                counters.add(Counter::TilesPrefiltered, prefiltered as u64);
                counters.add(Counter::ClipsExtracted, batch_clips as u64);
                counters.add(Counter::ClipsFlagged, batch_flagged as u64);
                counters.add(Counter::ClipsReclaimed, batch_reclaimed as u64);
                counters.add(Counter::EvalBatches, batch_evals as u64);
                hub.emit(|| ObsEvent::BatchCompleted {
                    tiles: batch.len(),
                    clips: batch_clips,
                    flagged: batch_flagged,
                    admissions: batch_admissions,
                    admission_skips: batch_admission_skips,
                });
            }
        }

        let flagged_count = flagged_cores.len();
        let t_removal = Instant::now();
        let reported = if config.ablation.removal {
            remove_redundant_clips(flagged_cores, shape, &index, config)
        } else {
            flagged_cores
                .into_iter()
                .map(|core| ClipWindow {
                    core,
                    clip: core.inflate(shape.ambit()),
                })
                .collect()
        };
        recorder.record(
            StageId::ClipRemoval,
            flagged_count,
            reported.len(),
            t_removal.elapsed(),
            None,
        );

        // Rewrite the cache with this scan's results: only tiles recorded
        // this run survive, so entries for deleted tiles don't accumulate.
        // An aborted scan writes back too — partial progress is exactly
        // what the cache is for.
        if let Some(c) = &cache {
            let path = scan.cache.as_deref().ok_or_else(|| {
                DetectError::Internal("tile cache open without a configured cache path".into())
            })?;
            c.store().map_err(|e| {
                DetectError::Cache(format!("{}: write-back failed: {e}", path.display()))
            })?;
        }

        // Stop the watchdog before the terminal event, so no heartbeat can
        // trail a ScanAborted/ScanCompleted in the event stream.
        drop(watchdog);
        if let Some(reason) = aborted {
            recorder.set_aborted(reason.name());
        }
        if let Some(hub) = obs {
            hub.clear_deadline_remaining();
            match aborted {
                Some(reason) => hub.emit(|| ObsEvent::ScanAborted {
                    reason: reason.name().to_string(),
                    tiles_scanned,
                }),
                None => hub.emit(|| ObsEvent::ScanCompleted {
                    tiles_scanned,
                    reported: reported.len(),
                    quarantined: failed_tiles.len(),
                }),
            }
            recorder.set_obs_sinks(hub.sink_names());
        }
        Ok(ScanReport {
            reported,
            tiles_total,
            tiles_scanned,
            tiles_prefiltered,
            clips_extracted,
            clips_flagged,
            feedback_reclaimed,
            eval_batches,
            failed_tiles,
            retries: retries_total,
            resumed_tiles: resumed_total,
            cache_hits: cache_hits_total,
            cache_misses: cache_misses_total,
            aborted,
            peak_in_flight: peak.load(Ordering::SeqCst),
            telemetry: recorder.finish(),
            scan_time: started.elapsed(),
        })
    }

    /// Prefilters, extracts, and classifies the clips one tile owns.
    ///
    /// `tile_id` is the stable grid id and `attempt` the attempt number
    /// (0 = first, 1 = retry); both exist only to key the deterministic
    /// fault-injection hooks, which compile down to an `is_empty` check on
    /// production scans. `trip` is the scan's internal stop token, polled
    /// at stage boundaries together with the soft tile budget.
    #[allow(clippy::too_many_arguments)]
    fn process_tile(
        &self,
        tile: &Tile,
        index: &RectIndex,
        config: &DetectorConfig,
        scan: &ScanConfig,
        threshold: f64,
        tile_id: usize,
        attempt: u32,
        trip: &CancelToken,
    ) -> TileOutcome {
        TILE_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            self.process_tile_with(
                tile,
                index,
                config,
                scan,
                threshold,
                tile_id,
                attempt,
                trip,
                &mut scratch,
            )
        })
    }

    /// [`process_tile`](Self::process_tile) on explicit scratch.
    #[allow(clippy::too_many_arguments)]
    fn process_tile_with(
        &self,
        tile: &Tile,
        index: &RectIndex,
        config: &DetectorConfig,
        scan: &ScanConfig,
        threshold: f64,
        tile_id: usize,
        attempt: u32,
        trip: &CancelToken,
        scratch: &mut TileScratch,
    ) -> TileOutcome {
        let shape = config.clip_shape;
        let fault = &scan.fault_plan;
        let budget = scan.tile_timeout;
        let tile_started = Instant::now();
        // The cooperative stop/budget poll, called at every stage boundary
        // and per evaluated clip. Cancellation wins over the budget so an
        // aborting scan never mislabels in-flight tiles as timed out. Both
        // outcomes unwind with typed markers the executor and the retry
        // loop downcast; the timeout marker carries only the configured
        // budget — never the measured elapsed time — so quarantine reasons
        // (digest content) stay deterministic across machines, runs, and
        // thread counts. The panic releases the scratch borrow on unwind,
        // like any other tile panic.
        let checkpoint = || {
            if trip.is_cancelled() {
                panic_any(CancelPanic);
            }
            if let Some(b) = budget {
                if tile_started.elapsed() > b {
                    panic_any(TimeoutPanic {
                        budget_ms: b.as_millis() as u64,
                    });
                }
            }
        };
        let mut outcome = TileOutcome {
            prefiltered: false,
            clips: 0,
            flagged: 0,
            reclaimed: 0,
            flagged_cores: Vec::new(),
            admissions: 0,
            admission_skips: 0,
            prefilter_time: Duration::ZERO,
            extract_time: Duration::ZERO,
            eval_time: Duration::ZERO,
        };

        // Density prefilter. `covered` double-counts overlapping pattern
        // rectangles, so it upper-bounds the pattern area over any core the
        // tile owns: skipping only below `min_core_density × core_area`
        // can never drop a clip that extraction would keep.
        if !fault.is_empty() {
            fault.inject(FaultSite::Prefilter, tile_id, attempt);
        }
        checkpoint();
        let t0 = Instant::now();
        // Cleared up front (set again below for surviving Sat tiles) so
        // tables never leak from one tile into the next on this worker's
        // scratch.
        scratch.eval.clear_raster_tables();
        let covered: i64 = tile
            .rects
            .iter()
            .map(|r| r.overlap_area(&tile.window))
            .sum();
        let core_area = (shape.core_side() * shape.core_side()) as f64;
        let conservative_cut = (covered as f64) < config.distribution.min_core_density * core_area;
        let aggressive_cut = scan
            .tile_density
            .is_some_and(|min_cov| (covered as f64) < min_cov * tile.window.area() as f64);
        outcome.prefilter_time = t0.elapsed();
        if conservative_cut || aggressive_cut {
            outcome.prefiltered = true;
            return outcome;
        }

        // Clip extraction, restricted to the anchors this tile owns. Tile
        // regions partition the plane, so per-tile dedup over owned anchors
        // equals the global anchor dedup of `extract_clips_indexed`.
        if !fault.is_empty() {
            fault.inject(FaultSite::Extraction, tile_id, attempt);
        }
        checkpoint();
        let t1 = Instant::now();
        let TileScratch {
            eval,
            pieces,
            seen,
            patterns,
            windows,
        } = scratch;
        split_oversized_into(&tile.rects, shape.core_side(), pieces);
        seen.clear();
        patterns.clear();
        for piece in pieces.iter() {
            let anchor = piece.min();
            if !tile.region.contains_point(anchor) || !seen.insert(anchor) {
                continue;
            }
            let window = shape.window_from_core_corner(anchor);
            let pattern = Pattern::new(window, &index.query(&window.clip));
            if passes_filter(&pattern, &config.distribution) {
                patterns.push(pattern);
            }
        }
        outcome.clips = patterns.len();
        outcome.extract_time = t1.elapsed();

        // Multiple-kernel (and feedback) evaluation: the tile's clips form
        // one batch sharing the worker's `EvalScratch` buffers; only its
        // telemetry counters are reset per tile.
        if !fault.is_empty() {
            fault.inject(FaultSite::Evaluation, tile_id, attempt);
        }
        checkpoint();
        let t2 = Instant::now();
        // Under `RasterMode::Sat`, padded subtile summed-area tables over
        // the tile's dissected rects serve the whole eval loop: every owned
        // clip's core grid is rasterised from its subtile's table. Built
        // only for tiles the prefilter kept, after extraction, and only
        // for the subtiles the extracted clip windows anchor in. Subtiles
        // over the cell cap (or outside the anchored set) have no table and
        // their clips silently run the reference path — bit-identical
        // either way.
        if config.raster_mode == RasterMode::Sat && !patterns.is_empty() {
            windows.clear();
            windows.extend(patterns.iter().map(|p| p.window.core));
            eval.rebuild_raster_tables(
                &tile.region,
                shape.core_side() * RASTER_SUBTILE_CORES,
                shape.core_side(),
                &tile.rects,
                AreaTable::DEFAULT_MAX_CELLS,
                windows,
            );
        }
        let engine = self.eval_engine_with_threshold(threshold);
        eval.reset_counters();
        for pattern in patterns.iter() {
            checkpoint();
            let (flagged, reclaimed) = Self::flag_with_engine(&engine, pattern, eval);
            if flagged {
                outcome.flagged += 1;
                if reclaimed {
                    outcome.reclaimed += 1;
                } else {
                    outcome.flagged_cores.push(pattern.window.core);
                }
            }
        }
        outcome.admissions = eval.admissions();
        outcome.admission_skips = eval.admission_skips();
        outcome.eval_time = t2.elapsed();
        outcome
    }

    /// FNV-1a fingerprint of this trained model's evaluation identity —
    /// the kernels, the feedback kernel, and the full config minus the
    /// thread count (scans are thread-count-invariant). Any retrain or
    /// config change yields a new fingerprint and invalidates every tile
    /// cache built under the old one.
    fn model_fingerprint(&self) -> u64 {
        let kernels = serde_json::to_string(&self.kernels().to_vec()).expect("kernels serialise");
        let feedback = match self.feedback() {
            Some(f) => serde_json::to_string(f).expect("feedback kernel serialises"),
            None => "null".to_string(),
        };
        let mut config = self.config().clone();
        config.threads = 0;
        let config = serde_json::to_string(&config).expect("config serialises");
        tile_cache::model_fingerprint(&kernels, &feedback, &config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(ScanConfig::default().validate().is_ok());
        let bad = ScanConfig {
            tile_cores: 0,
            ..Default::default()
        };
        assert!(bad.validate().unwrap_err().contains("tile_cores"));
        for d in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            let bad = ScanConfig {
                tile_density: Some(d),
                ..Default::default()
            };
            assert!(bad.validate().is_err(), "tile_density {d}");
        }
        let bad_plan = ScanConfig {
            fault_plan: FaultPlan {
                panic_per_mille: 2000,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(bad_plan.validate().unwrap_err().contains("per_mille"));
        let bad_verify = ScanConfig {
            cache_verify: true,
            ..Default::default()
        };
        assert!(bad_verify.validate().unwrap_err().contains("cache_verify"));
        let ok_verify = ScanConfig {
            cache: Some(PathBuf::from("/tmp/cache")),
            cache_verify: true,
            ..Default::default()
        };
        assert!(ok_verify.validate().is_ok());
        let bad_timeout = ScanConfig {
            tile_timeout: Some(Duration::ZERO),
            ..Default::default()
        };
        assert!(bad_timeout.validate().unwrap_err().contains("tile_timeout"));
        // A zero deadline is a valid "abort before the first batch"; a
        // positive tile budget is a valid budget.
        let ok_deadline = ScanConfig {
            deadline: Some(Duration::ZERO),
            tile_timeout: Some(Duration::from_millis(100)),
            cancel: Some(CancelToken::new()),
            ..Default::default()
        };
        assert!(ok_deadline.validate().is_ok());
    }

    #[test]
    fn in_flight_window_resolution() {
        let auto = ScanConfig {
            max_in_flight: 0,
            ..Default::default()
        };
        assert_eq!(auto.effective_in_flight(4), 8);
        let fixed = ScanConfig {
            max_in_flight: 3,
            ..Default::default()
        };
        assert_eq!(fixed.effective_in_flight(4), 3);
    }

    #[test]
    fn legacy_scan_config_json_deserialises() {
        // A pre-fault-tolerance config: no policy, journal, or fault plan.
        let json = r#"{"tile_cores":8,"max_in_flight":4,"tile_density":null}"#;
        let config: ScanConfig = serde_json::from_str(json).unwrap();
        assert_eq!(config.failure_policy, FailurePolicy::Abort);
        assert!(config.journal.is_none() && config.resume_from.is_none());
        assert!(config.fault_plan.is_empty());
        assert!(config.deadline.is_none() && config.tile_timeout.is_none());
        assert!(config.cancel.is_none(), "tokens are never deserialised");
    }

    fn empty_report() -> ScanReport {
        ScanReport {
            reported: Vec::new(),
            tiles_total: 0,
            tiles_scanned: 0,
            tiles_prefiltered: 0,
            clips_extracted: 10,
            clips_flagged: 0,
            feedback_reclaimed: 0,
            eval_batches: 0,
            failed_tiles: Vec::new(),
            retries: 0,
            resumed_tiles: 0,
            cache_hits: 0,
            cache_misses: 0,
            aborted: None,
            peak_in_flight: 0,
            telemetry: PipelineTelemetry::default(),
            scan_time: Duration::ZERO,
        }
    }

    #[test]
    fn clips_per_second_handles_zero_time() {
        let report = empty_report();
        assert_eq!(report.clips_per_second(), 0.0);
        let timed = ScanReport {
            scan_time: Duration::from_secs(2),
            ..report
        };
        assert!((timed.clips_per_second() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn digest_ignores_provenance_but_not_content() {
        let base = empty_report();
        let provenance = ScanReport {
            retries: 3,
            resumed_tiles: 7,
            cache_hits: 11,
            cache_misses: 2,
            aborted: Some(AbortReason::DeadlineExceeded),
            peak_in_flight: 5,
            scan_time: Duration::from_secs(1),
            ..base.clone()
        };
        assert_eq!(base.digest(), provenance.digest());
        let content = ScanReport {
            clips_flagged: 1,
            ..base.clone()
        };
        assert_ne!(base.digest(), content.digest());
        let quarantined = ScanReport {
            failed_tiles: vec![QuarantinedTile {
                tile: 4,
                kind: FailureKind::Panicked,
                reason: "injected".into(),
            }],
            ..base.clone()
        };
        assert_ne!(base.digest(), quarantined.digest());
        // The failure *kind* is content too: a timed-out tile digests
        // differently from a panicked one.
        let timed_out = ScanReport {
            failed_tiles: vec![QuarantinedTile {
                tile: 4,
                kind: FailureKind::TimedOut,
                reason: "injected".into(),
            }],
            ..base.clone()
        };
        assert_ne!(quarantined.digest(), timed_out.digest());
    }

    #[test]
    fn legacy_quarantine_records_deserialise_as_panicked() {
        let json = r#"{"tile":9,"reason":"boom"}"#;
        let q: QuarantinedTile = serde_json::from_str(json).unwrap();
        assert_eq!(q.kind, FailureKind::Panicked);
        let json = serde_json::to_string(&QuarantinedTile {
            tile: 1,
            kind: FailureKind::TimedOut,
            reason: "slow".into(),
        })
        .unwrap();
        let back: QuarantinedTile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.kind, FailureKind::TimedOut);
    }
}
