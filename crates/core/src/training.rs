//! Topological classification of training patterns and multiple SVM-kernel
//! learning (Sections III-B and III-D, Fig. 9(a)).

use crate::config::DetectorConfig;
use crate::engine::{Executor, ExecutorStats};
use crate::pattern::Pattern;
use hotspot_geom::{DensityGrid, RasterMode, Rect};
use hotspot_svm::{Kernel, PlattScaler, SharedKernelCache, SvmModel, SvmTrainer, TrainError};
use hotspot_topo::{ClusterParams, CriticalFeatures, DensityClustering, TopoSignature};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which part of a clip drives classification and feature extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Region {
    /// The central core only (multiple-kernel training, Section III-B).
    Core,
    /// The full clip including the ambit (feedback kernel, Section III-D4).
    Clip,
}

impl Region {
    /// The window rectangle of `pattern` for this region.
    pub fn window(self, pattern: &Pattern) -> Rect {
        match self {
            Region::Core => pattern.window.core,
            Region::Clip => pattern.window.clip,
        }
    }

    /// The pattern rectangles clipped to this region.
    pub fn rects(self, pattern: &Pattern) -> Vec<Rect> {
        let w = self.window(pattern);
        pattern
            .rects
            .iter()
            .filter_map(|r| r.intersection(&w))
            .collect()
    }
}

/// One two-level topological cluster of patterns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternCluster {
    /// Indices into the classified pattern slice.
    pub members: Vec<usize>,
    /// Shared string-topology signature of the members.
    pub signature: TopoSignature,
    /// Mean density grid of the members (density-level centroid).
    pub centroid: DensityGrid,
    /// Density radius used by the sub-clustering (eq. (2)).
    pub radius: f64,
    /// Index (into the pattern slice) of the medoid member.
    pub medoid: usize,
}

/// Two-level topological classification (Section III-B): string-based
/// grouping by [`TopoSignature`], then density-based sub-clustering with the
/// eq. (1)/(2) machinery.
pub fn classify_patterns(
    patterns: &[Pattern],
    region: Region,
    params: &ClusterParams,
) -> Vec<PatternCluster> {
    classify_patterns_mode(patterns, region, params, RasterMode::default())
}

/// [`classify_patterns`] with an explicit [`RasterMode`] for density-grid
/// construction. Modes are bit-identical for disjoint rects, so the cluster
/// structure never depends on the choice.
pub fn classify_patterns_mode(
    patterns: &[Pattern],
    region: Region,
    params: &ClusterParams,
    mode: RasterMode,
) -> Vec<PatternCluster> {
    // Level 1: group by canonical string signature.
    let mut groups: HashMap<TopoSignature, Vec<usize>> = HashMap::new();
    for (i, p) in patterns.iter().enumerate() {
        let sig = TopoSignature::of(&region.window(p), &region.rects(p));
        groups.entry(sig).or_default().push(i);
    }
    // Deterministic order regardless of hash iteration.
    let mut groups: Vec<(TopoSignature, Vec<usize>)> = groups.into_iter().collect();
    groups.sort_by(|a, b| a.0.cmp(&b.0));

    // Level 2: density-based sub-clustering inside each group.
    let mut clusters = Vec::new();
    for (signature, members) in groups {
        let member_patterns: Vec<Vec<Rect>> = members
            .iter()
            .map(|&i| normalized_rects(&patterns[i], region))
            .collect();
        let window = normalized_window(&patterns[members[0]], region);
        let dc = DensityClustering::run_with_mode(&window, &member_patterns, params, mode);
        for cluster in &dc.clusters {
            let global: Vec<usize> = cluster.members.iter().map(|&m| members[m]).collect();
            let medoid_local = cluster.medoid(&dc.grids);
            clusters.push(PatternCluster {
                members: global.clone(),
                signature: signature.clone(),
                centroid: cluster.centroid.clone(),
                radius: dc.radius,
                medoid: members[medoid_local],
            });
        }
    }
    clusters
}

/// Region rects translated to a window anchored at the origin, so patterns
/// from different absolute positions compare correctly.
fn normalized_rects(pattern: &Pattern, region: Region) -> Vec<Rect> {
    let w = region.window(pattern);
    region
        .rects(pattern)
        .iter()
        .map(|r| r.translate(-w.min()))
        .collect()
}

fn normalized_window(pattern: &Pattern, region: Region) -> Rect {
    let w = region.window(pattern);
    Rect::from_extents(0, 0, w.width(), w.height())
}

/// Canonical-orientation critical-feature vector of one pattern region.
///
/// The pattern is aligned by the canonical orientation of its topology
/// signature, so all members of one cluster land in a common frame.
pub fn feature_vector(pattern: &Pattern, region: Region, config: &DetectorConfig) -> Vec<f64> {
    let window = normalized_window(pattern, region);
    let rects = normalized_rects(pattern, region);
    let (_, orientation) = TopoSignature::with_orientation(&window, &rects);
    CriticalFeatures::extract_oriented(&window, &rects, orientation, &config.feature).to_vector()
}

/// Canonical-orientation features padded/truncated to `len` values.
pub fn feature_vector_padded(
    pattern: &Pattern,
    region: Region,
    config: &DetectorConfig,
    len: usize,
) -> Vec<f64> {
    let window = normalized_window(pattern, region);
    let rects = normalized_rects(pattern, region);
    let (_, orientation) = TopoSignature::with_orientation(&window, &rects);
    CriticalFeatures::extract_oriented(&window, &rects, orientation, &config.feature)
        .to_vector_padded(len)
}

/// Lazily extracted, per-length-memoized feature vectors of one pattern
/// region.
///
/// Orientation and critical-feature extraction are the expensive half of
/// clip evaluation, so a clip admitted by several kernels must pay them
/// once, not once per kernel (as [`flagging_kernels`] originally did).
/// Padding to each kernel's `feature_len` is cheap and cached by length,
/// so kernels sharing a feature length share one padded vector.
///
/// [`flagging_kernels`]: crate::feedback::flagging_kernels
pub struct FeatureMemo<'a> {
    pattern: &'a Pattern,
    region: Region,
    config: &'a DetectorConfig,
    features: Option<CriticalFeatures>,
    padded: Vec<(usize, Vec<f64>)>,
}

impl<'a> FeatureMemo<'a> {
    /// A memo that extracts nothing until the first [`padded`](Self::padded)
    /// request.
    pub fn new(pattern: &'a Pattern, region: Region, config: &'a DetectorConfig) -> Self {
        FeatureMemo {
            pattern,
            region,
            config,
            features: None,
            padded: Vec::new(),
        }
    }

    /// The feature vector padded/truncated to `len` — bit-identical to
    /// [`feature_vector_padded`], with extraction done on first use and the
    /// padded vector shared across kernels requesting the same length.
    pub fn padded(&mut self, len: usize) -> &[f64] {
        if let Some(i) = self.padded.iter().position(|(l, _)| *l == len) {
            return &self.padded[i].1;
        }
        let features = self.features.get_or_insert_with(|| {
            let window = normalized_window(self.pattern, self.region);
            let rects = normalized_rects(self.pattern, self.region);
            let (_, orientation) = TopoSignature::with_orientation(&window, &rects);
            CriticalFeatures::extract_oriented(&window, &rects, orientation, &self.config.feature)
        });
        self.padded.push((len, features.to_vector_padded(len)));
        &self.padded.last().expect("just pushed").1
    }
}

/// Density grid of a pattern region at the configured resolution (used for
/// routing evaluation clips to kernels), rasterised via the configured
/// [`RasterMode`].
pub fn density_grid(pattern: &Pattern, region: Region, config: &DetectorConfig) -> DensityGrid {
    let window = normalized_window(pattern, region);
    let rects = normalized_rects(pattern, region);
    DensityGrid::from_rects_mode(
        &window,
        &rects,
        config.cluster.grid,
        config.cluster.grid,
        config.raster_mode,
    )
}

/// Core-region topology signature and density grid of one pattern — the
/// admission precomputation shared by the scan eval loop and the
/// classification entry points of the multilayer and double-patterning
/// detectors. Keeping grid construction behind this one helper (which
/// routes through [`DensityGrid::from_rects_mode`]) gives raster-mode
/// selection a single seam.
pub fn core_signature_and_grid(
    pattern: &Pattern,
    config: &DetectorConfig,
) -> (TopoSignature, DensityGrid) {
    let window = normalized_window(pattern, Region::Core);
    let rects = normalized_rects(pattern, Region::Core);
    let signature = TopoSignature::of(&window, &rects);
    let grid = DensityGrid::from_rects_mode(
        &window,
        &rects,
        config.cluster.grid,
        config.cluster.grid,
        config.raster_mode,
    );
    (signature, grid)
}

/// Result of the iterative `(C, γ)` self-training loop.
#[derive(Debug, Clone, PartialEq)]
pub struct IterativeFit {
    /// The trained model of the final round.
    pub model: SvmModel,
    /// Round whose model was kept (1 = the initial parameters sufficed).
    pub rounds: usize,
    /// Total self-training rounds attempted before stopping.
    pub rounds_attempted: usize,
    /// Final penalty value.
    pub c: f64,
    /// Final RBF width.
    pub gamma: f64,
    /// Training accuracy of the final round.
    pub training_accuracy: f64,
}

/// Iterative learning (Section III-D2): train, self-evaluate on the
/// training data, and double `C` and `γ` until the accuracy target or the
/// round bound is reached.
///
/// # Errors
///
/// Propagates [`TrainError`] from the underlying SVM trainer.
pub fn train_iterative(
    x: &[Vec<f64>],
    y: &[f64],
    config: &DetectorConfig,
) -> Result<IterativeFit, TrainError> {
    let shared = SharedKernelCache::new(x.len());
    train_iterative_with(x, y, config, &shared, 1)
}

/// The `(C, γ)` parameters of 1-based `round`: each round doubles both,
/// starting from the configured initial values. Doubling is exact in f64,
/// so recomputing from the round number matches sequential accumulation
/// bit for bit.
fn round_params(config: &DetectorConfig, round: usize) -> (f64, f64) {
    let scale = 2f64.powi(round as i32 - 1);
    (config.initial_c * scale, config.initial_gamma * scale)
}

fn train_round(
    x: &[Vec<f64>],
    y: &[f64],
    config: &DetectorConfig,
    shared: &SharedKernelCache,
    round: usize,
) -> Result<(SvmModel, f64), TrainError> {
    let (c, gamma) = round_params(config, round);
    let model = SvmTrainer::new(Kernel::rbf(gamma))
        .c(c)
        .train_with_cache(x, y, shared)?;
    let acc = model.accuracy(x, y);
    Ok((model, acc))
}

/// Iterative learning with up to `speculation` rounds trained concurrently.
///
/// Rounds are independent trainings on the same data with doubled `(C, γ)`,
/// so when spare threads exist they can be trained speculatively in waves:
/// all rounds of a wave run in parallel (sharing the γ-independent
/// squared-distance rows in `shared`), then the sequential stopping rule is
/// replayed over the wave in round order. Rounds past the stop point are
/// discarded, so the selected fit — model, kept round, attempted rounds —
/// is identical to the sequential loop's for every `speculation` width.
///
/// # Errors
///
/// Propagates [`TrainError`] from the underlying SVM trainer.
pub fn train_iterative_with(
    x: &[Vec<f64>],
    y: &[f64],
    config: &DetectorConfig,
    shared: &SharedKernelCache,
    speculation: usize,
) -> Result<IterativeFit, TrainError> {
    let max_rounds = config.max_learning_rounds.max(1);
    let mut best: Option<IterativeFit> = None;
    let mut attempted = 0;
    let mut next_round = 1usize;
    'waves: while next_round <= max_rounds {
        let wave: Vec<usize> = (next_round..=max_rounds).take(speculation.max(1)).collect();
        let fits: Vec<Result<(SvmModel, f64), TrainError>> = if wave.len() == 1 {
            vec![train_round(x, y, config, shared, wave[0])]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = wave
                    .iter()
                    .map(|&round| scope.spawn(move || train_round(x, y, config, shared, round)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("round training panicked"))
                    .collect()
            })
        };
        // Selection replay: walk the wave in round order exactly like the
        // sequential loop would, stopping at the accuracy target.
        for (&round, fit) in wave.iter().zip(fits) {
            let (model, acc) = fit?;
            attempted = round;
            let (c, gamma) = round_params(config, round);
            let improved = best.as_ref().is_none_or(|b| acc > b.training_accuracy);
            if improved {
                best = Some(IterativeFit {
                    model,
                    rounds: round,
                    rounds_attempted: round,
                    c,
                    gamma,
                    training_accuracy: acc,
                });
            }
            let current_best = best.as_ref().expect("set above");
            if current_best.training_accuracy >= config.target_training_accuracy {
                break 'waves;
            }
        }
        next_round = wave.last().expect("wave is non-empty") + 1;
    }
    let mut best = best.expect("at least one round runs");
    best.rounds_attempted = attempted;
    Ok(best)
}

/// One per-cluster SVM kernel with its routing metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterKernel {
    /// The trained SVM.
    pub model: SvmModel,
    /// Topology signature of the hotspot cluster.
    pub signature: TopoSignature,
    /// Density centroid of the hotspot cluster.
    pub centroid: DensityGrid,
    /// Density radius of the cluster.
    pub radius: f64,
    /// Feature-vector length the kernel expects.
    pub feature_len: usize,
    /// Number of hotspot training patterns in the cluster.
    pub hotspot_count: usize,
    /// Self-training rounds used.
    pub rounds: usize,
    /// Final `(C, γ)` of iterative learning.
    pub final_c: f64,
    /// Final RBF width.
    pub final_gamma: f64,
    /// Platt sigmoid fitted on the kernel's training decisions, giving
    /// calibrated hotspot probabilities.
    pub platt: PlattScaler,
}

/// Trains one SVM kernel per hotspot cluster against the shared nonhotspot
/// medoid set (Fig. 9(a)).
///
/// `hotspots` are the (already upsampled) hotspot patterns; `clusters` their
/// topological clusters; `nonhotspot_medoids` the downsampled nonhotspot
/// patterns.
///
/// # Errors
///
/// Propagates the first SVM training failure.
pub fn train_cluster_kernels(
    hotspots: &[Pattern],
    clusters: &[PatternCluster],
    nonhotspot_medoids: &[Pattern],
    config: &DetectorConfig,
) -> Result<Vec<ClusterKernel>, TrainError> {
    let executor = Executor::new(config.effective_threads());
    let (kernels, _) =
        train_cluster_kernels_with(hotspots, clusters, nonhotspot_medoids, config, &executor)?;
    Ok(kernels)
}

/// [`train_cluster_kernels`] on an explicit [`Executor`], returning its
/// utilisation stats for telemetry.
///
/// All kernels are independent (Section III-G): each cluster is one task on
/// the work-stealing executor. When the executor has more threads than
/// there are clusters, the surplus is spent *inside* each task training
/// speculative `(C, γ)` rounds concurrently (see [`train_iterative_with`]),
/// so both fan-out axes of the paper's parallelisation are covered while
/// total concurrency stays near the configured thread count.
///
/// # Errors
///
/// Propagates the first SVM training failure (in cluster order).
pub fn train_cluster_kernels_with(
    hotspots: &[Pattern],
    clusters: &[PatternCluster],
    nonhotspot_medoids: &[Pattern],
    config: &DetectorConfig,
    executor: &Executor,
) -> Result<(Vec<ClusterKernel>, ExecutorStats), TrainError> {
    let speculation = (executor.threads() / clusters.len().max(1)).max(1);
    let (results, stats) = executor.map(clusters, |_, cl| {
        train_one_kernel(hotspots, cl, nonhotspot_medoids, config, speculation)
    });
    let kernels = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok((kernels, stats))
}

fn train_one_kernel(
    hotspots: &[Pattern],
    cluster: &PatternCluster,
    nonhotspot_medoids: &[Pattern],
    config: &DetectorConfig,
    speculation: usize,
) -> Result<ClusterKernel, TrainError> {
    // Determine the kernel's feature length from the cluster members.
    let member_features: Vec<Vec<f64>> = cluster
        .members
        .iter()
        .map(|&i| feature_vector(&hotspots[i], Region::Core, config))
        .collect();
    let feature_len = member_features
        .iter()
        .map(Vec::len)
        .max()
        .unwrap_or(5)
        .max(5);

    let mut x: Vec<Vec<f64>> = Vec::with_capacity(member_features.len() + nonhotspot_medoids.len());
    let mut y: Vec<f64> = Vec::with_capacity(x.capacity());
    for f in member_features {
        x.push(pad(f, feature_len));
        y.push(1.0);
    }
    for p in nonhotspot_medoids {
        x.push(feature_vector_padded(p, Region::Core, config, feature_len));
        y.push(-1.0);
    }

    // One shared distance-row cache per kernel: every (C, γ) round trains
    // on the same vectors, so the rows are reused across rounds whether the
    // rounds run sequentially or speculatively in parallel.
    let shared = SharedKernelCache::new(x.len());
    let fit = train_iterative_with(&x, &y, config, &shared, speculation)?;
    let decisions: Vec<f64> = x.iter().map(|v| fit.model.decision_value(v)).collect();
    let platt = PlattScaler::fit(&decisions, &y);
    Ok(ClusterKernel {
        model: fit.model,
        signature: cluster.signature.clone(),
        centroid: cluster.centroid.clone(),
        radius: cluster.radius,
        feature_len,
        hotspot_count: cluster.members.len(),
        rounds: fit.rounds,
        final_c: fit.c,
        final_gamma: fit.gamma,
        platt,
    })
}

fn pad(mut v: Vec<f64>, len: usize) -> Vec<f64> {
    if v.len() == len {
        return v;
    }
    // Preserve the 5-value nontopological tail while adjusting the rules
    // section, mirroring `CriticalFeatures::to_vector_padded`.
    let tail: Vec<f64> = v.split_off(v.len().saturating_sub(5));
    v.resize(len.saturating_sub(5), 0.0);
    v.truncate(len.saturating_sub(5));
    v.extend(tail);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::Point;
    use hotspot_layout::ClipShape;

    fn shape() -> ClipShape {
        ClipShape::new(1200, 4800).unwrap()
    }

    fn pattern_with_core(rects: &[Rect]) -> Pattern {
        let window = shape().window_centered(Point::new(0, 0));
        Pattern::new(window, rects)
    }

    fn bar_pattern(width: i64) -> Pattern {
        pattern_with_core(&[Rect::from_extents(-600, -width / 2, 600, width / 2)])
    }

    fn pair_pattern(gap: i64) -> Pattern {
        pattern_with_core(&[
            Rect::from_extents(-500, -300, -gap / 2, 300),
            Rect::from_extents(gap / 2, -300, 500, 300),
        ])
    }

    fn test_config() -> DetectorConfig {
        DetectorConfig {
            max_learning_rounds: 4,
            ..Default::default()
        }
    }

    #[test]
    fn classification_groups_same_topology() {
        // The two bars differ only marginally, so they survive density-based
        // sub-clustering as one cluster; the pair pattern differs in string
        // topology.
        let patterns = vec![bar_pattern(200), bar_pattern(204), pair_pattern(100)];
        let clusters = classify_patterns(&patterns, Region::Core, &test_config().cluster);
        assert_eq!(clusters.len(), 2);
        let total: usize = clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, 3);
        // The two bars share a cluster.
        let bar_cluster = clusters
            .iter()
            .find(|c| c.members.contains(&0))
            .expect("bar cluster");
        assert!(bar_cluster.members.contains(&1));
        assert!(!bar_cluster.members.contains(&2));
    }

    #[test]
    fn medoid_is_a_member() {
        let patterns = vec![bar_pattern(200), bar_pattern(210), bar_pattern(400)];
        let clusters = classify_patterns(&patterns, Region::Core, &test_config().cluster);
        for c in &clusters {
            assert!(c.members.contains(&c.medoid));
        }
    }

    #[test]
    fn classification_is_deterministic() {
        let patterns = vec![
            bar_pattern(200),
            pair_pattern(100),
            bar_pattern(300),
            pair_pattern(200),
        ];
        let a = classify_patterns(&patterns, Region::Core, &test_config().cluster);
        let b = classify_patterns(&patterns, Region::Core, &test_config().cluster);
        assert_eq!(a, b);
    }

    #[test]
    fn clip_region_sees_ambit_differences() {
        // Same core, different ambit: Region::Core merges them,
        // Region::Clip separates them.
        let core = Rect::from_extents(-400, -400, 400, 400);
        let a = pattern_with_core(&[core]);
        let b = pattern_with_core(&[core, Rect::from_extents(1500, 1500, 2200, 2200)]);
        let core_clusters = classify_patterns(
            &[a.clone(), b.clone()],
            Region::Core,
            &test_config().cluster,
        );
        assert_eq!(core_clusters.len(), 1);
        let clip_clusters = classify_patterns(&[a, b], Region::Clip, &test_config().cluster);
        assert_eq!(clip_clusters.len(), 2);
    }

    #[test]
    fn iterative_learning_stops_on_target() {
        // Trivially separable data: the first round should hit the target.
        let x = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![1.0, 1.0],
            vec![0.9, 1.0],
        ];
        let y = vec![-1.0, -1.0, 1.0, 1.0];
        let fit = train_iterative(&x, &y, &test_config()).unwrap();
        assert_eq!(fit.rounds, 1);
        assert!(fit.training_accuracy >= 0.9);
        assert_eq!(fit.c, 1000.0);
    }

    #[test]
    fn iterative_learning_escalates_until_round_bound() {
        // Conflicting duplicate labels make the target unreachable: the loop
        // must double (C, γ) through every allowed round and keep the best
        // model rather than the last.
        let x = vec![vec![0.5], vec![0.5], vec![0.0], vec![1.0]];
        let y = vec![1.0, -1.0, -1.0, 1.0];
        let config = DetectorConfig {
            max_learning_rounds: 5,
            ..Default::default()
        };
        let fit = train_iterative(&x, &y, &config).unwrap();
        assert_eq!(fit.rounds_attempted, 5, "all rounds must be attempted");
        assert!(
            fit.training_accuracy < 1.0,
            "conflicts cannot fully separate"
        );
        assert!(fit.rounds <= fit.rounds_attempted);
    }

    #[test]
    fn kernels_train_per_cluster() {
        let hotspots = vec![
            bar_pattern(200),
            bar_pattern(220),
            pair_pattern(100),
            pair_pattern(120),
        ];
        let clusters = classify_patterns(&hotspots, Region::Core, &test_config().cluster);
        let nonhotspots = vec![bar_pattern(1000), pair_pattern(600)];
        let kernels =
            train_cluster_kernels(&hotspots, &clusters, &nonhotspots, &test_config()).unwrap();
        assert_eq!(kernels.len(), clusters.len());
        for k in &kernels {
            assert!(k.feature_len >= 5);
            assert!(k.hotspot_count >= 1);
            assert!(k.rounds >= 1);
        }
    }

    #[test]
    fn parallel_and_sequential_training_agree() {
        let hotspots = vec![
            bar_pattern(200),
            bar_pattern(220),
            pair_pattern(100),
            pair_pattern(140),
        ];
        let clusters = classify_patterns(&hotspots, Region::Core, &test_config().cluster);
        let nonhotspots = vec![bar_pattern(1000)];
        let seq_cfg = DetectorConfig {
            threads: 1,
            ..test_config()
        };
        let par_cfg = DetectorConfig {
            threads: 4,
            ..test_config()
        };
        let a = train_cluster_kernels(&hotspots, &clusters, &nonhotspots, &seq_cfg).unwrap();
        let b = train_cluster_kernels(&hotspots, &clusters, &nonhotspots, &par_cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn feature_memo_matches_direct_extraction() {
        let p = pair_pattern(120);
        let cfg = test_config();
        let mut memo = FeatureMemo::new(&p, Region::Core, &cfg);
        for len in [5usize, 9, 17, 9, 5] {
            assert_eq!(
                memo.padded(len),
                feature_vector_padded(&p, Region::Core, &cfg, len).as_slice(),
                "len {len}"
            );
        }
        // Both lengths stay cached; re-requests return the same vectors.
        assert_eq!(memo.padded.len(), 3);
    }

    #[test]
    fn pad_preserves_tail() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let padded = pad(v.clone(), 10);
        assert_eq!(padded.len(), 10);
        assert_eq!(&padded[5..], &[0.0, 3.0, 4.0, 5.0, 6.0, 7.0][1..]);
        let truncated = pad(v, 5);
        assert_eq!(truncated, vec![3.0, 4.0, 5.0, 6.0, 7.0]);
    }
}
