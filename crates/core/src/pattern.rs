//! Clip patterns and training sets.

use hotspot_geom::{Point, Rect};
use hotspot_layout::{ClipWindow, LayerId, Layout};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Ground-truth class of a training pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// Lithography hotspot.
    Hotspot,
    /// Printable pattern.
    NonHotspot,
}

impl Label {
    /// The SVM target value: `+1` for hotspots, `−1` otherwise.
    pub fn target(self) -> f64 {
        match self {
            Label::Hotspot => 1.0,
            Label::NonHotspot => -1.0,
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Hotspot => f.write_str("hotspot"),
            Label::NonHotspot => f.write_str("non-hotspot"),
        }
    }
}

/// One clip pattern: a placed core/ambit window plus the polygon rectangles
/// inside it (absolute coordinates, clipped to the window).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pattern {
    /// The clip window (core + ambit).
    pub window: ClipWindow,
    /// Polygon rectangles inside the clip window.
    pub rects: Vec<Rect>,
}

impl Pattern {
    /// Builds a pattern by clipping `rects` to `window.clip`.
    pub fn new(window: ClipWindow, rects: &[Rect]) -> Pattern {
        let clipped = rects
            .iter()
            .filter_map(|r| r.intersection(&window.clip))
            .collect();
        Pattern {
            window,
            rects: clipped,
        }
    }

    /// Extracts the pattern at `window` from a layout layer.
    ///
    /// For repeated extraction over one layout prefer building a
    /// [`crate::RectIndex`] once and using [`Pattern::from_index`].
    pub fn from_layout(layout: &Layout, layer: LayerId, window: ClipWindow) -> Pattern {
        let rects = layout.dissected_rects(layer);
        Pattern::new(window, &rects)
    }

    /// Extracts the pattern at `window` using a prebuilt spatial index.
    pub fn from_index(index: &crate::RectIndex, window: ClipWindow) -> Pattern {
        Pattern::new(window, &index.query(&window.clip))
    }

    /// The rectangles clipped to the core region.
    pub fn core_rects(&self) -> Vec<Rect> {
        self.rects
            .iter()
            .filter_map(|r| r.intersection(&self.window.core))
            .collect()
    }

    /// Shifts the *geometry* by `delta` within the fixed window (the data
    /// shifting of Section III-D3), clipping at the window boundary.
    pub fn shifted(&self, delta: Point) -> Pattern {
        let moved: Vec<Rect> = self
            .rects
            .iter()
            .filter_map(|r| r.translate(delta).intersection(&self.window.clip))
            .collect();
        Pattern {
            window: self.window,
            rects: moved,
        }
    }

    /// Polygon density inside the core region.
    pub fn core_density(&self) -> f64 {
        let core = self.window.core;
        if core.is_empty() {
            return 0.0;
        }
        // The core rects may overlap after clipping of overlapping input;
        // overlap is rare and density is a filter heuristic, so sum & clamp.
        let covered: i64 = self.rects.iter().map(|r| r.overlap_area(&core)).sum();
        (covered as f64 / core.area() as f64).min(1.0)
    }

    /// Bounding box of the pattern's rectangles, `None` when empty.
    pub fn content_bbox(&self) -> Option<Rect> {
        Rect::bbox_of(self.rects.iter())
    }

    /// Maximum distance from any clip boundary to the content bounding box
    /// (the four arrows of Fig. 11(b)); `None` when the clip is empty.
    pub fn max_boundary_bbox_distance(&self) -> Option<i64> {
        let bbox = self.content_bbox()?;
        let clip = self.window.clip;
        Some(
            (bbox.min().x - clip.min().x)
                .max(bbox.min().y - clip.min().y)
                .max(clip.max().x - bbox.max().x)
                .max(clip.max().y - bbox.max().y),
        )
    }
}

/// A labelled training corpus of hotspot and nonhotspot patterns.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainingSet {
    /// Hotspot patterns.
    pub hotspots: Vec<Pattern>,
    /// Nonhotspot patterns (typically far more numerous).
    pub nonhotspots: Vec<Pattern>,
}

impl TrainingSet {
    /// An empty training set.
    pub fn new() -> TrainingSet {
        TrainingSet::default()
    }

    /// Adds a labelled pattern.
    pub fn push(&mut self, pattern: Pattern, label: Label) {
        match label {
            Label::Hotspot => self.hotspots.push(pattern),
            Label::NonHotspot => self.nonhotspots.push(pattern),
        }
    }

    /// Total pattern count.
    pub fn len(&self) -> usize {
        self.hotspots.len() + self.nonhotspots.len()
    }

    /// `true` when no patterns are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deterministically subsamples a fraction of each class (used by the
    /// Table IV training-data experiments). `fraction` is clamped to
    /// `[0, 1]`; at least one pattern per non-empty class is kept.
    pub fn subsample(&self, fraction: f64) -> TrainingSet {
        let f = fraction.clamp(0.0, 1.0);
        let take = |v: &[Pattern]| -> Vec<Pattern> {
            if v.is_empty() {
                return Vec::new();
            }
            let n = ((v.len() as f64 * f).round() as usize).clamp(1, v.len());
            // Deterministic stride sampling spreads picks over the corpus.
            let stride = v.len() as f64 / n as f64;
            (0..n)
                .map(|i| v[(i as f64 * stride) as usize % v.len()].clone())
                .collect()
        };
        TrainingSet {
            hotspots: take(&self.hotspots),
            nonhotspots: take(&self.nonhotspots),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_layout::ClipShape;

    fn shape() -> ClipShape {
        ClipShape::new(100, 300).unwrap()
    }

    fn sample() -> Pattern {
        let window = shape().window_centered(Point::new(0, 0));
        Pattern::new(
            window,
            &[
                Rect::from_extents(-20, -20, 20, 20),   // in core
                Rect::from_extents(100, 100, 140, 140), // in ambit
                Rect::from_extents(500, 500, 600, 600), // outside, dropped
            ],
        )
    }

    #[test]
    fn new_clips_to_window() {
        let p = sample();
        assert_eq!(p.rects.len(), 2);
        assert!(p.rects.iter().all(|r| p.window.clip.contains_rect(r)));
    }

    #[test]
    fn core_rects_clip_to_core() {
        let p = sample();
        let core = p.core_rects();
        assert_eq!(core.len(), 1);
        assert_eq!(core[0], Rect::from_extents(-20, -20, 20, 20));
    }

    #[test]
    fn density_and_bbox() {
        let p = sample();
        // Core is 100×100, covered by a 40×40 square.
        assert!((p.core_density() - 0.16).abs() < 1e-12);
        assert_eq!(
            p.content_bbox(),
            Some(Rect::from_extents(-20, -20, 140, 140))
        );
        // Clip spans [-150, 150]; content bbox min is -20: distance 130;
        // max side: 150 - 140 = 10. Max distance = 130.
        assert_eq!(p.max_boundary_bbox_distance(), Some(130));
    }

    #[test]
    fn empty_pattern_edge_cases() {
        let p = Pattern::new(shape().window_centered(Point::new(0, 0)), &[]);
        assert_eq!(p.core_density(), 0.0);
        assert_eq!(p.content_bbox(), None);
        assert_eq!(p.max_boundary_bbox_distance(), None);
    }

    #[test]
    fn shifted_moves_geometry_not_window() {
        let p = sample();
        let s = p.shifted(Point::new(10, 0));
        assert_eq!(s.window, p.window);
        assert_eq!(s.rects[0], Rect::from_extents(-10, -20, 30, 20));
        // Geometry leaving the clip is clipped away.
        let far = p.shifted(Point::new(1000, 0));
        assert!(far.rects.is_empty());
    }

    #[test]
    fn label_targets() {
        assert_eq!(Label::Hotspot.target(), 1.0);
        assert_eq!(Label::NonHotspot.target(), -1.0);
    }

    #[test]
    fn training_set_push_and_len() {
        let mut ts = TrainingSet::new();
        assert!(ts.is_empty());
        ts.push(sample(), Label::Hotspot);
        ts.push(sample(), Label::NonHotspot);
        ts.push(sample(), Label::NonHotspot);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.hotspots.len(), 1);
        assert_eq!(ts.nonhotspots.len(), 2);
    }

    #[test]
    fn subsample_fraction() {
        let mut ts = TrainingSet::new();
        for _ in 0..100 {
            ts.push(sample(), Label::NonHotspot);
        }
        for _ in 0..10 {
            ts.push(sample(), Label::Hotspot);
        }
        let half = ts.subsample(0.5);
        assert_eq!(half.nonhotspots.len(), 50);
        assert_eq!(half.hotspots.len(), 5);
        // At least one survives extreme fractions.
        let tiny = ts.subsample(0.0001);
        assert_eq!(tiny.hotspots.len(), 1);
        assert_eq!(tiny.nonhotspots.len(), 1);
        // Full fraction is the identity on counts.
        assert_eq!(ts.subsample(1.0).len(), ts.len());
    }

    #[test]
    fn from_layout_extracts_window() {
        use hotspot_layout::LayerId;
        let mut layout = hotspot_layout::Layout::new("t");
        layout.add_rect(LayerId::METAL1, Rect::from_extents(-20, -20, 20, 20));
        let p = Pattern::from_layout(
            &layout,
            LayerId::METAL1,
            shape().window_centered(Point::new(0, 0)),
        );
        assert_eq!(p.rects.len(), 1);
    }
}
