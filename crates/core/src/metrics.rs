//! Hit/extra scoring (Definitions 1–3 and Fig. 2 of the paper).

use hotspot_layout::ClipWindow;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Scoring of a detection run against the ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Correctly identified actual hotspots.
    pub hits: usize,
    /// Actual hotspots that were missed.
    pub misses: usize,
    /// Reported clips that hit no actual hotspot (false alarms).
    pub extras: usize,
    /// Total reported clip count.
    pub reported: usize,
    /// Total actual hotspot count.
    pub actual: usize,
    /// Testing-layout area in µm² (for the false-alarm definition).
    pub layout_area_um2: f64,
    /// Wall-clock runtime of the measured phase.
    #[serde(skip)]
    pub runtime: Duration,
}

impl Evaluation {
    /// Accuracy = hits / actual hotspots (Definition 2).
    pub fn accuracy(&self) -> f64 {
        if self.actual == 0 {
            return 1.0;
        }
        self.hits as f64 / self.actual as f64
    }

    /// False alarm = extras / layout area (Definition 3), in extras per µm².
    pub fn false_alarm(&self) -> f64 {
        if self.layout_area_um2 <= 0.0 {
            return 0.0;
        }
        self.extras as f64 / self.layout_area_um2
    }

    /// Hit/extra ratio, the secondary contest objective (∞-safe: extras of
    /// zero yields the hit count itself).
    pub fn hit_extra_ratio(&self) -> f64 {
        if self.extras == 0 {
            return self.hits as f64;
        }
        self.hits as f64 / self.extras as f64
    }
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#hit {} / {}  #extra {}  accuracy {:.2}%  hit/extra {:.3e}  runtime {:.1}s",
            self.hits,
            self.actual,
            self.extras,
            self.accuracy() * 100.0,
            self.hit_extra_ratio(),
            self.runtime.as_secs_f64()
        )
    }
}

/// Scores reported clips against the actual hotspots.
///
/// An actual hotspot is *hit* when any reported clip satisfies the Fig. 2
/// rule against it; a reported clip is an *extra* when it hits no actual
/// hotspot. One reported clip can hit several actual hotspots and several
/// reported clips can hit the same actual hotspot without becoming extras.
pub fn score(
    reported: &[ClipWindow],
    actual: &[ClipWindow],
    min_clip_overlap: f64,
    layout_area_um2: f64,
    runtime: Duration,
) -> Evaluation {
    let mut hit_actual = vec![false; actual.len()];
    let mut extras = 0usize;
    for r in reported {
        let mut hit_any = false;
        for (i, a) in actual.iter().enumerate() {
            if r.is_hit(a, min_clip_overlap) {
                hit_actual[i] = true;
                hit_any = true;
            }
        }
        if !hit_any {
            extras += 1;
        }
    }
    let hits = hit_actual.iter().filter(|&&h| h).count();
    Evaluation {
        hits,
        misses: actual.len() - hits,
        extras,
        reported: reported.len(),
        actual: actual.len(),
        layout_area_um2,
        runtime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::Point;
    use hotspot_layout::ClipShape;

    fn shape() -> ClipShape {
        ClipShape::ICCAD2012
    }

    fn w(x: i64, y: i64) -> ClipWindow {
        shape().window_centered(Point::new(x, y))
    }

    #[test]
    fn exact_match_scores_hit() {
        let e = score(&[w(0, 0)], &[w(0, 0)], 0.2, 100.0, Duration::ZERO);
        assert_eq!(e.hits, 1);
        assert_eq!(e.extras, 0);
        assert_eq!(e.misses, 0);
        assert_eq!(e.accuracy(), 1.0);
        assert_eq!(e.false_alarm(), 0.0);
    }

    #[test]
    fn near_match_within_core_overlap_hits() {
        let e = score(&[w(600, 0)], &[w(0, 0)], 0.2, 100.0, Duration::ZERO);
        assert_eq!(e.hits, 1);
        assert_eq!(e.extras, 0);
    }

    #[test]
    fn far_report_is_extra() {
        let e = score(&[w(50_000, 0)], &[w(0, 0)], 0.2, 100.0, Duration::ZERO);
        assert_eq!(e.hits, 0);
        assert_eq!(e.extras, 1);
        assert_eq!(e.misses, 1);
        assert_eq!(e.accuracy(), 0.0);
        assert!((e.false_alarm() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn multiple_reports_one_actual() {
        // Two overlapping reports on one hotspot: one hit, no extras.
        let e = score(
            &[w(0, 0), w(200, 0)],
            &[w(0, 0)],
            0.2,
            100.0,
            Duration::ZERO,
        );
        assert_eq!(e.hits, 1);
        assert_eq!(e.extras, 0);
        assert_eq!(e.reported, 2);
    }

    #[test]
    fn one_report_covering_two_actuals() {
        let e = score(
            &[w(0, 0)],
            &[w(300, 0), w(-300, 0)],
            0.2,
            100.0,
            Duration::ZERO,
        );
        assert_eq!(e.hits, 2);
        assert_eq!(e.extras, 0);
    }

    #[test]
    fn empty_cases() {
        let e = score(&[], &[], 0.2, 100.0, Duration::ZERO);
        assert_eq!(e.accuracy(), 1.0);
        assert_eq!(e.hit_extra_ratio(), 0.0);
        let e = score(&[], &[w(0, 0)], 0.2, 100.0, Duration::ZERO);
        assert_eq!(e.accuracy(), 0.0);
        assert_eq!(e.misses, 1);
    }

    #[test]
    fn ratios() {
        let e = Evaluation {
            hits: 10,
            misses: 2,
            extras: 5,
            reported: 15,
            actual: 12,
            layout_area_um2: 1000.0,
            runtime: Duration::ZERO,
        };
        assert!((e.accuracy() - 10.0 / 12.0).abs() < 1e-12);
        assert!((e.hit_extra_ratio() - 2.0).abs() < 1e-12);
        assert!((e.false_alarm() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        let e = score(&[w(0, 0)], &[w(0, 0)], 0.2, 100.0, Duration::from_secs(3));
        let s = e.to_string();
        assert!(s.contains("#hit 1"));
        assert!(s.contains("100.00%"));
    }
}
