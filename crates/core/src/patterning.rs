//! End-to-end double-patterning hotspot detection (Section IV-B).
//!
//! When layouts are printed with two masks, a clip's risk depends on its
//! decomposition: each mask prints at relaxed pitch, but the combined
//! pattern (and decomposition-induced stitches) can still fail. Following
//! Fig. 14(b), every clip contributes three mask-marked feature sets —
//! mask 1, mask 2, and the combined pattern — to the SVM.
//!
//! The decomposition is either provided by the foundry (as the paper
//! assumes) or computed by the greedy two-colouring in
//! [`hotspot_topo::patterning::MaskDecomposition::decompose`].

use crate::config::DetectorConfig;
use crate::extraction::{extract_clips_indexed, RectIndex};
use crate::pattern::Pattern;
use crate::training::{classify_patterns_mode, core_signature_and_grid, train_iterative, Region};
use hotspot_geom::{Coord, DensityGrid, Rect};
use hotspot_layout::{ClipWindow, LayerId, Layout};
use hotspot_svm::{SvmModel, TrainError};
use hotspot_topo::patterning::{MaskDecomposition, PatterningFeatures};
use hotspot_topo::TopoSignature;
use serde::{Deserialize, Serialize};

/// A labelled clip with its mask decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecomposedPattern {
    /// The clip window.
    pub window: ClipWindow,
    /// The two-mask decomposition of the clip's geometry.
    pub decomposition: MaskDecomposition,
}

impl DecomposedPattern {
    /// Builds a decomposed pattern from a plain clip, colouring rectangles
    /// closer than `min_spacing` onto different masks.
    pub fn from_pattern(pattern: &Pattern, min_spacing: Coord) -> DecomposedPattern {
        let local: Vec<Rect> = pattern.rects.clone();
        DecomposedPattern {
            window: pattern.window,
            decomposition: MaskDecomposition::decompose(&local, min_spacing),
        }
    }

    /// The three-set Fig. 14(b) feature vector over the core region.
    pub fn feature_vector(&self, config: &DetectorConfig) -> Vec<f64> {
        let core = self.window.core;
        let local = Rect::from_extents(0, 0, core.width(), core.height());
        let clip_to_core = |rects: &[Rect]| -> Vec<Rect> {
            rects
                .iter()
                .filter_map(|r| r.intersection(&core))
                .map(|r| r.translate(-core.min()))
                .collect()
        };
        let d = MaskDecomposition {
            mask1: clip_to_core(&self.decomposition.mask1),
            mask2: clip_to_core(&self.decomposition.mask2),
        };
        PatterningFeatures::extract(&local, &d, &config.feature).to_vector()
    }

    /// The combined (single-exposure-equivalent) pattern.
    pub fn combined_pattern(&self) -> Pattern {
        Pattern::new(self.window, &self.decomposition.combined())
    }
}

/// A trained double-patterning detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DoublePatterningDetector {
    kernels: Vec<DpKernel>,
    min_spacing: Coord,
    config: DetectorConfig,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct DpKernel {
    model: SvmModel,
    signature: TopoSignature,
    centroid: DensityGrid,
    radius: f64,
    feature_len: usize,
}

impl DoublePatterningDetector {
    /// Trains per-cluster kernels over decomposed patterns. Classification
    /// runs on the combined pattern's core topology; features are the
    /// mask-marked three-set vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] when the hotspot set is empty or SVM training
    /// fails.
    pub fn train(
        hotspots: &[DecomposedPattern],
        nonhotspots: &[DecomposedPattern],
        min_spacing: Coord,
        config: DetectorConfig,
    ) -> Result<DoublePatterningDetector, TrainError> {
        if hotspots.is_empty() {
            return Err(TrainError::EmptyTrainingSet);
        }
        let class_patterns: Vec<Pattern> = hotspots
            .iter()
            .map(DecomposedPattern::combined_pattern)
            .collect();
        let clusters = classify_patterns_mode(
            &class_patterns,
            Region::Core,
            &config.cluster,
            config.raster_mode,
        );

        let negative_features: Vec<Vec<f64>> = nonhotspots
            .iter()
            .map(|p| p.feature_vector(&config))
            .collect();

        let mut kernels = Vec::with_capacity(clusters.len());
        for cluster in &clusters {
            let positives: Vec<Vec<f64>> = cluster
                .members
                .iter()
                .map(|&i| hotspots[i].feature_vector(&config))
                .collect();
            let feature_len = positives
                .iter()
                .chain(&negative_features)
                .map(Vec::len)
                .max()
                .unwrap_or(5);
            let mut x = Vec::new();
            let mut y = Vec::new();
            for f in &positives {
                x.push(pad(f.clone(), feature_len));
                y.push(1.0);
            }
            for f in &negative_features {
                x.push(pad(f.clone(), feature_len));
                y.push(-1.0);
            }
            let fit = train_iterative(&x, &y, &config)?;
            kernels.push(DpKernel {
                model: fit.model,
                signature: cluster.signature.clone(),
                centroid: cluster.centroid.clone(),
                radius: cluster.radius,
                feature_len,
            });
        }
        Ok(DoublePatterningDetector {
            kernels,
            min_spacing,
            config,
        })
    }

    /// Number of trained kernels.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// The decomposition spacing rule the detector was trained with.
    pub fn min_spacing(&self) -> Coord {
        self.min_spacing
    }

    /// Classifies one decomposed clip.
    pub fn classify(&self, pattern: &DecomposedPattern) -> bool {
        let combined = pattern.combined_pattern();
        let (signature, grid) = core_signature_and_grid(&combined, &self.config);
        let features_full = pattern.feature_vector(&self.config);
        for k in &self.kernels {
            let topo_match = signature == k.signature;
            let density_match = grid.nx() == k.centroid.nx()
                && grid.distance(&k.centroid).distance <= self.config.admission.threshold(k.radius);
            if !topo_match && !density_match {
                continue;
            }
            let f = pad(features_full.clone(), k.feature_len);
            if k.model.decision_value(&f) > self.config.decision_threshold {
                return true;
            }
        }
        false
    }

    /// Scans a testing layout, decomposing every extracted clip with the
    /// trained spacing rule.
    pub fn detect(&self, layout: &Layout, layer: LayerId) -> Vec<ClipWindow> {
        let index = RectIndex::from_layout(layout, layer, self.config.clip_shape.clip_side());
        let clips =
            extract_clips_indexed(&index, self.config.clip_shape, &self.config.distribution);
        clips
            .into_iter()
            .filter_map(|clip| {
                let dp = DecomposedPattern::from_pattern(&clip, self.min_spacing);
                if self.classify(&dp) {
                    Some(clip.window)
                } else {
                    None
                }
            })
            .collect()
    }
}

fn pad(mut v: Vec<f64>, len: usize) -> Vec<f64> {
    v.resize(len, 0.0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::Point;
    use hotspot_layout::ClipShape;

    fn window() -> ClipWindow {
        ClipShape::ICCAD2012.window_from_core_corner(Point::new(0, 0))
    }

    /// Three bars at pitch `p` (width 150).
    fn bars(p: i64) -> Vec<Rect> {
        (0..3)
            .map(|i| Rect::from_extents(i * p, 0, i * p + 150, 1000))
            .collect()
    }

    fn decomposed(p: i64) -> DecomposedPattern {
        DecomposedPattern::from_pattern(&Pattern::new(window(), &bars(p)), 250)
    }

    fn training_sets() -> (Vec<DecomposedPattern>, Vec<DecomposedPattern>) {
        // Hotspots: pitches so tight that even decomposition leaves same-
        // mask neighbours close. Nonhotspots: relaxed pitches.
        let hotspots: Vec<_> = (0..4).map(|i| decomposed(230 + 5 * i)).collect();
        let nonhotspots: Vec<_> = (0..6).map(|i| decomposed(450 + 20 * i)).collect();
        (hotspots, nonhotspots)
    }

    fn config() -> DetectorConfig {
        DetectorConfig {
            max_learning_rounds: 4,
            ..Default::default()
        }
    }

    #[test]
    fn from_pattern_decomposes_tight_pitches() {
        let d = decomposed(240);
        assert!(!d.decomposition.mask1.is_empty());
        assert!(!d.decomposition.mask2.is_empty());
        assert_eq!(d.decomposition.combined().len(), 3);
    }

    #[test]
    fn relaxed_pitch_stays_on_one_mask() {
        let d = DecomposedPattern::from_pattern(&Pattern::new(window(), &bars(600)), 250);
        assert!(d.decomposition.mask2.is_empty());
    }

    #[test]
    fn feature_vector_carries_mask_marks() {
        let d = decomposed(240);
        let v = d.feature_vector(&config());
        assert_eq!(v[0], 1.0, "mask-1 marker");
        assert!(v.len() > 10);
    }

    #[test]
    fn detector_separates_pitches() {
        let (hs, nhs) = training_sets();
        let det = DoublePatterningDetector::train(&hs, &nhs, 250, config()).unwrap();
        assert!(det.kernel_count() >= 1);
        assert!(det.classify(&decomposed(242)), "tight pitch must flag");
        assert!(!det.classify(&decomposed(500)), "relaxed pitch must pass");
    }

    #[test]
    fn detect_scans_layout() {
        let (hs, nhs) = training_sets();
        let det = DoublePatterningDetector::train(&hs, &nhs, 250, config()).unwrap();
        let mut layout = Layout::new("dp");
        let at = Point::new(24_000, 24_000);
        for r in bars(235) {
            layout.add_rect(LayerId::METAL1, r.translate(at));
        }
        for r in hotspot_benchgen::generator::filler_rects(at) {
            layout.add_rect(LayerId::METAL1, r);
        }
        let reported = det.detect(&layout, LayerId::METAL1);
        let target = ClipShape::ICCAD2012.window_from_core_corner(at);
        assert!(
            reported.iter().any(|w| w.is_hit(&target, 0.2)),
            "tight-pitch hotspot not reported ({} reports)",
            reported.len()
        );
    }

    #[test]
    fn empty_training_errors() {
        let r = DoublePatterningDetector::train(&[], &[], 250, config());
        assert!(matches!(r, Err(TrainError::EmptyTrainingSet)));
    }
}
