//! Durable append-only checkpoint journal for [`scan_layout`].
//!
//! A journaled scan ([`crate::ScanConfig::journal`]) appends one record per
//! *successfully* processed tile — its stable tile id plus the canonical
//! [`TileOutcomeRecord`] — and fsyncs once per in-flight batch. When a scan
//! is killed mid-run, resuming with [`crate::ScanConfig::resume_from`]
//! replays the journal's valid prefix, skips every completed tile, and
//! recomputes only the rest, producing a [`crate::ScanReport`] whose
//! deterministic content is bit-identical to an uninterrupted run.
//!
//! # Record format
//!
//! The journal is line-oriented. Every line — the header included — is
//!
//! ```text
//! <fnv1a64 of payload, 16 lowercase hex digits> <payload JSON>\n
//! ```
//!
//! The first line's payload is a [`JournalHeader`] fingerprinting the scan
//! (grid geometry, layer, decision-threshold bits); resuming against a
//! journal whose header disagrees with the current scan is refused rather
//! than silently mixing results. Subsequent payloads are [`TileRecord`]s.
//!
//! Readers stop at the first line that is truncated (no trailing newline),
//! malformed, or checksum-mismatched, and report the byte length of the
//! valid prefix; the resume writer truncates the file to that prefix before
//! appending, so a torn final write from a kill is discarded cleanly.
//! Failed (quarantined) tiles are never journaled — a resumed scan retries
//! them from scratch.
//!
//! [`scan_layout`]: crate::HotspotDetector::scan_layout

use crate::engine::FaultPlan;
use crate::obs::{Counter, ObsEvent, ObsHub};
use hotspot_geom::Rect;
use hotspot_layout::LayerId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek, SeekFrom, Write as _};
use std::path::Path;
use std::sync::Arc;

/// Magic string identifying a scan journal.
pub const JOURNAL_MAGIC: &str = "hotspot-scan-journal";

/// Version of the journal record format.
pub const JOURNAL_VERSION: u32 = 1;

/// The header payload fingerprinting the scan a journal belongs to.
///
/// Two scans produce interchangeable journals iff their headers are equal:
/// the grid (`tiles_total`, `tile_cores`), the scanned `layer`, and the
/// exact decision threshold (`threshold_bits`, the `f64` bit pattern, so
/// equality is exact rather than approximate).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Always [`JOURNAL_MAGIC`].
    pub magic: String,
    /// Always [`JOURNAL_VERSION`].
    pub version: u32,
    /// Tiles in the scan grid, including empty ones.
    pub tiles_total: usize,
    /// The scan's [`crate::ScanConfig::tile_cores`].
    pub tile_cores: usize,
    /// The scanned layer.
    pub layer: LayerId,
    /// Bit pattern of the decision threshold the scan evaluates at.
    pub threshold_bits: u64,
}

impl JournalHeader {
    /// Builds the header for a scan over `tiles_total` tiles.
    pub fn new(tiles_total: usize, tile_cores: usize, layer: LayerId, threshold: f64) -> Self {
        JournalHeader {
            magic: JOURNAL_MAGIC.to_string(),
            version: JOURNAL_VERSION,
            tiles_total,
            tile_cores,
            layer,
            threshold_bits: threshold.to_bits(),
        }
    }
}

/// The canonical result of one successfully processed tile.
///
/// This is exactly the tile state `scan_layout` folds into its report —
/// replaying it is equivalent to re-running the tile, which is why resumed
/// reports are bit-identical to uninterrupted ones.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TileOutcomeRecord {
    /// The tile was discarded by the density prefilter.
    Prefiltered,
    /// The tile's clips were extracted and evaluated.
    Evaluated {
        /// Candidate clips extracted from the tile.
        clips: usize,
        /// Clips flagged hotspot by the multiple kernels.
        flagged: usize,
        /// Flags reclaimed to nonhotspot by the feedback kernel.
        reclaimed: usize,
        /// Core rectangles of the surviving flags, in extraction order.
        flagged_cores: Vec<Rect>,
    },
}

/// One journal line: a tile id plus its canonical outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileRecord {
    /// Stable tile id (`iy * grid_cols + ix`), thread-count-invariant.
    pub tile: usize,
    /// What the tile produced.
    pub outcome: TileOutcomeRecord,
}

/// FNV-1a 64-bit hash of `bytes` — the per-line checksum. Shared with the
/// tile result cache ([`crate::tile_cache`]), which frames its entries the
/// same way.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Frames `payload` as one checksummed journal line.
pub(crate) fn frame(payload: &str) -> String {
    format!("{:016x} {payload}\n", fnv1a(payload.as_bytes()))
}

/// Parses one framed line (without its trailing newline) back into its
/// payload, verifying the checksum. `None` when malformed or corrupt.
pub(crate) fn unframe(line: &str) -> Option<&str> {
    let (hex, payload) = line.split_at_checked(17)?;
    let (hex, sep) = hex.split_at_checked(16)?;
    if sep != " " {
        return None;
    }
    let expected = u64::from_str_radix(hex, 16).ok()?;
    (fnv1a(payload.as_bytes()) == expected).then_some(payload)
}

/// The valid prefix of a journal file, as read back for resume.
#[derive(Debug)]
pub struct JournalContents {
    /// The fingerprint header the journal was created with.
    pub header: JournalHeader,
    /// Completed tiles: stable tile id → canonical outcome. Later records
    /// for the same tile win (there are none in practice — tiles are
    /// journaled exactly once).
    pub records: HashMap<usize, TileOutcomeRecord>,
    /// Byte length of the valid prefix; everything past it is a torn or
    /// corrupt tail to be truncated away before appending.
    pub valid_len: u64,
}

/// Reads the valid prefix of the journal at `path`.
///
/// Stops — without erroring — at the first truncated, malformed, or
/// checksum-mismatched line; those and everything after are excluded from
/// [`JournalContents::valid_len`].
///
/// # Errors
///
/// Returns an I/O error when the file cannot be read, and
/// `InvalidData` when the first line is not a valid journal header.
pub fn read_journal(path: &Path) -> io::Result<JournalContents> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let text = String::from_utf8_lossy(&bytes);

    let mut header: Option<JournalHeader> = None;
    let mut records = HashMap::new();
    let mut valid_len = 0u64;
    let mut rest: &str = &text;
    while let Some(nl) = rest.find('\n') {
        let line = &rest[..nl];
        let Some(payload) = unframe(line) else { break };
        if header.is_none() {
            let h: JournalHeader = serde_json::from_str(payload).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad journal header: {e}"),
                )
            })?;
            if h.magic != JOURNAL_MAGIC || h.version != JOURNAL_VERSION {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "not a v{JOURNAL_VERSION} scan journal (magic {:?}, version {})",
                        h.magic, h.version
                    ),
                ));
            }
            header = Some(h);
        } else {
            let Ok(record) = serde_json::from_str::<TileRecord>(payload) else {
                break;
            };
            records.insert(record.tile, record.outcome);
        }
        valid_len += (nl + 1) as u64;
        rest = &rest[nl + 1..];
    }
    let header = header.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "journal has no valid header line",
        )
    })?;
    Ok(JournalContents {
        header,
        records,
        valid_len,
    })
}

/// Append-only journal writer with per-batch durability.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    appended: usize,
    dirty: bool,
    obs: Option<Arc<ObsHub>>,
}

impl JournalWriter {
    /// Creates (or truncates) the journal at `path` and writes its header.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn create(path: &Path, header: &JournalHeader) -> io::Result<Self> {
        let mut file = File::create(path)?;
        let payload = serde_json::to_string(header)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        file.write_all(frame(&payload).as_bytes())?;
        file.sync_data()?;
        Ok(JournalWriter {
            file,
            appended: 0,
            dirty: false,
            obs: None,
        })
    }

    /// Reopens the journal at `path` for appending after a resume:
    /// truncates the file to `valid_len` (discarding any torn tail) and
    /// seeks to its end.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn resume(path: &Path, valid_len: u64) -> io::Result<Self> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(JournalWriter {
            file,
            appended: 0,
            dirty: false,
            obs: None,
        })
    }

    /// Attaches an observability hub: appends and syncs are counted into
    /// the hub's lock-free counters and each durable sync emits an
    /// [`ObsEvent::JournalSynced`] event. Without a hub each journal
    /// operation performs exactly one extra branch.
    pub fn set_obs(&mut self, hub: Arc<ObsHub>) {
        self.obs = Some(hub);
    }

    /// Appends one tile record. Durability is deferred to
    /// [`sync`](Self::sync), called once per batch.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error — or a simulated one when `fault`
    /// marks this append ([`FaultPlan::fails_journal_at`], counted from 0
    /// over this writer's lifetime).
    pub fn append(&mut self, record: &TileRecord, fault: &FaultPlan) -> io::Result<()> {
        if fault.fails_journal_at(self.appended) {
            self.appended += 1;
            return Err(io::Error::other(format!(
                "injected journal fault at record {}",
                self.appended - 1
            )));
        }
        let payload = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.file.write_all(frame(&payload).as_bytes())?;
        self.appended += 1;
        self.dirty = true;
        if let Some(hub) = &self.obs {
            hub.counters().add(Counter::JournalAppends, 1);
        }
        Ok(())
    }

    /// Flushes appended records to durable storage (`fsync`), a no-op when
    /// nothing was appended since the last sync.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dirty {
            self.file.flush()?;
            self.file.sync_data()?;
            self.dirty = false;
            if let Some(hub) = &self.obs {
                hub.counters().add(Counter::JournalSyncs, 1);
                let appended = self.appended;
                hub.emit(|| ObsEvent::JournalSynced { appended });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hotspot-journal-test-{}-{name}",
            std::process::id()
        ));
        p
    }

    fn sample_header() -> JournalHeader {
        JournalHeader::new(12, 4, LayerId::METAL1, 0.5)
    }

    fn sample_record(tile: usize) -> TileRecord {
        TileRecord {
            tile,
            outcome: TileOutcomeRecord::Evaluated {
                clips: 3,
                flagged: 1,
                reclaimed: 0,
                flagged_cores: vec![Rect::from_extents(0, 0, 100, 100)],
            },
        }
    }

    #[test]
    fn write_then_read_round_trips() {
        let path = temp_path("round-trip");
        let header = sample_header();
        let mut w = JournalWriter::create(&path, &header).unwrap();
        w.append(&sample_record(0), &FaultPlan::default()).unwrap();
        let prefiltered = TileRecord {
            tile: 5,
            outcome: TileOutcomeRecord::Prefiltered,
        };
        w.append(&prefiltered, &FaultPlan::default()).unwrap();
        w.sync().unwrap();
        drop(w);

        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.header, header);
        assert_eq!(contents.records.len(), 2);
        assert_eq!(
            contents.records[&5],
            TileOutcomeRecord::Prefiltered,
            "prefiltered tile replays as prefiltered"
        );
        assert!(matches!(
            contents.records[&0],
            TileOutcomeRecord::Evaluated { clips: 3, .. }
        ));
        assert_eq!(contents.valid_len, fs::metadata(&path).unwrap().len());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_is_ignored_and_resume_discards_it() {
        let path = temp_path("truncated");
        let mut w = JournalWriter::create(&path, &sample_header()).unwrap();
        w.append(&sample_record(0), &FaultPlan::default()).unwrap();
        w.append(&sample_record(1), &FaultPlan::default()).unwrap();
        w.sync().unwrap();
        drop(w);

        // Tear the final record mid-line, as a kill mid-write would.
        let bytes = fs::read(&path).unwrap();
        let full = read_journal(&path).unwrap();
        assert_eq!(full.records.len(), 2);
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let torn = read_journal(&path).unwrap();
        assert_eq!(torn.records.len(), 1, "torn record excluded");
        assert!(torn.records.contains_key(&0));
        assert!((torn.valid_len as usize) < bytes.len() - 7);

        // Resuming truncates to the valid prefix, then appends cleanly.
        let mut w = JournalWriter::resume(&path, torn.valid_len).unwrap();
        w.append(&sample_record(1), &FaultPlan::default()).unwrap();
        w.sync().unwrap();
        drop(w);
        let healed = read_journal(&path).unwrap();
        assert_eq!(healed.records.len(), 2);
        assert_eq!(
            fs::read(&path).unwrap(),
            bytes,
            "healed journal is byte-identical"
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_checksum_stops_the_reader() {
        let path = temp_path("corrupt");
        let mut w = JournalWriter::create(&path, &sample_header()).unwrap();
        w.append(&sample_record(0), &FaultPlan::default()).unwrap();
        w.append(&sample_record(1), &FaultPlan::default()).unwrap();
        w.sync().unwrap();
        drop(w);

        // Flip a byte inside the second record's payload.
        let mut bytes = fs::read(&path).unwrap();
        let len = bytes.len();
        bytes[len - 10] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records.len(), 1, "corrupt record and tail dropped");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_or_bad_header_is_an_error() {
        let path = temp_path("bad-header");
        fs::write(&path, "not a journal at all\n").unwrap();
        assert!(read_journal(&path).is_err());
        fs::write(&path, frame("{\"magic\":\"something-else\",\"version\":1,\"tiles_total\":0,\"tile_cores\":1,\"layer\":1,\"threshold_bits\":0}")).unwrap();
        assert!(read_journal(&path).is_err());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_journal_fault_fails_the_chosen_append() {
        let path = temp_path("fault");
        let plan = FaultPlan {
            fail_journal_at: Some(1),
            ..Default::default()
        };
        let mut w = JournalWriter::create(&path, &sample_header()).unwrap();
        assert!(w.append(&sample_record(0), &plan).is_ok());
        assert!(w.append(&sample_record(1), &plan).is_err());
        assert!(
            w.append(&sample_record(2), &plan).is_ok(),
            "only the chosen record fails"
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_framing_rejects_tampering() {
        let line = frame("{\"x\":1}");
        assert_eq!(unframe(line.trim_end()), Some("{\"x\":1}"));
        let tampered = line.replace("\"x\":1", "\"x\":2");
        assert_eq!(unframe(tampered.trim_end()), None);
        assert_eq!(unframe("short"), None);
        assert_eq!(unframe("zzzzzzzzzzzzzzzz {\"x\":1}"), None);
    }
}
