//! Suite-level integration tests: the generated benchmarks satisfy the
//! structural invariants the experiments rely on.

use hotspot_benchgen::{iccad_suite, Benchmark, SuiteScale};
use hotspot_layout::gdsii;

#[test]
fn tiny_suite_benchmarks_are_internally_consistent() {
    // Two representative benchmarks (the imbalanced bm2 and the blind one).
    let specs = iccad_suite(SuiteScale::Tiny);
    for spec in [specs[1].clone(), specs[5].clone()] {
        let bm = Benchmark::generate(spec.clone());
        // Counts match the spec.
        assert_eq!(
            bm.training.hotspots.len(),
            spec.train_hotspots,
            "{}",
            spec.name
        );
        assert_eq!(
            bm.training.nonhotspots.len(),
            spec.train_nonhotspots,
            "{}",
            spec.name
        );
        assert_eq!(bm.actual.len(), spec.test_hotspots, "{}", spec.name);
        // Every ground-truth window lies inside the layout bounds.
        let bounds = hotspot_geom::Rect::from_extents(0, 0, spec.width, spec.height);
        for w in &bm.actual {
            assert!(bounds.contains_rect(&w.core), "{}: {w}", spec.name);
        }
        // Ground-truth cores are pairwise disjoint (one hotspot per cell).
        for (i, a) in bm.actual.iter().enumerate() {
            for b in &bm.actual[i + 1..] {
                assert!(!a.core.overlaps(&b.core), "{}", spec.name);
            }
        }
        // The layout round-trips through the GDSII codec bit-exactly.
        let restored =
            gdsii::read_bytes(&gdsii::write_bytes(&bm.layout).expect("write")).expect("read");
        assert_eq!(restored, bm.layout, "{}", spec.name);
    }
}

#[test]
fn suite_scales_monotonically() {
    let tiny = iccad_suite(SuiteScale::Tiny);
    let small = iccad_suite(SuiteScale::Small);
    let paper = iccad_suite(SuiteScale::Paper);
    for ((t, s), p) in tiny.iter().zip(&small).zip(&paper) {
        assert!(t.width <= s.width && s.width <= p.width, "{}", t.name);
        assert!(
            t.test_hotspots <= s.test_hotspots && s.test_hotspots <= p.test_hotspots,
            "{}",
            t.name
        );
        assert!(
            t.train_nonhotspots <= s.train_nonhotspots
                && s.train_nonhotspots <= p.train_nonhotspots,
            "{}",
            t.name
        );
    }
}

#[test]
fn same_spec_same_benchmark_different_names_differ() {
    let specs = iccad_suite(SuiteScale::Tiny);
    let a = Benchmark::generate(specs[0].clone());
    let b = Benchmark::generate(specs[0].clone());
    assert_eq!(a.layout, b.layout);
    assert_eq!(a.training, b.training);
    // Distinct benchmarks use distinct seeds and must differ.
    let c = Benchmark::generate(specs[4].clone());
    assert_ne!(a.layout, c.layout);
}
