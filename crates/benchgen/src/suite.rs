//! The six Table-I-shaped benchmarks.
//!
//! Mirrors the statistics of the ICCAD-2012 suite (Table I of the paper) at
//! a configurable linear scale. At `SuiteScale::Paper` the layout areas
//! match Table I; the default `Small` scale shrinks areas 16× (4× linear)
//! and training counts 4× so the whole suite runs in CI time, preserving
//! the hotspot/nonhotspot imbalance ratios. `EXPERIMENTS.md` documents the
//! scaling.

use crate::generator::BenchmarkSpec;
use crate::litho::LithoOracle;
use hotspot_layout::ClipShape;
use serde::{Deserialize, Serialize};

/// Linear scale of the generated suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuiteScale {
    /// 1/8 linear — smoke tests.
    Tiny,
    /// 1/4 linear — the default experiment scale.
    Small,
    /// 1/2 linear — the inference-benchmark scale: enough clips and
    /// support vectors for stable throughput numbers without Table-I
    /// training times.
    Medium,
    /// Full Table-I areas.
    Paper,
    /// 2× linear (4× Table-I area) with 1/4 training counts — a
    /// "huge layout" mode for stressing the streaming scan's throughput
    /// and memory bound, not for accuracy experiments.
    Huge,
}

impl SuiteScale {
    /// The linear scale factor.
    pub fn linear(self) -> f64 {
        match self {
            SuiteScale::Tiny => 0.125,
            SuiteScale::Small => 0.25,
            SuiteScale::Medium => 0.5,
            SuiteScale::Paper => 1.0,
            SuiteScale::Huge => 2.0,
        }
    }

    /// Scale factor applied to pattern counts (linear, not area, so the
    /// training sets stay statistically meaningful). `Huge` keeps the small
    /// training set — the point of that scale is layout area, not model
    /// quality.
    pub fn count(self) -> f64 {
        match self {
            SuiteScale::Tiny => 0.08,
            SuiteScale::Small | SuiteScale::Huge => 0.25,
            SuiteScale::Medium => 0.5,
            SuiteScale::Paper => 1.0,
        }
    }
}

/// Row of Table I: name, process, training counts, testing stats.
struct TableRow {
    name: &'static str,
    process_nm: u32,
    train_hs: usize,
    train_nhs: usize,
    test_hs: usize,
    width_um: f64,
    height_um: f64,
    seed: u64,
}

const TABLE1: [TableRow; 6] = [
    TableRow {
        name: "array_benchmark1",
        process_nm: 32,
        train_hs: 99,
        train_nhs: 340,
        test_hs: 226,
        width_um: 110.0,
        height_um: 115.0,
        seed: 0x1001,
    },
    TableRow {
        name: "array_benchmark2",
        process_nm: 28,
        train_hs: 176,
        train_nhs: 5285,
        test_hs: 499,
        width_um: 327.0,
        height_um: 327.0,
        seed: 0x1002,
    },
    TableRow {
        name: "array_benchmark3",
        process_nm: 28,
        train_hs: 923,
        train_nhs: 4643,
        test_hs: 1847,
        width_um: 350.0,
        height_um: 350.0,
        seed: 0x1003,
    },
    TableRow {
        name: "array_benchmark4",
        process_nm: 28,
        train_hs: 98,
        train_nhs: 4452,
        test_hs: 192,
        width_um: 286.0,
        height_um: 286.0,
        seed: 0x1004,
    },
    TableRow {
        name: "array_benchmark5",
        process_nm: 28,
        train_hs: 26,
        train_nhs: 2716,
        test_hs: 42,
        width_um: 222.0,
        height_um: 222.0,
        seed: 0x1005,
    },
    TableRow {
        name: "mx_blind_partial",
        process_nm: 32,
        train_hs: 99, // evaluated with benchmark1's training data
        train_nhs: 340,
        test_hs: 55,
        width_um: 750.0,
        height_um: 299.0,
        seed: 0x1006,
    },
];

/// Builds the six benchmark specs at the given scale.
///
/// Areas scale with `scale.linear()²`, planted-hotspot counts with the same
/// area factor (density preserved), training counts with `scale.count()`.
pub fn iccad_suite(scale: SuiteScale) -> Vec<BenchmarkSpec> {
    let lin = scale.linear();
    let area_factor = lin * lin;
    let cnt = scale.count();
    TABLE1
        .iter()
        .map(|row| {
            let cell = ClipShape::ICCAD2012.clip_side() as f64;
            // Round dimensions to whole cells so the layout tiles exactly.
            let width = ((row.width_um * 1000.0 * lin / cell).round().max(3.0) * cell) as i64;
            let height = ((row.height_um * 1000.0 * lin / cell).round().max(3.0) * cell) as i64;
            BenchmarkSpec {
                name: row.name.to_string(),
                process_nm: row.process_nm,
                width,
                height,
                // Floors keep even the smallest scaled benchmark trainable:
                // the generator draws from five motif families, so a
                // handful of examples per family is the minimum useful set.
                train_hotspots: ((row.train_hs as f64 * cnt).round() as usize).max(16),
                train_nonhotspots: ((row.train_nhs as f64 * cnt).round() as usize).max(48),
                test_hotspots: ((row.test_hs as f64 * area_factor).round() as usize).max(3),
                seed: row.seed,
                clip_shape: ClipShape::ICCAD2012,
                oracle: LithoOracle::default(),
                background_fill: 0.55,
                ambit_filler: true,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_six_benchmarks() {
        let suite = iccad_suite(SuiteScale::Small);
        assert_eq!(suite.len(), 6);
        let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"array_benchmark1"));
        assert!(names.contains(&"mx_blind_partial"));
    }

    #[test]
    fn imbalance_preserved() {
        for s in iccad_suite(SuiteScale::Small) {
            if s.name == "array_benchmark2" {
                let ratio = s.train_nonhotspots as f64 / s.train_hotspots as f64;
                // Paper ratio is ~30; scaling keeps it.
                assert!((25.0..=40.0).contains(&ratio), "ratio {ratio}");
            }
        }
    }

    #[test]
    fn paper_scale_matches_table1_counts() {
        let suite = iccad_suite(SuiteScale::Paper);
        let bm3 = suite.iter().find(|s| s.name == "array_benchmark3").unwrap();
        assert_eq!(bm3.train_hotspots, 923);
        assert_eq!(bm3.train_nonhotspots, 4643);
        assert_eq!(bm3.test_hotspots, 1847);
    }

    #[test]
    fn dimensions_are_cell_aligned() {
        for s in iccad_suite(SuiteScale::Tiny) {
            assert_eq!(s.width % s.clip_shape.clip_side(), 0, "{}", s.name);
            assert_eq!(s.height % s.clip_shape.clip_side(), 0, "{}", s.name);
            assert!(s.width >= 3 * s.clip_shape.clip_side());
        }
    }

    #[test]
    fn scales_are_ordered() {
        assert!(SuiteScale::Tiny.linear() < SuiteScale::Small.linear());
        assert!(SuiteScale::Small.linear() < SuiteScale::Medium.linear());
        assert!(SuiteScale::Medium.linear() < SuiteScale::Paper.linear());
        assert!(SuiteScale::Paper.linear() < SuiteScale::Huge.linear());
        assert_eq!(SuiteScale::Paper.count(), 1.0);
        assert!(SuiteScale::Small.count() < SuiteScale::Medium.count());
    }

    #[test]
    fn huge_scale_grows_area_not_training() {
        let small = iccad_suite(SuiteScale::Small);
        let huge = iccad_suite(SuiteScale::Huge);
        for (s, h) in small.iter().zip(&huge) {
            assert!(h.width >= 8 * s.width - s.clip_shape.clip_side() * 8);
            assert_eq!(h.train_hotspots, s.train_hotspots);
            assert_eq!(h.train_nonhotspots, s.train_nonhotspots);
            assert!(h.test_hotspots > s.test_hotspots);
        }
    }
}
