//! Synthetic ICCAD-2012-style hotspot benchmarks.
//!
//! The paper evaluates on six proprietary 32/28 nm industrial benchmarks.
//! This crate is the documented substitution (see `DESIGN.md`): a seeded
//! generator builds layouts and training sets with the same *structure* —
//! highly imbalanced training populations, core/ambit clips, planted
//! hotspots among dense background wiring — labelled by a deterministic
//! **lithography susceptibility oracle** ([`litho`]) that plays the role of
//! the foundry's lithography simulation.
//!
//! - [`litho`]: Gaussian aerial-image proxy; bridging/pinching risk scoring,
//! - [`motifs`]: parametric layout motif families (tip-to-tip gaps, parallel
//!   lines, L-pairs, combs, jogs),
//! - [`generator`]: seeded benchmark construction,
//! - [`suite`]: the six Table-I-shaped benchmarks at a configurable scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod litho;
pub mod motifs;
pub mod suite;

pub use generator::{Benchmark, BenchmarkSpec};
pub use litho::LithoOracle;
pub use motifs::Motif;
pub use suite::{iccad_suite, SuiteScale};
