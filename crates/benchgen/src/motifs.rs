//! Parametric layout motif families.
//!
//! Every motif instantiates to a set of rectangles anchored at the origin
//! (the bounding box's bottom-left corner sits at `(0, 0)`, and at least
//! one rectangle's corner coincides with it), matching the clip-extraction
//! anchoring convention so training clips and extracted clips share frames.

use hotspot_geom::{Coord, Rect};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A parametric layout motif.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Motif {
    /// Two horizontal bars facing tip to tip across `gap`.
    BarPair {
        /// Tip-to-tip gap in nm.
        gap: Coord,
        /// Bar length in nm.
        len: Coord,
        /// Bar height in nm.
        height: Coord,
    },
    /// `count` vertical lines at constant pitch.
    ParallelLines {
        /// Number of lines.
        count: u32,
        /// Line width in nm.
        width: Coord,
        /// Space between lines in nm.
        spacing: Coord,
        /// Line length in nm.
        len: Coord,
    },
    /// Two L-shapes facing each other across a diagonal corner gap.
    CornerPair {
        /// Arm length of each L.
        arm: Coord,
        /// Arm thickness.
        thick: Coord,
        /// Diagonal corner-to-corner gap.
        gap: Coord,
    },
    /// A comb: a spine with upward teeth, and a bar above the teeth.
    Comb {
        /// Number of teeth.
        teeth: u32,
        /// Tooth width.
        tooth_w: Coord,
        /// Space between teeth.
        tooth_gap: Coord,
        /// Tooth height above the spine.
        tooth_h: Coord,
        /// Gap between tooth tips and the top bar.
        top_gap: Coord,
    },
    /// A jogged wire with a notch that narrows to `neck`.
    Jog {
        /// Wire width.
        width: Coord,
        /// Segment length.
        len: Coord,
        /// Neck width at the jog.
        neck: Coord,
    },
}

/// The motif family names, for diagnostics and stratified sampling.
pub const FAMILIES: [&str; 5] = ["bar_pair", "parallel_lines", "corner_pair", "comb", "jog"];

impl Motif {
    /// The family name of this motif.
    pub fn family(&self) -> &'static str {
        match self {
            Motif::BarPair { .. } => "bar_pair",
            Motif::ParallelLines { .. } => "parallel_lines",
            Motif::CornerPair { .. } => "corner_pair",
            Motif::Comb { .. } => "comb",
            Motif::Jog { .. } => "jog",
        }
    }

    /// Instantiates the motif as origin-anchored rectangles.
    pub fn rects(&self) -> Vec<Rect> {
        match *self {
            Motif::BarPair { gap, len, height } => vec![
                Rect::from_extents(0, 0, len, height),
                Rect::from_extents(len + gap, 0, 2 * len + gap, height),
            ],
            Motif::ParallelLines {
                count,
                width,
                spacing,
                len,
            } => (0..count as Coord)
                .map(|i| {
                    let x = i * (width + spacing);
                    Rect::from_extents(x, 0, x + width, len)
                })
                .collect(),
            Motif::CornerPair { arm, thick, gap } => {
                // Two L-shapes: the first L's horizontal arm tip faces the
                // side of the second L's vertical arm across `gap` (the
                // classic line-end hotspot configuration).
                vec![
                    Rect::from_extents(0, 0, arm, thick),
                    Rect::from_extents(0, 0, thick, arm),
                    Rect::from_extents(arm + gap, 0, arm + gap + thick, arm),
                    Rect::from_extents(arm + gap, arm - thick, 2 * arm + gap, arm),
                ]
            }
            Motif::Comb {
                teeth,
                tooth_w,
                tooth_gap,
                tooth_h,
                top_gap,
            } => {
                let spine_h: Coord = 150;
                let total_w = teeth as Coord * tooth_w + (teeth as Coord - 1) * tooth_gap;
                let mut v = vec![Rect::from_extents(0, 0, total_w, spine_h)];
                for i in 0..teeth as Coord {
                    let x = i * (tooth_w + tooth_gap);
                    v.push(Rect::from_extents(
                        x,
                        spine_h,
                        x + tooth_w,
                        spine_h + tooth_h,
                    ));
                }
                v.push(Rect::from_extents(
                    0,
                    spine_h + tooth_h + top_gap,
                    total_w,
                    spine_h + tooth_h + top_gap + 150,
                ));
                v
            }
            Motif::Jog { width, len, neck } => vec![
                Rect::from_extents(0, 0, len, width),
                // The jog riser narrows to `neck`.
                Rect::from_extents(len, 0, len + neck, width + len / 2),
                Rect::from_extents(
                    len,
                    width + len / 2,
                    2 * len + neck,
                    width + len / 2 + width,
                ),
            ],
        }
    }

    /// Bounding box of the instantiated motif.
    pub fn bbox(&self) -> Rect {
        Rect::bbox_of(self.rects().iter()).expect("motifs are non-empty")
    }

    /// Samples a motif with parameters biased toward lithography risk
    /// (small gaps/necks in dense context). The oracle still makes the
    /// final call.
    pub fn sample_risky<R: Rng + ?Sized>(rng: &mut R) -> Motif {
        match rng.random_range(0..5u32) {
            0 => Motif::BarPair {
                gap: rng.random_range(60..150),
                len: rng.random_range(320..480),
                height: rng.random_range(160..320),
            },
            1 => Motif::ParallelLines {
                count: rng.random_range(3..6),
                width: rng.random_range(60..110),
                spacing: rng.random_range(50..100),
                len: rng.random_range(600..1100),
            },
            2 => Motif::CornerPair {
                arm: rng.random_range(300..500),
                thick: rng.random_range(120..220),
                gap: rng.random_range(60..130),
            },
            3 => Motif::Comb {
                teeth: rng.random_range(3..5),
                tooth_w: rng.random_range(90..150),
                tooth_gap: rng.random_range(110..180),
                tooth_h: rng.random_range(250..420),
                top_gap: rng.random_range(60..140),
            },
            _ => Motif::Jog {
                width: rng.random_range(140..240),
                len: rng.random_range(320..480),
                neck: rng.random_range(60..100),
            },
        }
    }

    /// Samples a motif with comfortable spacings (usually printable).
    /// All parameter ranges keep the bounding box within a 1.2 µm core.
    pub fn sample_safe<R: Rng + ?Sized>(rng: &mut R) -> Motif {
        match rng.random_range(0..5u32) {
            0 => Motif::BarPair {
                gap: rng.random_range(300..370),
                len: rng.random_range(280..380),
                height: rng.random_range(200..340),
            },
            1 => Motif::ParallelLines {
                count: rng.random_range(2..4),
                width: rng.random_range(140..200),
                // 3 lines at width 199 need spacing < 270 to stay under
                // the 1150 nm core budget: 3·199 + 2·269 = 1135.
                spacing: rng.random_range(220..270),
                len: rng.random_range(600..1100),
            },
            2 => Motif::CornerPair {
                // Width is 2·arm + gap; arm < 390 keeps the worst case at
                // 2·389 + 359 = 1137 ≤ 1150.
                arm: rng.random_range(300..390),
                thick: rng.random_range(160..260),
                gap: rng.random_range(300..360),
            },
            3 => Motif::Comb {
                teeth: rng.random_range(2..3),
                tooth_w: rng.random_range(180..240),
                tooth_gap: rng.random_range(300..330),
                tooth_h: rng.random_range(250..380),
                top_gap: rng.random_range(320..420),
            },
            _ => Motif::Jog {
                width: rng.random_range(200..320),
                len: rng.random_range(300..420),
                neck: rng.random_range(180..260),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn motifs_are_origin_anchored() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            for m in [Motif::sample_risky(&mut rng), Motif::sample_safe(&mut rng)] {
                let b = m.bbox();
                assert_eq!(b.min(), hotspot_geom::Point::new(0, 0), "{m:?}");
                // Some rect's corner sits exactly at the origin.
                assert!(
                    m.rects()
                        .iter()
                        .any(|r| r.min() == hotspot_geom::Point::new(0, 0)),
                    "{m:?}"
                );
            }
        }
    }

    #[test]
    fn motifs_fit_in_a_core() {
        // Cell placement leaves (clip − 2·ambit) = 1200 nm of free space;
        // every sampled motif must fit with headroom.
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..500 {
            for m in [Motif::sample_risky(&mut rng), Motif::sample_safe(&mut rng)] {
                let b = m.bbox();
                assert!(
                    b.width() <= 1150 && b.height() <= 1150,
                    "{m:?} too large: {b:?}"
                );
            }
        }
    }

    #[test]
    fn rects_are_valid_and_disjoint_enough() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            let m = Motif::sample_safe(&mut rng);
            for r in m.rects() {
                assert!(!r.is_empty(), "{m:?}");
            }
        }
    }

    #[test]
    fn family_names_cover_all_variants() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(Motif::sample_risky(&mut rng).family());
        }
        assert_eq!(seen.len(), FAMILIES.len());
    }

    #[test]
    fn bar_pair_geometry() {
        let m = Motif::BarPair {
            gap: 100,
            len: 400,
            height: 200,
        };
        let r = m.rects();
        assert_eq!(r.len(), 2);
        assert_eq!(hotspot_geom::edge_spacing(&r[0], &r[1]), Some(100));
    }

    #[test]
    fn comb_geometry() {
        let m = Motif::Comb {
            teeth: 3,
            tooth_w: 100,
            tooth_gap: 150,
            tooth_h: 300,
            top_gap: 80,
        };
        let r = m.rects();
        assert_eq!(r.len(), 5); // spine + 3 teeth + top bar
    }
}
