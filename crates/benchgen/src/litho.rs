//! A deterministic lithography susceptibility oracle.
//!
//! Stands in for the foundry lithography simulation that labelled the
//! contest benchmarks. The oracle computes a coarse *aerial image* of a
//! clip — the polygon coverage raster blurred by a separable Gaussian whose
//! width models the sub-wavelength point-spread — and scores two failure
//! modes against the nominal print threshold of 0.5:
//!
//! - **bridging**: a space pixel whose intensity rises above
//!   `0.5 − margin` (neighbouring shapes print into the gap),
//! - **pinching**: a polygon pixel whose intensity falls below
//!   `0.5 + margin` (the shape necks off).
//!
//! The susceptibility is the worst violation depth; a clip is a hotspot
//! when it is positive. Narrow gaps inside dense context blur shut and
//! bridge; isolated wide shapes stay safe — exactly the qualitative
//! behaviour hotspot detectors learn from real lithography.

use hotspot_geom::{Coord, Rect};
use serde::{Deserialize, Serialize};

/// The Gaussian aerial-image oracle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LithoOracle {
    /// Raster pixel size in nm (coarse: 40 nm).
    pub pixel: Coord,
    /// Gaussian point-spread sigma in nm (models λ/NA blur).
    pub sigma: f64,
    /// Margin around the 0.5 print threshold; smaller margins label fewer
    /// clips hotspot.
    pub margin: f64,
}

impl Default for LithoOracle {
    fn default() -> Self {
        LithoOracle {
            pixel: 20,
            sigma: 70.0,
            margin: 0.06,
        }
    }
}

impl LithoOracle {
    /// The fractional-coverage raster of `rects` over `window` (row-major,
    /// plus grid dimensions).
    pub fn coverage_raster(&self, window: &Rect, rects: &[Rect]) -> (Vec<f64>, usize, usize) {
        let nx = (window.width() / self.pixel).max(1) as usize;
        let ny = (window.height() / self.pixel).max(1) as usize;
        let mut img = vec![0.0f64; nx * ny];
        for r in rects {
            let Some(c) = r.intersection(window) else {
                continue;
            };
            let local = c.translate(-window.min());
            let px0 = (local.min().x / self.pixel).max(0) as usize;
            let px1 = ((local.max().x + self.pixel - 1) / self.pixel).min(nx as Coord) as usize;
            let py0 = (local.min().y / self.pixel).max(0) as usize;
            let py1 = ((local.max().y + self.pixel - 1) / self.pixel).min(ny as Coord) as usize;
            for py in py0..py1 {
                for px in px0..px1 {
                    // Fractional coverage of the pixel.
                    let cell = Rect::from_extents(
                        px as Coord * self.pixel,
                        py as Coord * self.pixel,
                        (px + 1) as Coord * self.pixel,
                        (py + 1) as Coord * self.pixel,
                    );
                    let ov = cell.overlap_area(&local) as f64 / cell.area() as f64;
                    let v = &mut img[py * nx + px];
                    *v = (*v + ov).min(1.0);
                }
            }
        }
        (img, nx, ny)
    }

    /// The blurred aerial image of `rects` over `window` (row-major grid of
    /// intensities in `[0, 1]`, plus grid dimensions).
    pub fn aerial_image(&self, window: &Rect, rects: &[Rect]) -> (Vec<f64>, usize, usize) {
        let (img, nx, ny) = self.coverage_raster(window, rects);
        let kernel = gaussian_kernel(self.sigma / self.pixel as f64);
        let img = blur_rows(&img, nx, ny, &kernel);
        let img = blur_cols(&img, nx, ny, &kernel);
        (img, nx, ny)
    }

    /// Susceptibility of the core region given the clip context: positive
    /// values mean "hotspot", larger is worse.
    ///
    /// Two failure modes are scored:
    ///
    /// - **bridging** — a space pixel prints because the aerial intensities
    ///   of *distinct* polygons overlap. The interaction requirement (union
    ///   intensity clearly above the strongest single connected component)
    ///   keeps the corner rounding of a single polygon — a non-defect —
    ///   from scoring.
    /// - **pinching** — a pixel deep inside a feature *along some axis*
    ///   under-exposes (thin lines neck off). The per-axis depth test
    ///   excludes convex corners, which round harmlessly.
    ///
    /// The context is truncated to `core` plus three sigma, beyond which
    /// the Gaussian contributes nothing.
    pub fn susceptibility(&self, core: &Rect, context_window: &Rect, rects: &[Rect]) -> f64 {
        const INTERACTION_MARGIN: f64 = 0.05;
        const PINCH_DEPTH_PX: usize = 3;

        let reach = (3.0 * self.sigma).ceil() as Coord + self.pixel;
        let window = match core.inflate(reach).intersection(context_window) {
            Some(w) => w,
            None => *context_window,
        };
        let live: Vec<Rect> = rects
            .iter()
            .filter_map(|r| r.intersection(&window))
            .collect();
        let (target, nx, ny) = self.coverage_raster(&window, &live);
        let kernel = gaussian_kernel(self.sigma / self.pixel as f64);
        let all = blur_cols(&blur_rows(&target, nx, ny, &kernel), nx, ny, &kernel);

        // Strongest single-polygon intensity per pixel: blur each connected
        // component (rects joined by touch/overlap) separately.
        let components = connected_components(&live);
        let mut single_max = vec![0.0f64; nx * ny];
        for comp in &components {
            let (raster, _, _) = self.coverage_raster(&window, comp);
            let img = blur_cols(&blur_rows(&raster, nx, ny, &kernel), nx, ny, &kernel);
            for (s, v) in single_max.iter_mut().zip(&img) {
                if *v > *s {
                    *s = *v;
                }
            }
        }

        // Only fully covered pixels count as polygon interior; partially
        // covered boundary pixels carry intensities near the print
        // threshold by construction and must not be pinch-checked.
        let is_poly = |x: isize, y: isize| -> bool {
            x >= 0
                && y >= 0
                && x < nx as isize
                && y < ny as isize
                && target[y as usize * nx + x as usize] >= 0.999
        };
        // Run length of polygon pixels in one direction (capped).
        const RUN_CAP: usize = 8;
        let axis_run = |px: isize, py: isize, dx: isize, dy: isize| -> usize {
            let mut d = 0;
            while d < RUN_CAP && is_poly(px + dx * (d as isize + 1), py + dy * (d as isize + 1)) {
                d += 1;
            }
            d
        };

        let mut worst = f64::NEG_INFINITY;
        for py in 0..ny as isize {
            for px in 0..nx as isize {
                let cx = window.min().x + (px as Coord) * self.pixel + self.pixel / 2;
                let cy = window.min().y + (py as Coord) * self.pixel + self.pixel / 2;
                if !core.contains_point(hotspot_geom::Point::new(cx, cy)) {
                    continue;
                }
                let i = py as usize * nx + px as usize;
                let intensity = all[i];
                let violation = if is_poly(px, py) {
                    // Pinching happens where the feature is *thin* along one
                    // axis while the pixel is *deep* along the other (far
                    // from line ends and corners). Thick regions and corner
                    // rounding are exempt.
                    const THIN_PX: usize = 6; // ≤ 120 nm wide
                    let (l, r) = (axis_run(px, py, -1, 0), axis_run(px, py, 1, 0));
                    let (d, u) = (axis_run(px, py, 0, -1), axis_run(px, py, 0, 1));
                    let thin_x = l + r < THIN_PX;
                    let thin_y = d + u < THIN_PX;
                    let deep_x = l.min(r) >= PINCH_DEPTH_PX;
                    let deep_y = d.min(u) >= PINCH_DEPTH_PX;
                    if !((thin_y && deep_x) || (thin_x && deep_y)) {
                        continue;
                    }
                    (0.5 + self.margin) - intensity
                } else {
                    // Bridging: a space pixel printing due to the combined
                    // intensity of several polygons. The interaction term
                    // is negative wherever a single polygon dominates, so
                    // ordinary edge/corner rounding never scores.
                    let print = intensity - (0.5 - self.margin);
                    let interaction = intensity - single_max[i] - INTERACTION_MARGIN;
                    print.min(interaction)
                };
                if violation > worst {
                    worst = violation;
                }
            }
        }
        if worst.is_finite() {
            worst
        } else {
            -1.0
        }
    }

    /// `true` when the core region is a lithography hotspot under this
    /// oracle.
    pub fn is_hotspot(&self, core: &Rect, context_window: &Rect, rects: &[Rect]) -> bool {
        self.susceptibility(core, context_window, rects) > 0.0
    }
}

/// Groups rectangles into connected components (touching or overlapping
/// rects belong to one polygon).
fn connected_components(rects: &[Rect]) -> Vec<Vec<Rect>> {
    let n = rects.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if rects[i].touches(&rects[j]) {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<Rect>> =
        std::collections::BTreeMap::new();
    for (i, rect) in rects.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(*rect);
    }
    groups.into_values().collect()
}

fn gaussian_kernel(sigma_px: f64) -> Vec<f64> {
    let radius = (3.0 * sigma_px).ceil().max(1.0) as usize;
    let mut k: Vec<f64> = (0..=2 * radius)
        .map(|i| {
            let d = i as f64 - radius as f64;
            (-d * d / (2.0 * sigma_px * sigma_px).max(1e-12)).exp()
        })
        .collect();
    let sum: f64 = k.iter().sum();
    for v in &mut k {
        *v /= sum;
    }
    k
}

fn blur_rows(img: &[f64], nx: usize, ny: usize, kernel: &[f64]) -> Vec<f64> {
    let radius = kernel.len() / 2;
    let mut out = vec![0.0; img.len()];
    for y in 0..ny {
        for x in 0..nx {
            let mut acc = 0.0;
            for (k, w) in kernel.iter().enumerate() {
                let xi = x as isize + k as isize - radius as isize;
                if xi >= 0 && (xi as usize) < nx {
                    acc += w * img[y * nx + xi as usize];
                }
            }
            out[y * nx + x] = acc;
        }
    }
    out
}

fn blur_cols(img: &[f64], nx: usize, ny: usize, kernel: &[f64]) -> Vec<f64> {
    let radius = kernel.len() / 2;
    let mut out = vec![0.0; img.len()];
    for y in 0..ny {
        for x in 0..nx {
            let mut acc = 0.0;
            for (k, w) in kernel.iter().enumerate() {
                let yi = y as isize + k as isize - radius as isize;
                if yi >= 0 && (yi as usize) < ny {
                    acc += w * img[yi as usize * nx + x];
                }
            }
            out[y * nx + x] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::Point;

    fn oracle() -> LithoOracle {
        LithoOracle::default()
    }

    fn window() -> Rect {
        Rect::centered_square(Point::new(0, 0), 2400)
    }

    fn core() -> Rect {
        Rect::centered_square(Point::new(0, 0), 1200)
    }

    /// Two bars separated by `gap`, centred in the core.
    fn bar_pair(gap: Coord) -> Vec<Rect> {
        vec![
            Rect::from_extents(-500 - gap / 2, -150, -gap / 2, 150),
            Rect::from_extents(gap / 2, -150, 500 + gap / 2, 150),
        ]
    }

    #[test]
    fn empty_core_is_safe() {
        assert!(!oracle().is_hotspot(&core(), &window(), &[]));
    }

    #[test]
    fn solid_block_is_safe() {
        // A large solid block prints fine.
        let rects = [Rect::centered_square(Point::new(0, 0), 900)];
        assert!(!oracle().is_hotspot(&core(), &window(), &rects));
    }

    #[test]
    fn narrow_gap_bridges() {
        let o = oracle();
        assert!(
            o.is_hotspot(&core(), &window(), &bar_pair(60)),
            "60 nm gap must bridge (score {})",
            o.susceptibility(&core(), &window(), &bar_pair(60))
        );
    }

    #[test]
    fn wide_gap_is_safe() {
        let o = oracle();
        assert!(
            !o.is_hotspot(&core(), &window(), &bar_pair(500)),
            "500 nm gap must be safe (score {})",
            o.susceptibility(&core(), &window(), &bar_pair(500))
        );
    }

    #[test]
    fn susceptibility_monotone_in_gap() {
        let o = oracle();
        let scores: Vec<f64> = [60, 120, 200, 320, 500]
            .iter()
            .map(|&g| o.susceptibility(&core(), &window(), &bar_pair(g)))
            .collect();
        for w in scores.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-9,
                "susceptibility should shrink with gap: {scores:?}"
            );
        }
    }

    #[test]
    fn narrow_line_pinches() {
        let o = oracle();
        // A 60 nm-wide isolated line necks off.
        let thin = [Rect::from_extents(-500, -30, 500, 30)];
        assert!(
            o.is_hotspot(&core(), &window(), &thin),
            "thin line must pinch (score {})",
            o.susceptibility(&core(), &window(), &thin)
        );
        // A 400 nm-wide line is robust.
        let wide = [Rect::from_extents(-500, -200, 500, 200)];
        assert!(!o.is_hotspot(&core(), &window(), &wide));
    }

    #[test]
    fn context_outside_core_affects_score() {
        // Dense context in the ambit raises the background intensity of the
        // core's gap (the physical reason the ambit matters — Fig. 10).
        let o = oracle();
        let bars = bar_pair(240);
        let mut crowded = bars.clone();
        // Bars hugging the core from above and below, inside the ambit.
        crowded.push(Rect::from_extents(-700, 170, 700, 420));
        crowded.push(Rect::from_extents(-700, -420, -170, -170));
        let base = o.susceptibility(&core(), &window(), &bars);
        let with_ctx = o.susceptibility(&core(), &window(), &crowded);
        assert!(
            with_ctx > base,
            "dense context must raise the score ({base} -> {with_ctx})"
        );
    }

    #[test]
    fn oracle_is_deterministic() {
        let o = oracle();
        let a = o.susceptibility(&core(), &window(), &bar_pair(100));
        let b = o.susceptibility(&core(), &window(), &bar_pair(100));
        assert_eq!(a, b);
    }

    #[test]
    fn aerial_image_bounded() {
        let o = oracle();
        let (img, _, _) = o.aerial_image(&window(), &bar_pair(100));
        assert!(img.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
    }

    #[test]
    fn kernel_normalised() {
        let k = gaussian_kernel(2.0);
        assert!((k.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(k.len() % 2, 1);
    }
}
