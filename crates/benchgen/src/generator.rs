//! Seeded benchmark construction.
//!
//! A benchmark mirrors the ICCAD-2012 structure: a labelled training set of
//! clip patterns plus a testing layout with known planted hotspots. Labels
//! come from the [`LithoOracle`], which plays the foundry's lithography
//! simulator.

use crate::litho::LithoOracle;
use crate::motifs::Motif;
use hotspot_core::{Label, Pattern, TrainingSet};
use hotspot_geom::{Coord, Point, Rect};
use hotspot_layout::{ClipShape, ClipWindow, LayerId, Layout};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Specification of one synthetic benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Benchmark name (e.g. `array_benchmark1`).
    pub name: String,
    /// Nominal process node in nm (32 or 28, informational).
    pub process_nm: u32,
    /// Testing-layout width in nm.
    pub width: Coord,
    /// Testing-layout height in nm.
    pub height: Coord,
    /// Hotspot training-pattern count.
    pub train_hotspots: usize,
    /// Nonhotspot training-pattern count.
    pub train_nonhotspots: usize,
    /// Hotspots planted in the testing layout.
    pub test_hotspots: usize,
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Clip geometry.
    pub clip_shape: ClipShape,
    /// Ground-truth oracle.
    pub oracle: LithoOracle,
    /// Fraction of background cells filled with safe wiring.
    pub background_fill: f64,
    /// Surround every motif with an ambit "filler" wiring frame, making
    /// clips as dense as the industrial layouts (and the paper's
    /// 1440 nm boundary-distance extraction filter meaningful).
    pub ambit_filler: bool,
}

/// The deterministic filler frame surrounding a motif anchored at `origin`:
/// four wide wires inside the clip's ambit, ≥ 500 nm away from the core so
/// the oracle's 3σ reach (≈ 230 nm) never sees them.
pub fn filler_rects(origin: Point) -> Vec<Rect> {
    let o = origin;
    vec![
        // bottom / top horizontal rails
        Rect::from_extents(o.x - 1750, o.y - 1750, o.x + 2950, o.y - 1600),
        Rect::from_extents(o.x - 1750, o.y + 2800, o.x + 2950, o.y + 2950),
        // left / right vertical rails
        Rect::from_extents(o.x - 1750, o.y - 1450, o.x - 1600, o.y + 2650),
        Rect::from_extents(o.x + 2800, o.y - 1450, o.x + 2950, o.y + 2650),
    ]
}

impl BenchmarkSpec {
    /// Layout area in µm².
    pub fn area_um2(&self) -> f64 {
        (self.width as f64 / 1000.0) * (self.height as f64 / 1000.0)
    }
}

/// A generated benchmark.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The generating specification.
    pub spec: BenchmarkSpec,
    /// Labelled training clips.
    pub training: TrainingSet,
    /// The testing layout.
    pub layout: Layout,
    /// Ground-truth hotspot windows in the testing layout.
    pub actual: Vec<ClipWindow>,
    /// The layer holding the geometry.
    pub layer: LayerId,
}

impl Benchmark {
    /// Generates the benchmark deterministically from its spec.
    ///
    /// # Panics
    ///
    /// Panics if the layout is too small to host the requested hotspots.
    pub fn generate(spec: BenchmarkSpec) -> Benchmark {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let layer = LayerId::METAL1;
        let cell = spec.clip_shape.clip_side();
        let cols = (spec.width / cell) as usize;
        let rows = (spec.height / cell) as usize;
        assert!(
            cols * rows >= spec.test_hotspots * 2,
            "layout too small for {} hotspots",
            spec.test_hotspots
        );

        // Training set first (its own RNG stream position, deterministic).
        let training = generate_training(&spec, &mut rng);

        // Testing layout: shuffle cells, plant hotspots, fill background.
        let mut cells: Vec<(usize, usize)> = (0..cols)
            .flat_map(|cx| (0..rows).map(move |cy| (cx, cy)))
            .collect();
        cells.shuffle(&mut rng);

        let mut layout = Layout::new(spec.name.clone());
        let mut actual = Vec::with_capacity(spec.test_hotspots);

        let (hotspot_cells, rest) = cells.split_at(spec.test_hotspots.min(cells.len()));
        for &(cx, cy) in hotspot_cells {
            let (motif, _) = sample_labelled(&spec, &mut rng, true);
            let origin = place_in_cell(&spec, &mut rng, cx, cy, &motif);
            for r in motif.rects() {
                layout.add_rect(layer, r.translate(origin));
            }
            if spec.ambit_filler {
                for r in filler_rects(origin) {
                    layout.add_rect(layer, r);
                }
            }
            actual.push(spec.clip_shape.window_from_core_corner(origin));
        }
        for &(cx, cy) in rest {
            if !rng.random_bool(spec.background_fill) {
                continue;
            }
            let (motif, _) = sample_labelled(&spec, &mut rng, false);
            let origin = place_in_cell(&spec, &mut rng, cx, cy, &motif);
            for r in motif.rects() {
                layout.add_rect(layer, r.translate(origin));
            }
            if spec.ambit_filler {
                for r in filler_rects(origin) {
                    layout.add_rect(layer, r);
                }
            }
        }

        Benchmark {
            spec,
            training,
            layout,
            actual,
            layer,
        }
    }

    /// Testing-layout area in µm².
    pub fn area_um2(&self) -> f64 {
        self.spec.area_um2()
    }
}

/// Places a motif inside cell `(cx, cy)` with jitter, keeping the motif's
/// core-anchored clip ambit from straddling neighbouring cores too closely
/// (the oracle's blur radius is far smaller than the enforced margin).
fn place_in_cell(
    spec: &BenchmarkSpec,
    rng: &mut StdRng,
    cx: usize,
    cy: usize,
    motif: &Motif,
) -> Point {
    let cell = spec.clip_shape.clip_side();
    let margin = spec.clip_shape.ambit();
    let bbox = motif.bbox();
    let free_x = (cell - 2 * margin - bbox.width()).max(1);
    let free_y = (cell - 2 * margin - bbox.height()).max(1);
    Point::new(
        cx as Coord * cell + margin + rng.random_range(0..free_x),
        cy as Coord * cell + margin + rng.random_range(0..free_y),
    )
}

/// Samples a motif whose oracle label matches `want_hotspot`, retrying with
/// fresh parameters (biased sampling makes a handful of tries enough).
fn sample_labelled(spec: &BenchmarkSpec, rng: &mut StdRng, want_hotspot: bool) -> (Motif, f64) {
    let window = spec.clip_shape.window_from_core_corner(Point::new(0, 0));
    for _ in 0..200 {
        let motif = if want_hotspot {
            Motif::sample_risky(rng)
        } else {
            Motif::sample_safe(rng)
        };
        let rects = motif.rects();
        let score = spec
            .oracle
            .susceptibility(&window.core, &window.clip, &rects);
        if (score > 0.0) == want_hotspot {
            return (motif, score);
        }
    }
    panic!(
        "could not sample a {} motif in 200 tries; oracle and motif ranges disagree",
        if want_hotspot { "hotspot" } else { "safe" }
    );
}

/// Generates the labelled training clips (anchored at the origin corner,
/// matching the extraction convention).
fn generate_training(spec: &BenchmarkSpec, rng: &mut StdRng) -> TrainingSet {
    let mut ts = TrainingSet::new();
    let window = spec.clip_shape.window_from_core_corner(Point::new(0, 0));
    let with_filler = |rects: Vec<Rect>| -> Vec<Rect> {
        if spec.ambit_filler {
            rects
                .into_iter()
                .chain(filler_rects(Point::new(0, 0)))
                .collect()
        } else {
            rects
        }
    };
    for _ in 0..spec.train_hotspots {
        let (motif, _) = sample_labelled(spec, rng, true);
        ts.push(
            Pattern::new(window, &with_filler(motif.rects())),
            Label::Hotspot,
        );
    }
    // Nonhotspots: mostly safe motifs, with a share of *hard negatives* —
    // risky-family samples the oracle clears — mirroring the contest sets
    // where nonhotspots include near-misses.
    for i in 0..spec.train_nonhotspots {
        let motif = if i % 4 == 0 {
            sample_hard_negative(spec, rng)
        } else {
            sample_labelled(spec, rng, false).0
        };
        ts.push(
            Pattern::new(window, &with_filler(motif.rects())),
            Label::NonHotspot,
        );
    }
    ts
}

/// A risky-parameter motif that the oracle nevertheless labels safe.
fn sample_hard_negative(spec: &BenchmarkSpec, rng: &mut StdRng) -> Motif {
    let window = spec.clip_shape.window_from_core_corner(Point::new(0, 0));
    for _ in 0..200 {
        let motif = Motif::sample_risky(rng);
        if !spec
            .oracle
            .is_hotspot(&window.core, &window.clip, &motif.rects())
        {
            return motif;
        }
    }
    // Risky ranges almost always trip the oracle eventually; fall back to a
    // plainly safe motif rather than aborting generation.
    sample_labelled(spec, rng, false).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "test_bm".into(),
            process_nm: 32,
            width: 48_000,
            height: 48_000,
            train_hotspots: 8,
            train_nonhotspots: 24,
            test_hotspots: 5,
            seed: 42,
            clip_shape: ClipShape::ICCAD2012,
            oracle: LithoOracle::default(),
            background_fill: 0.6,
            ambit_filler: true,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Benchmark::generate(small_spec());
        let b = Benchmark::generate(small_spec());
        assert_eq!(a.layout, b.layout);
        assert_eq!(a.actual, b.actual);
        assert_eq!(a.training, b.training);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Benchmark::generate(small_spec());
        let b = Benchmark::generate(BenchmarkSpec {
            seed: 43,
            ..small_spec()
        });
        assert_ne!(a.layout, b.layout);
    }

    #[test]
    fn counts_match_spec() {
        let b = Benchmark::generate(small_spec());
        assert_eq!(b.training.hotspots.len(), 8);
        assert_eq!(b.training.nonhotspots.len(), 24);
        assert_eq!(b.actual.len(), 5);
        assert!(b.layout.polygon_count() > 10);
    }

    #[test]
    fn training_labels_agree_with_oracle() {
        let b = Benchmark::generate(small_spec());
        let oracle = &b.spec.oracle;
        for p in &b.training.hotspots {
            assert!(
                oracle.is_hotspot(&p.window.core, &p.window.clip, &p.rects),
                "training hotspot fails the oracle"
            );
        }
        for p in &b.training.nonhotspots {
            assert!(
                !oracle.is_hotspot(&p.window.core, &p.window.clip, &p.rects),
                "training nonhotspot trips the oracle"
            );
        }
    }

    #[test]
    fn planted_hotspots_are_oracle_hotspots_in_situ() {
        let b = Benchmark::generate(small_spec());
        let rects = b.layout.dissected_rects(b.layer);
        for w in &b.actual {
            let context: Vec<Rect> = rects
                .iter()
                .filter(|r| r.overlaps(&w.clip))
                .copied()
                .collect();
            assert!(
                b.spec.oracle.is_hotspot(&w.core, &w.clip, &context),
                "planted hotspot at {w} is not a hotspot in situ"
            );
        }
    }

    #[test]
    fn hotspot_windows_inside_layout() {
        let b = Benchmark::generate(small_spec());
        let bounds = Rect::from_extents(0, 0, b.spec.width, b.spec.height);
        for w in &b.actual {
            assert!(bounds.contains_rect(&w.core), "{w}");
        }
    }

    #[test]
    fn motif_geometry_stays_in_cells_without_filler() {
        // Without filler, all geometry stays one ambit away from cell
        // borders (the placement invariant).
        let b = Benchmark::generate(BenchmarkSpec {
            ambit_filler: false,
            ..small_spec()
        });
        let cell = b.spec.clip_shape.clip_side();
        let margin = b.spec.clip_shape.ambit();
        for poly in b.layout.polygons(b.layer) {
            let bb = poly.bbox();
            let cx = bb.min().x.div_euclid(cell);
            let cy = bb.min().y.div_euclid(cell);
            let safe = Rect::from_extents(
                cx * cell + margin,
                cy * cell + margin,
                (cx + 1) * cell - margin,
                (cy + 1) * cell - margin,
            );
            assert!(
                safe.contains_rect(&bb),
                "{bb:?} leaves its cell safe zone {safe:?}"
            );
        }
    }

    #[test]
    fn filler_keeps_distance_from_cores() {
        // Filler rails must stay outside the oracle's reach (≥ 3σ + pixel ≈
        // 230 nm) of every planted core so in-situ labels never flip.
        let b = Benchmark::generate(small_spec());
        let rects = b.layout.dissected_rects(b.layer);
        for w in &b.actual {
            let danger = w.core.inflate(300);
            for r in filler_rects(w.core.min()) {
                assert!(
                    !danger.overlaps(&r),
                    "filler {r:?} intrudes on core {:?}",
                    w.core
                );
            }
        }
        let _ = rects;
    }

    #[test]
    fn area_math() {
        let s = small_spec();
        assert!((s.area_um2() - 48.0 * 48.0).abs() < 1e-9);
    }
}
