//! Regenerates Table II: comparison of our framework (at three operating
//! points, with and without multithreading) against the fuzzy
//! pattern-matching contest-winner proxy.

use hotspot_bench::{
    generate_suite, print_breakdown, print_header, run_matcher, run_ours, scale_from_env,
};
use hotspot_core::DetectorConfig;

fn main() {
    let scale = scale_from_env();
    print_header("Table II — comparison with the contest-winner proxy", scale);
    println!(
        "{:<22} {:<12} {:>5} {:>7} {:>9} {:>10} {:>9}",
        "benchmark", "method", "#hit", "#extra", "accuracy", "hit/extra", "runtime"
    );
    for bm in generate_suite(scale) {
        let base = DetectorConfig::default();
        let rows = vec![
            run_matcher(&bm, base.clone()),
            run_ours(&bm, base.clone(), "ours", base.decision_threshold),
            run_ours(
                &bm,
                base.clone().medium_accuracy(),
                "ours_med",
                base.clone().medium_accuracy().decision_threshold,
            ),
            run_ours(
                &bm,
                base.clone().low_accuracy(),
                "ours_low",
                base.clone().low_accuracy().decision_threshold,
            ),
            run_ours(
                &bm,
                base.clone().sequential(),
                "ours_nopara",
                base.decision_threshold,
            ),
        ];
        for r in &rows {
            println!("{:<22} {}", bm.spec.name, r.row());
        }
        // Per-stage breakdown of the full framework at the default
        // operating point.
        print_breakdown(&rows[1]);
        println!();
    }
}
