//! Regenerates Table I: benchmark statistics of the (synthetic) suite.

use hotspot_bench::{generate_suite, print_header, scale_from_env};

fn main() {
    let scale = scale_from_env();
    print_header("Table I — benchmark statistics", scale);
    println!(
        "{:<20} {:>6} {:>7} | {:>8} {:>12} {:>8} {:>9}",
        "training data", "#hs", "#nhs", "test #hs", "area (um^2)", "process", "#polygons"
    );
    for bm in generate_suite(scale) {
        println!(
            "{:<20} {:>6} {:>7} | {:>8} {:>12.0} {:>7}nm {:>9}",
            bm.spec.name,
            bm.training.hotspots.len(),
            bm.training.nonhotspots.len(),
            bm.actual.len(),
            bm.area_um2(),
            bm.spec.process_nm,
            bm.layout.polygon_count(),
        );
    }
    println!("\ncore 1.2 x 1.2 um^2, clip 4.8 x 4.8 um^2 (as in the paper)");
}
