//! Regenerates Table III: the ablation over the framework's stages —
//! Basic (single huge kernel), +Topology, +Removal, and the full framework
//! (feedback kernel included) — plus the #hs/#nhs balance ratio.

use hotspot_bench::{
    generate_suite, print_breakdown, print_header, run_basic, run_ours, scale_from_env,
};
use hotspot_core::{AblationSwitches, DetectorConfig, HotspotDetector};

fn main() {
    let scale = scale_from_env();
    print_header("Table III — stage-by-stage ablation", scale);
    println!(
        "{:<22} {:<12} {:>8} {:>5} {:>7} {:>9} {:>9}",
        "benchmark", "method", "hs/nhs", "#hit", "#extra", "accuracy", "runtime"
    );
    for bm in generate_suite(scale) {
        // The balance ratio after resampling, from a full training run.
        let probe =
            HotspotDetector::train(&bm.training, DetectorConfig::default()).expect("training");
        let ratio = probe.summary().balance_ratio();
        let raw_ratio =
            bm.training.hotspots.len() as f64 / bm.training.nonhotspots.len().max(1) as f64;

        let rows = vec![
            (
                format!("{raw_ratio:.2}"),
                run_basic(&bm, DetectorConfig::default()),
            ),
            (
                format!("{ratio:.2}"),
                run_ours(
                    &bm,
                    DetectorConfig {
                        ablation: AblationSwitches {
                            topology: true,
                            removal: false,
                            feedback: false,
                        },
                        ..Default::default()
                    },
                    "+topology",
                    0.0,
                ),
            ),
            (
                format!("{ratio:.2}"),
                run_ours(
                    &bm,
                    DetectorConfig {
                        ablation: AblationSwitches {
                            topology: true,
                            removal: true,
                            feedback: false,
                        },
                        ..Default::default()
                    },
                    "+removal",
                    0.0,
                ),
            ),
            (
                format!("{ratio:.2}"),
                run_ours(&bm, DetectorConfig::default(), "ours", 0.0),
            ),
        ];
        for (ratio, r) in &rows {
            println!(
                "{:<22} {:<12} {:>8} {:>5} {:>7} {:>8.2}% {:>8.1}s",
                bm.spec.name,
                r.method,
                ratio,
                r.eval.hits,
                r.eval.extras,
                r.eval.accuracy() * 100.0,
                r.eval.runtime.as_secs_f64(),
            );
        }
        // Per-stage breakdown of the full framework row.
        print_breakdown(&rows[rows.len() - 1].1);
        println!();
    }
}
