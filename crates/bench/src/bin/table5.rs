//! Regenerates Table V: clip counts of the 50 %-overlap window scan versus
//! our density-filtered clip extraction.

use hotspot_baselines::window_clip_count;
use hotspot_bench::{generate_suite, print_header, scale_from_env};
use hotspot_core::{extract_clips, DetectorConfig};

fn main() {
    let scale = scale_from_env();
    print_header("Table V — clip extraction comparison", scale);
    println!(
        "{:<22} {:>18} {:>14} {:>10} {:>7}",
        "testing layout", "area (mm x mm)", "#clip window", "#clip ours", "ratio"
    );
    let config = DetectorConfig::default();
    for bm in generate_suite(scale) {
        let window = window_clip_count(bm.spec.width, bm.spec.height, bm.spec.clip_shape);
        let ours = extract_clips(&bm.layout, bm.layer, &config).len();
        println!(
            "{:<22} {:>8.3}x{:<8.3} {:>14} {:>10} {:>6.1}x",
            bm.spec.name,
            bm.spec.width as f64 / 1e6,
            bm.spec.height as f64 / 1e6,
            window,
            ours,
            window as f64 / ours.max(1) as f64,
        );
    }
    println!("\nwindow scan: 1.2 um window, 50% overlap (as in the paper)");
}
