//! Regenerates Table IV: accuracy as a function of the training-data
//! fraction (the paper's rapid-convergence experiment).

use hotspot_bench::{generate_suite, print_header, run_ours, scale_from_env, subsample_training};
use hotspot_core::DetectorConfig;

fn main() {
    let scale = scale_from_env();
    print_header("Table IV — accuracy vs training-data fraction", scale);
    println!(
        "{:<22} {:>7} {:>5} {:>7} {:>9} {:>9}",
        "benchmark", "data", "#hit", "#extra", "accuracy", "runtime"
    );
    for bm in generate_suite(scale) {
        for fraction in [1.0, 0.65, 0.25, 0.10, 0.05] {
            let mut sub = bm.clone();
            sub.training = subsample_training(&bm.training, fraction);
            let r = run_ours(&sub, DetectorConfig::default(), "ours", 0.0);
            println!(
                "{:<22} {:>6.0}% {:>5} {:>7} {:>8.2}% {:>8.1}s",
                bm.spec.name,
                fraction * 100.0,
                r.eval.hits,
                r.eval.extras,
                r.eval.accuracy() * 100.0,
                r.eval.runtime.as_secs_f64(),
            );
        }
        println!();
    }
}
